//! # FTSPM — a fault-tolerant hybrid scratchpad memory
//!
//! A full reproduction of *"FTSPM: A Fault-Tolerant ScratchPad Memory"*
//! (Hosseini Monazzah, Farbeh, Miremadi, Fazeli, Asadi — DSN 2013):
//! a hybrid STT-RAM / SEC-DED-SRAM / parity-SRAM scratchpad together
//! with the multi-priority, reliability-aware Mapping Determiner
//! Algorithm (MDA) that distributes program blocks across the regions by
//! susceptibility, under performance, energy and endurance budgets.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mem`] — NVSIM-substitute memory technology models (latency,
//!   dynamic energy, leakage; 40 nm presets calibrated to the paper),
//! * [`ecc`] — real parity and extended-Hamming SEC-DED codecs plus the
//!   40 nm MBU distribution and the analytic SDC/DUE/DRE model,
//! * [`sim`] — the cycle-accurate embedded memory-hierarchy simulator
//!   (FaCSim substitute): L1 caches, SPM regions, DMA, DRAM,
//! * [`profile`] — the Table I profiler (reads/writes/references/ACE
//!   lifetimes/stack statistics, block access sequence),
//! * [`core`] — the paper's contribution: hybrid structure, MDA
//!   (Algorithm 1), transfer scheduling, AVF reliability model,
//!   endurance model,
//! * [`workloads`] — the MiBench-substitute kernel suite and the §IV
//!   case study, all self-checking,
//! * [`faults`] — Monte-Carlo particle-strike injection validating the
//!   analytic reliability model,
//! * [`obs`] — deterministic observability: metrics registry, bounded
//!   structured trace, chrome-trace/CSV exporters,
//! * [`harness`] — the [`harness::RunBuilder`] profile → map → re-run
//!   orchestration plus renderers for every table and figure of the
//!   paper,
//! * [`trace`] — external access traces: a versioned, CRC-framed
//!   binary format, a recorder, a torn-tail-tolerant reader, replay
//!   as a [`workloads::Workload`], model extraction
//!   ([`trace::fit`]) producing trace-fitted synthetics, and
//!   [`trace::WorkloadSource`], the unified way every entry point
//!   names a workload, and
//! * [`serve`] — a zero-dependency HTTP/1.1 evaluation service: batched
//!   jobs over TCP through the same [`harness::RunBuilder`] path, with
//!   byte-identical responses at any worker-pool size, plus trace
//!   ingestion (`POST /v1/traces`).
//!
//! ## Quickstart
//!
//! ```
//! use ftspm::core::OptimizeFor;
//! use ftspm::harness::evaluate_workload;
//! use ftspm::workloads::CaseStudy;
//!
//! let mut workload = CaseStudy::new();
//! let eval = evaluate_workload(&mut workload, OptimizeFor::Reliability);
//! assert!(eval.all_checksums_ok());
//! // The hybrid SPM is ~2.5x less vulnerable than the SEC-DED baseline
//! // on this workload, at roughly half the dynamic energy.
//! assert!(eval.ftspm.vulnerability < eval.pure_sram.vulnerability / 2.0);
//! assert!(eval.ftspm.spm_dynamic_pj < 0.6 * eval.pure_sram.spm_dynamic_pj);
//! ```
//!
//! Run `cargo run --release -p ftspm-bench --bin repro -- all` to
//! regenerate every table and figure of the paper; see `EXPERIMENTS.md`
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftspm_core as core;
pub use ftspm_ecc as ecc;
pub use ftspm_faults as faults;
pub use ftspm_harness as harness;
pub use ftspm_mem as mem;
pub use ftspm_obs as obs;
pub use ftspm_profile as profile;
pub use ftspm_serve as serve;
pub use ftspm_sim as sim;
pub use ftspm_trace as trace;
pub use ftspm_workloads as workloads;
