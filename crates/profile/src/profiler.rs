//! The profiling observer and its results.

use ftspm_sim::{AccessEvent, AccessKind, BlockId, BlockKind, Observer, Program};

use crate::sequence::{AccessSequence, Episode};

/// Per-block profiling results — one row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// The profiled block.
    pub block: BlockId,
    /// Block name.
    pub name: String,
    /// Code or data.
    pub kind: BlockKind,
    /// Block size in bytes.
    pub size_bytes: u32,
    /// Reads (for code blocks: instruction fetches).
    pub reads: u64,
    /// Writes (always 0 for code blocks).
    pub writes: u64,
    /// References: entries for code blocks, access episodes for data.
    pub references: u64,
    /// Calls issued while this block was executing (code blocks).
    pub stack_calls: u64,
    /// Peak stack bytes consumed by an activation of this block and its
    /// callees (code blocks).
    pub max_stack_bytes: u32,
    /// Lifetime in cycles (see crate docs for the per-kind definition).
    pub lifetime_cycles: u64,
    /// Cycle of the first access to the block.
    pub first_access: u64,
    /// Cycle of the last access to the block.
    pub last_access: u64,
}

impl BlockProfile {
    /// Average reads per reference (Table I column 4); 0 if never
    /// referenced.
    pub fn avg_reads_per_reference(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.reads as f64 / self.references as f64
        }
    }

    /// Average writes per reference (Table I column 5).
    pub fn avg_writes_per_reference(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.writes as f64 / self.references as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// The block's *susceptibility* (Algorithm 1 line 10):
    /// references × lifetime.
    pub fn susceptibility(&self) -> f64 {
        self.references as f64 * self.lifetime_cycles as f64
    }
}

/// A complete profile of one run: all block rows plus the access sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Program name.
    pub program: String,
    /// Per-block rows, in block-id order.
    pub blocks: Vec<BlockProfile>,
    /// Block access sequence for the online phase.
    pub sequence: AccessSequence,
    /// Total cycles of the profiled run.
    pub total_cycles: u64,
}

impl Profile {
    /// The row for `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: BlockId) -> &BlockProfile {
        &self.blocks[block.index()]
    }

    /// Looks a row up by name.
    pub fn find(&self, name: &str) -> Option<&BlockProfile> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    reads: u64,
    writes: u64,
    references: u64,
    stack_calls: u64,
    max_stack: u32,
    lifetime: u64,
    first: Option<u64>,
    last: u64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveFrame {
    block: BlockId,
    depth_before: u32,
}

/// The profiling [`Observer`]: attach to a run, then call
/// [`Profiler::finish`].
#[derive(Debug)]
pub struct Profiler {
    counters: Vec<Counters>,
    // PC-residency tracking.
    call_stack: Vec<ActiveFrame>,
    active_since: u64,
    // Data-episode tracking: last data block accessed.
    last_data_block: Option<BlockId>,
    cur_depth: u32,
    episodes: Vec<Episode>,
    /// Per data block, per word: cycle of the last access (ACE tracking).
    last_word_access: Vec<Vec<u64>>,
    /// Per data block, per word: whether the word has been accessed.
    word_touched: Vec<Vec<bool>>,
}

impl Profiler {
    /// Creates a profiler for `program`.
    pub fn new(program: &Program) -> Self {
        let (last_word_access, word_touched) = program
            .iter()
            .map(|(_, spec)| {
                if spec.kind() == BlockKind::Data {
                    let words = (spec.size_bytes() / 4) as usize;
                    (vec![0u64; words], vec![false; words])
                } else {
                    (Vec::new(), Vec::new())
                }
            })
            .unzip();
        Self {
            counters: vec![Counters::default(); program.len()],
            call_stack: Vec::new(),
            active_since: 0,
            last_data_block: None,
            cur_depth: 0,
            episodes: Vec::new(),
            last_word_access,
            word_touched,
        }
    }

    fn touch(&mut self, block: BlockId, cycle: u64) {
        let c = &mut self.counters[block.index()];
        c.first.get_or_insert(cycle);
        c.last = cycle;
    }

    /// Accumulates PC residency of the currently active code block up to
    /// `cycle`.
    fn settle_residency(&mut self, cycle: u64) {
        if let Some(top) = self.call_stack.last() {
            let block = top.block;
            let c = &mut self.counters[block.index()];
            c.lifetime += cycle.saturating_sub(self.active_since);
        }
        self.active_since = cycle;
    }

    /// Consumes the profiler and produces the [`Profile`].
    ///
    /// `total_cycles` is the machine cycle at the end of the run; any
    /// still-active code block accumulates residency up to it.
    pub fn finish(mut self, program: &Program, total_cycles: u64) -> Profile {
        self.settle_residency(total_cycles);
        let blocks = program
            .iter()
            .map(|(id, spec)| {
                let c = self.counters[id.index()];
                // Code lifetime is PC residency; data lifetime is the ACE
                // time accumulated per word (intervals ending in a read),
                // both in the `lifetime` counter.
                let lifetime = c.lifetime;
                BlockProfile {
                    block: id,
                    name: spec.name().to_string(),
                    kind: spec.kind(),
                    size_bytes: spec.size_bytes(),
                    reads: c.reads,
                    writes: c.writes,
                    references: c.references,
                    stack_calls: c.stack_calls,
                    max_stack_bytes: c.max_stack,
                    lifetime_cycles: lifetime,
                    first_access: c.first.unwrap_or(0),
                    last_access: c.last,
                }
            })
            .collect();
        Profile {
            program: program.name().to_string(),
            blocks,
            sequence: AccessSequence::new(self.episodes),
            total_cycles,
        }
    }
}

impl Observer for Profiler {
    fn on_access(&mut self, e: &AccessEvent) {
        if e.dma {
            // The paper's profiling excludes the primary copy-in/out.
            return;
        }
        let c = &mut self.counters[e.block.index()];
        match e.kind {
            AccessKind::Fetch | AccessKind::Read => c.reads += u64::from(e.count),
            AccessKind::Write => c.writes += u64::from(e.count),
            // Fault-recovery traffic is not program behaviour; profiling
            // (and the placement decisions derived from it) ignores it.
            _ => return,
        }
        self.touch(e.block, e.cycle);
        // Data-block episodes: a maximal run of accesses to one data block.
        if e.kind != AccessKind::Fetch {
            if self.last_data_block != Some(e.block) {
                self.counters[e.block.index()].references += 1;
                self.last_data_block = Some(e.block);
                self.episodes.push(Episode {
                    block: e.block,
                    start_cycle: e.cycle,
                });
            }
            // ACE ("vulnerable interval") accounting per word: the span
            // from the previous access of a word to a *read* of it is time
            // during which a flipped bit would have been consumed; a span
            // ending in a write is dead time (the value is overwritten).
            let idx = e.block.index();
            if !self.last_word_access[idx].is_empty() {
                let w = (e.offset / 4) as usize % self.last_word_access[idx].len();
                if e.kind == AccessKind::Read && self.word_touched[idx][w] {
                    self.counters[idx].lifetime +=
                        e.cycle.saturating_sub(self.last_word_access[idx][w]);
                }
                self.last_word_access[idx][w] = e.cycle;
                self.word_touched[idx][w] = true;
            }
        }
    }

    fn on_block_enter(&mut self, block: BlockId, cycle: u64) {
        self.settle_residency(cycle);
        // Attribute the call to the block that issued it.
        if let Some(top) = self.call_stack.last() {
            self.counters[top.block.index()].stack_calls += 1;
        }
        self.counters[block.index()].references += 1;
        self.touch(block, cycle);
        self.call_stack.push(ActiveFrame {
            block,
            depth_before: self.cur_depth,
        });
        self.episodes.push(Episode {
            block,
            start_cycle: cycle,
        });
    }

    fn on_block_exit(&mut self, _block: BlockId, cycle: u64) {
        self.settle_residency(cycle);
        if let Some(frame) = self.call_stack.pop() {
            self.cur_depth = frame.depth_before;
        }
    }

    fn on_stack_depth(&mut self, _block: BlockId, depth_bytes: u32) {
        self.cur_depth = depth_bytes;
        for frame in &self.call_stack {
            let need = depth_bytes.saturating_sub(frame.depth_before);
            let c = &mut self.counters[frame.block.index()];
            c.max_stack = c.max_stack.max(need);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspm_sim::{RegionId, Target};

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.code("F", 64, 16);
        b.code("G", 64, 32);
        b.data("A", 64);
        b.build()
    }

    fn access(block: BlockId, kind: AccessKind, cycle: u64, count: u32) -> AccessEvent {
        AccessEvent {
            cycle,
            block,
            kind,
            target: Target::Region(RegionId::new(0)),
            offset: 0,
            dma: false,
            count,
        }
    }

    #[test]
    fn episodes_define_data_references() {
        let p = program();
        let a = p.find("A").unwrap();
        let f = p.find("F").unwrap();
        let mut prof = Profiler::new(&p);
        prof.on_block_enter(f, 0);
        // Run of 3 accesses to A = 1 reference; then a second episode.
        prof.on_access(&access(a, AccessKind::Read, 1, 1));
        prof.on_access(&access(a, AccessKind::Read, 2, 1));
        prof.on_access(&access(a, AccessKind::Write, 3, 1));
        prof.on_access(&access(f, AccessKind::Fetch, 4, 1)); // fetch doesn't break runs
        prof.on_access(&access(a, AccessKind::Read, 9, 1));
        prof.on_block_exit(f, 10);
        let out = prof.finish(&p, 10);
        let ra = out.find("A").unwrap();
        assert_eq!(ra.reads, 3);
        assert_eq!(ra.writes, 1);
        assert_eq!(
            ra.references, 1,
            "A run interrupted only by fetches stays one episode"
        );
        // ACE intervals: R@1 (first touch, +0), R@2 (+1), W@3 (dead-end
        // interval), R@9 (+6) = 7 vulnerable cycles.
        assert_eq!(ra.lifetime_cycles, 7);
        assert_eq!(ra.avg_reads_per_reference(), 3.0);
    }

    #[test]
    fn data_episode_breaks_on_other_data_block() {
        let mut builder = Program::builder("p2");
        builder.code("F", 64, 16);
        let a2 = builder.data("A", 64);
        let b2 = builder.data("B", 64);
        let p2 = builder.build();
        let mut prof = Profiler::new(&p2);
        prof.on_block_enter(p2.find("F").unwrap(), 0);
        prof.on_access(&access(a2, AccessKind::Read, 1, 1));
        prof.on_access(&access(b2, AccessKind::Read, 2, 1));
        prof.on_access(&access(a2, AccessKind::Read, 3, 1));
        let out = prof.finish(&p2, 4);
        assert_eq!(out.find("A").unwrap().references, 2);
        assert_eq!(out.find("B").unwrap().references, 1);
    }

    #[test]
    fn code_lifetime_is_pc_residency() {
        let p = program();
        let f = p.find("F").unwrap();
        let g = p.find("G").unwrap();
        let mut prof = Profiler::new(&p);
        prof.on_block_enter(f, 0); // F active 0..10
        prof.on_block_enter(g, 10); // G active 10..25
        prof.on_block_exit(g, 25); // F resumes 25..30
        prof.on_block_exit(f, 30);
        let out = prof.finish(&p, 30);
        assert_eq!(out.find("F").unwrap().lifetime_cycles, 15, "0..10 + 25..30");
        assert_eq!(out.find("G").unwrap().lifetime_cycles, 15);
        assert_eq!(out.find("F").unwrap().references, 1);
        assert_eq!(out.find("G").unwrap().references, 1);
        assert_eq!(out.find("F").unwrap().stack_calls, 1, "F called G once");
        assert_eq!(out.find("G").unwrap().stack_calls, 0);
    }

    #[test]
    fn stack_need_spans_callees() {
        let p = program();
        let f = p.find("F").unwrap();
        let g = p.find("G").unwrap();
        let mut prof = Profiler::new(&p);
        prof.on_block_enter(f, 0);
        prof.on_stack_depth(f, 16);
        prof.on_block_enter(g, 1);
        prof.on_stack_depth(g, 48);
        prof.on_block_exit(g, 2);
        prof.on_block_exit(f, 3);
        let out = prof.finish(&p, 3);
        assert_eq!(
            out.find("F").unwrap().max_stack_bytes,
            48,
            "F + its callee G"
        );
        assert_eq!(out.find("G").unwrap().max_stack_bytes, 32, "G's own frame");
    }

    #[test]
    fn dma_excluded_from_profile() {
        let p = program();
        let a = p.find("A").unwrap();
        let mut prof = Profiler::new(&p);
        let mut e = access(a, AccessKind::Write, 0, 16);
        e.dma = true;
        prof.on_access(&e);
        let out = prof.finish(&p, 1);
        assert_eq!(out.find("A").unwrap().writes, 0);
        assert_eq!(out.find("A").unwrap().references, 0);
    }

    #[test]
    fn susceptibility_multiplies_refs_and_lifetime() {
        let bp = BlockProfile {
            block: BlockId::new(0),
            name: "x".into(),
            kind: BlockKind::Data,
            size_bytes: 4,
            reads: 10,
            writes: 0,
            references: 5,
            stack_calls: 0,
            max_stack_bytes: 0,
            lifetime_cycles: 100,
            first_access: 0,
            last_access: 100,
        };
        assert_eq!(bp.susceptibility(), 500.0);
        assert_eq!(bp.avg_reads_per_reference(), 2.0);
    }
}
