//! # ftspm-profile — the FTSPM static-profiling phase
//!
//! The first phase of the paper's tool flow runs the application once and
//! collects, per program block, the statistics of its Table I:
//!
//! * number of reads and writes (instruction fetches count as reads of a
//!   code block; DMA traffic is excluded, matching the paper's note that
//!   the primary copy-in "has not been considered"),
//! * number of *references* and the average reads/writes per reference,
//! * stack calls issued and maximum stack bytes needed (code blocks), and
//! * *lifetime* in cycles.
//!
//! Definitions (DESIGN.md §5): a code block's reference is an entry into
//! the block and its lifetime accumulates PC residency (entry until
//! another block runs); a data block's reference is a maximal run of
//! consecutive accesses and its lifetime is its accumulated **ACE time**
//! — per word, the "vulnerable intervals" that end in a read (a flipped
//! bit in such an interval is consumed; an interval ending in a write is
//! overwritten and harmless). This is why the paper's Table I shows
//! arrays with lifetimes near the whole run but the stack — whose frames
//! die at each return — with a tiny one.
//!
//! The profiler also extracts the block access *sequence* that the online
//! mapping phase consumes, and the per-block write counts the MDA
//! endurance step (Algorithm 1, lines 23–27) thresholds against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profiler;
mod report;
mod sequence;

pub use profiler::{BlockProfile, Profile, Profiler};
pub use report::ProfileTable;
pub use sequence::{AccessSequence, Episode};
