//! The block access sequence the online mapping phase consumes.

use ftspm_sim::BlockId;

/// One episode: the program started referencing `block` at `start_cycle`.
///
/// For code blocks an episode is an entry (call); for data blocks it is
/// the start of a maximal run of consecutive accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// The referenced block.
    pub block: BlockId,
    /// Cycle at which the episode began.
    pub start_cycle: u64,
}

/// The ordered sequence of block episodes observed during profiling.
///
/// The paper extracts this "sequence of blocks accesses … from the static
/// profiling information" to decide the exact mapping/un-mapping points;
/// our scheduler ([`ftspm_core`](https://docs.rs/ftspm-core)) consumes it
/// the same way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSequence {
    episodes: Vec<Episode>,
}

impl AccessSequence {
    /// Wraps an episode list (must be in nondecreasing cycle order).
    pub fn new(episodes: Vec<Episode>) -> Self {
        debug_assert!(
            episodes
                .windows(2)
                .all(|w| w[0].start_cycle <= w[1].start_cycle),
            "episodes must be cycle-ordered"
        );
        Self { episodes }
    }

    /// The episodes in order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Whether no episodes were recorded.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Cycle of the first episode referencing `block`, if any.
    pub fn first_use(&self, block: BlockId) -> Option<u64> {
        self.episodes
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.start_cycle)
    }

    /// The distinct blocks in first-use order.
    pub fn blocks_in_first_use_order(&self) -> Vec<BlockId> {
        let mut seen = Vec::new();
        for e in &self.episodes {
            if !seen.contains(&e.block) {
                seen.push(e.block);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: usize, c: u64) -> Episode {
        Episode {
            block: BlockId::new(i),
            start_cycle: c,
        }
    }

    #[test]
    fn first_use_and_order() {
        let s = AccessSequence::new(vec![ep(2, 0), ep(0, 5), ep(2, 9), ep(1, 12)]);
        assert_eq!(s.first_use(BlockId::new(2)), Some(0));
        assert_eq!(s.first_use(BlockId::new(1)), Some(12));
        assert_eq!(s.first_use(BlockId::new(9)), None);
        assert_eq!(
            s.blocks_in_first_use_order(),
            vec![BlockId::new(2), BlockId::new(0), BlockId::new(1)]
        );
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
