//! Rendering a [`Profile`] as the paper's Table I.

use std::fmt;

use crate::Profile;

/// Displays a [`Profile`] in the layout of the paper's Table I
/// ("Results of profiling case study program").
#[derive(Debug, Clone)]
pub struct ProfileTable<'a> {
    profile: &'a Profile,
}

impl<'a> ProfileTable<'a> {
    /// Wraps a profile for display.
    pub fn new(profile: &'a Profile) -> Self {
        Self { profile }
    }

    /// Renders the table as CSV (one header row, one row per block).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "block,reads,writes,avg_reads_per_ref,avg_writes_per_ref,\
             stack_calls,max_stack_bytes,lifetime_cycles\n",
        );
        for b in &self.profile.blocks {
            out.push_str(&format!(
                "{},{},{},{:.1},{:.1},{},{},{}\n",
                b.name,
                b.reads,
                b.writes,
                b.avg_reads_per_reference(),
                b.avg_writes_per_reference(),
                b.stack_calls,
                b.max_stack_bytes,
                b.lifetime_cycles,
            ));
        }
        out
    }
}

impl fmt::Display for ProfileTable<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>10} {:>10} {:>12} {:>10} {:>14}",
            "Block", "Reads", "Writes", "R/ref", "W/ref", "StackCalls", "MaxStack", "Lifetime"
        )?;
        for b in &self.profile.blocks {
            writeln!(
                f,
                "{:<12} {:>12} {:>12} {:>10.1} {:>10.1} {:>12} {:>10} {:>14}",
                b.name,
                b.reads,
                b.writes,
                b.avg_reads_per_reference(),
                b.avg_writes_per_reference(),
                b.stack_calls,
                b.max_stack_bytes,
                b.lifetime_cycles,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessSequence, BlockProfile};
    use ftspm_sim::{BlockId, BlockKind};

    fn profile() -> Profile {
        Profile {
            program: "t".into(),
            blocks: vec![BlockProfile {
                block: BlockId::new(0),
                name: "Main".into(),
                kind: BlockKind::Code,
                size_bytes: 1024,
                reads: 100,
                writes: 0,
                references: 4,
                stack_calls: 7,
                max_stack_bytes: 348,
                lifetime_cycles: 999,
                first_access: 0,
                last_access: 999,
            }],
            sequence: AccessSequence::default(),
            total_cycles: 1000,
        }
    }

    #[test]
    fn display_contains_all_columns() {
        let p = profile();
        let s = ProfileTable::new(&p).to_string();
        assert!(s.contains("Main"));
        assert!(s.contains("348"));
        assert!(s.contains("25.0"), "avg reads per ref: {s}");
        assert!(s.contains("999"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let p = profile();
        let csv = ProfileTable::new(&p).to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("block,reads"));
        assert!(lines[1].starts_with("Main,100,0,25.0"));
    }
}
