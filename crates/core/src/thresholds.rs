//! MDA thresholds and the multi-priority optimisation presets.

/// The budgets Algorithm 1 enforces while deallocating blocks from the
/// STT-RAM region (paper §III, steps 3–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdaThresholds {
    /// Maximum tolerated performance overhead, as a fraction over the
    /// ideal all-1-cycle mapping (e.g. `0.10` = 10 %).
    pub perf_overhead_frac: f64,
    /// Maximum tolerated dynamic-energy overhead over the ideal
    /// all-parity-SRAM mapping.
    pub energy_overhead_frac: f64,
    /// Maximum writes a block may perform during one run and still stay
    /// in STT-RAM (Algorithm 1, line 24).
    pub write_cycles_threshold: u64,
}

impl MdaThresholds {
    /// Validates the thresholds.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is negative or not finite.
    pub fn new(perf: f64, energy: f64, writes: u64) -> Self {
        assert!(
            perf.is_finite() && perf >= 0.0,
            "perf threshold must be >= 0"
        );
        assert!(
            energy.is_finite() && energy >= 0.0,
            "energy threshold must be >= 0"
        );
        Self {
            perf_overhead_frac: perf,
            energy_overhead_frac: energy,
            write_cycles_threshold: writes,
        }
    }
}

impl Default for MdaThresholds {
    fn default() -> Self {
        OptimizeFor::Reliability.thresholds()
    }
}

/// The paper's multi-priority modes: "the proposed algorithm is also able
/// to optimize the mapping of program blocks for reliability, performance,
/// power, or endurance according to system requirements" (§I).
///
/// Each mode is a threshold preset: optimising for reliability tolerates
/// more STT-RAM write overhead (keeping more blocks in the immune
/// region); optimising for performance or power tightens the respective
/// budget, pushing write-heavy blocks out to the fast/cheap SRAM regions;
/// optimising for endurance lowers the per-block write budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizeFor {
    /// Keep as many blocks as possible in soft-error-immune STT-RAM.
    Reliability,
    /// Tight cycle budget: evict write-heavy blocks aggressively.
    Performance,
    /// Tight dynamic-energy budget.
    Power,
    /// Minimal STT-RAM wear.
    Endurance,
}

impl OptimizeFor {
    /// All modes.
    pub const ALL: [OptimizeFor; 4] = [
        OptimizeFor::Reliability,
        OptimizeFor::Performance,
        OptimizeFor::Power,
        OptimizeFor::Endurance,
    ];

    /// The threshold preset for this mode.
    pub fn thresholds(self) -> MdaThresholds {
        match self {
            OptimizeFor::Reliability => MdaThresholds::new(8.00, 8.00, 20_000),
            OptimizeFor::Performance => MdaThresholds::new(0.10, 8.00, 20_000),
            OptimizeFor::Power => MdaThresholds::new(8.00, 0.10, 20_000),
            OptimizeFor::Endurance => MdaThresholds::new(8.00, 8.00, 1_000),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OptimizeFor::Reliability => "reliability",
            OptimizeFor::Performance => "performance",
            OptimizeFor::Power => "power",
            OptimizeFor::Endurance => "endurance",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_along_their_axis() {
        let r = OptimizeFor::Reliability.thresholds();
        let p = OptimizeFor::Performance.thresholds();
        let w = OptimizeFor::Power.thresholds();
        let e = OptimizeFor::Endurance.thresholds();
        assert!(p.perf_overhead_frac < r.perf_overhead_frac);
        assert!(w.energy_overhead_frac < r.energy_overhead_frac);
        assert!(e.write_cycles_threshold < r.write_cycles_threshold);
    }

    #[test]
    fn default_is_reliability() {
        assert_eq!(
            MdaThresholds::default(),
            OptimizeFor::Reliability.thresholds()
        );
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_threshold_rejected() {
        let _ = MdaThresholds::new(-0.1, 0.5, 10);
    }

    #[test]
    fn names_distinct() {
        let mut names: Vec<_> = OptimizeFor::ALL.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
