//! # ftspm-core — the FTSPM method
//!
//! This crate implements the contribution of *"FTSPM: A Fault-Tolerant
//! ScratchPad Memory"* (DSN 2013):
//!
//! * the **hybrid SPM structure** ([`SpmStructure`]): a pure STT-RAM
//!   instruction SPM plus a data SPM split into STT-RAM, SEC-DED SRAM and
//!   parity SRAM regions (the paper's Fig. 1 / Table IV), along with the
//!   two baselines the paper compares against;
//! * the **Mapping Determiner Algorithm** ([`mda::run_mda`], the paper's
//!   Algorithm 1): a multi-priority, reliability-aware mapper that places
//!   program blocks by susceptibility subject to performance, energy and
//!   endurance thresholds ([`MdaThresholds`], [`OptimizeFor`]);
//! * the **online phase** ([`schedule`]): turning a mapping and the
//!   profiled access sequence into block transfer commands;
//! * the **reliability model** ([`reliability`]): the paper's AVF
//!   equations (1)–(7) over the 40 nm MBU distribution; and
//! * the **endurance model** ([`endurance`]): write-rate → lifetime
//!   (Table III / Fig. 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endurance;
pub mod estimate;
pub mod mda;
pub mod reliability;
pub mod remap;
pub mod schedule;
mod structure;
mod thresholds;

pub use structure::{RegionRole, SpmStructure};
pub use thresholds::{MdaThresholds, OptimizeFor};
