//! The online phase: block transfer scheduling.
//!
//! After MDA fixes each block's region, the paper's tool extracts the
//! block access sequence from the profile and inserts SPM-mapping
//! instructions "in proper lines of the code to transfer the blocks at
//! run-time". This module generates that command list: one map-in at each
//! block's first use, and one write-back at the end of the run for every
//! dirty (written) data block.
//!
//! The simulator executes map-ins lazily on first access — the same
//! semantics — so the schedule is also a *prediction* that tests validate
//! against observed DMA traffic.

use ftspm_profile::Profile;
use ftspm_sim::BlockId;

use crate::mda::{MapDecision, MdaOutput};

/// One SPM transfer command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferCommand {
    /// Copy the block from off-chip memory into its SPM slot before the
    /// given cycle (its first profiled use).
    MapIn {
        /// Block to map.
        block: BlockId,
        /// Profiled cycle of first use.
        before_cycle: u64,
    },
    /// Copy the (written) block back to off-chip memory at run end.
    WriteBack {
        /// Block to write back.
        block: BlockId,
    },
}

impl TransferCommand {
    /// The block the command moves.
    pub fn block(&self) -> BlockId {
        match *self {
            TransferCommand::MapIn { block, .. } | TransferCommand::WriteBack { block } => block,
        }
    }
}

/// The transfer schedule for one mapping of one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    commands: Vec<TransferCommand>,
}

impl Schedule {
    /// The commands: map-ins in first-use order, then write-backs.
    pub fn commands(&self) -> &[TransferCommand] {
        &self.commands
    }

    /// Number of map-in commands.
    pub fn map_ins(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, TransferCommand::MapIn { .. }))
            .count()
    }

    /// Number of write-back commands.
    pub fn write_backs(&self) -> usize {
        self.commands.len() - self.map_ins()
    }
}

/// Builds the transfer schedule for `mapping` from the profiled access
/// sequence.
///
/// Only SPM-mapped blocks get commands; a write-back is generated for
/// data blocks with a non-zero profiled write count (the others are
/// clean copies).
pub fn build_schedule(profile: &Profile, mapping: &MdaOutput) -> Schedule {
    let mut commands = Vec::new();
    for block in profile.sequence.blocks_in_first_use_order() {
        let d = mapping.decision(block);
        if d.decision.role().is_none() {
            continue;
        }
        let before_cycle = profile.sequence.first_use(block).unwrap_or(0);
        commands.push(TransferCommand::MapIn {
            block,
            before_cycle,
        });
    }
    // Blocks used but never appearing in the sequence (possible for data
    // blocks only touched via DMA) get no map-in; write-backs follow.
    for d in &mapping.decisions {
        let mapped_data = matches!(
            d.decision,
            MapDecision::DataStt | MapDecision::DataEcc | MapDecision::DataParity
        );
        if mapped_data && profile.block(d.block).writes > 0 {
            commands.push(TransferCommand::WriteBack { block: d.block });
        }
    }
    Schedule { commands }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mda::run_baseline;
    use crate::SpmStructure;
    use ftspm_profile::{AccessSequence, BlockProfile, Episode, Profile};
    use ftspm_sim::Program;

    fn fixture() -> (Program, Profile) {
        let mut b = Program::builder("p");
        b.code("F", 512, 0);
        b.data("A", 512);
        b.data("B", 512);
        let p = b.build();
        let blocks: Vec<BlockProfile> = p
            .iter()
            .map(|(id, s)| BlockProfile {
                block: id,
                name: s.name().into(),
                kind: s.kind(),
                size_bytes: s.size_bytes(),
                reads: 50,
                writes: if s.name() == "A" { 5 } else { 0 },
                references: 2,
                stack_calls: 0,
                max_stack_bytes: 0,
                lifetime_cycles: 100,
                first_access: 0,
                last_access: 100,
            })
            .collect();
        let seq = AccessSequence::new(vec![
            Episode {
                block: p.find("F").unwrap(),
                start_cycle: 0,
            },
            Episode {
                block: p.find("B").unwrap(),
                start_cycle: 5,
            },
            Episode {
                block: p.find("A").unwrap(),
                start_cycle: 9,
            },
        ]);
        let prof = Profile {
            program: "p".into(),
            blocks,
            sequence: seq,
            total_cycles: 200,
        };
        (p, prof)
    }

    #[test]
    fn map_ins_follow_first_use_order() {
        let (p, prof) = fixture();
        let structure = SpmStructure::pure_stt();
        let mapping = run_baseline(&p, &prof, &structure);
        let s = build_schedule(&prof, &mapping);
        let map_ins: Vec<_> = s
            .commands()
            .iter()
            .filter_map(|c| match c {
                TransferCommand::MapIn { block, .. } => Some(*block),
                _ => None,
            })
            .collect();
        assert_eq!(
            map_ins,
            vec![
                p.find("F").unwrap(),
                p.find("B").unwrap(),
                p.find("A").unwrap()
            ]
        );
        assert_eq!(s.map_ins(), 3);
    }

    #[test]
    fn only_written_data_blocks_get_write_backs() {
        let (p, prof) = fixture();
        let structure = SpmStructure::pure_stt();
        let mapping = run_baseline(&p, &prof, &structure);
        let s = build_schedule(&prof, &mapping);
        let wb: Vec<_> = s
            .commands()
            .iter()
            .filter_map(|c| match c {
                TransferCommand::WriteBack { block } => Some(*block),
                _ => None,
            })
            .collect();
        assert_eq!(wb, vec![p.find("A").unwrap()]);
        assert_eq!(s.write_backs(), 1);
    }

    #[test]
    fn off_chip_blocks_get_no_commands() {
        let (p, prof) = fixture();
        let structure = SpmStructure::pure_stt();
        let mut mapping = run_baseline(&p, &prof, &structure);
        let a = p.find("A").unwrap();
        mapping.decisions[a.index()].decision = MapDecision::OffChip;
        let s = build_schedule(&prof, &mapping);
        assert!(s.commands().iter().all(|c| c.block() != a));
    }
}
