//! The hybrid SPM structure and the paper's baseline structures.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{RegionId, SpmRegionSpec};

/// The role a region plays in a scratchpad structure. The MDA decisions
/// name roles, not raw region ids, so one mapping algorithm serves FTSPM
/// and both baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionRole {
    /// The instruction SPM (pure STT-RAM in FTSPM).
    Instruction,
    /// The soft-error-immune STT-RAM part of the data SPM.
    DataStt,
    /// The SEC-DED-protected SRAM part of the data SPM.
    DataEcc,
    /// The parity-protected SRAM part of the data SPM.
    DataParity,
}

/// A named scratchpad structure: an ordered list of regions with roles.
///
/// Region order defines the [`RegionId`]s used when instantiating a
/// machine from this structure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmStructure {
    name: String,
    regions: Vec<(RegionRole, SpmRegionSpec)>,
}

impl SpmStructure {
    /// Creates a structure from `(role, spec)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a role repeats or the list is empty.
    pub fn new(name: impl Into<String>, regions: Vec<(RegionRole, SpmRegionSpec)>) -> Self {
        assert!(!regions.is_empty(), "a structure needs at least one region");
        for (i, (role, _)) in regions.iter().enumerate() {
            assert!(
                regions[i + 1..].iter().all(|(r, _)| r != role),
                "role {role:?} repeats"
            );
        }
        Self {
            name: name.into(),
            regions,
        }
    }

    /// The FTSPM structure of the paper's Table IV: 16 KiB STT-RAM I-SPM;
    /// data SPM of 12 KiB STT-RAM + 2 KiB SEC-DED SRAM + 2 KiB parity
    /// SRAM.
    pub fn ftspm() -> Self {
        Self::ftspm_with_sizes(16, 12, 2, 2)
    }

    /// An FTSPM structure with custom region sizes in KiB (for the size-
    /// split ablation).
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn ftspm_with_sizes(ispm_kib: u64, stt_kib: u64, ecc_kib: u64, parity_kib: u64) -> Self {
        Self::new(
            "FTSPM",
            vec![
                (
                    RegionRole::Instruction,
                    SpmRegionSpec::new(
                        "I-SPM STT-RAM",
                        Technology::SttRam,
                        ProtectionScheme::Immune,
                        RegionGeometry::from_kib(ispm_kib),
                    ),
                ),
                (
                    RegionRole::DataStt,
                    SpmRegionSpec::new(
                        "D-SPM STT-RAM",
                        Technology::SttRam,
                        ProtectionScheme::Immune,
                        RegionGeometry::from_kib(stt_kib),
                    ),
                ),
                (
                    RegionRole::DataEcc,
                    SpmRegionSpec::new(
                        "D-SPM SEC-DED SRAM",
                        Technology::SramSecDed,
                        ProtectionScheme::SecDed,
                        RegionGeometry::from_kib(ecc_kib),
                    ),
                ),
                (
                    RegionRole::DataParity,
                    SpmRegionSpec::new(
                        "D-SPM parity SRAM",
                        Technology::SramParity,
                        ProtectionScheme::Parity,
                        RegionGeometry::from_kib(parity_kib),
                    ),
                ),
            ],
        )
    }

    /// The paper's first baseline: a pure SRAM SPM protected by SEC-DED
    /// (16 KiB I + 16 KiB D, 2-cycle accesses).
    pub fn pure_sram() -> Self {
        Self::new(
            "pure SRAM (SEC-DED)",
            vec![
                (
                    RegionRole::Instruction,
                    SpmRegionSpec::new(
                        "I-SPM SEC-DED SRAM",
                        Technology::SramSecDed,
                        ProtectionScheme::SecDed,
                        RegionGeometry::from_kib(16),
                    ),
                ),
                (
                    RegionRole::DataStt, // fills the "bulk data" role
                    SpmRegionSpec::new(
                        "D-SPM SEC-DED SRAM",
                        Technology::SramSecDed,
                        ProtectionScheme::SecDed,
                        RegionGeometry::from_kib(16),
                    ),
                ),
            ],
        )
    }

    /// The paper's second baseline: a pure STT-RAM SPM (16 KiB I + 16 KiB
    /// D, 1-cycle reads / 10-cycle writes, soft-error immune).
    pub fn pure_stt() -> Self {
        Self::new(
            "pure STT-RAM",
            vec![
                (
                    RegionRole::Instruction,
                    SpmRegionSpec::new(
                        "I-SPM STT-RAM",
                        Technology::SttRam,
                        ProtectionScheme::Immune,
                        RegionGeometry::from_kib(16),
                    ),
                ),
                (
                    RegionRole::DataStt,
                    SpmRegionSpec::new(
                        "D-SPM STT-RAM",
                        Technology::SttRam,
                        ProtectionScheme::Immune,
                        RegionGeometry::from_kib(16),
                    ),
                ),
            ],
        )
    }

    /// Structure name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(role, spec)` pairs in region-id order.
    pub fn regions(&self) -> &[(RegionRole, SpmRegionSpec)] {
        &self.regions
    }

    /// The region specs alone, for [`ftspm_sim::MachineConfig`].
    pub fn specs(&self) -> Vec<SpmRegionSpec> {
        self.regions.iter().map(|(_, s)| s.clone()).collect()
    }

    /// The region id filling `role`, if present.
    pub fn region_id(&self, role: RegionRole) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|(r, _)| *r == role)
            .map(RegionId::new)
    }

    /// The spec filling `role`, if present.
    pub fn spec(&self, role: RegionRole) -> Option<&SpmRegionSpec> {
        self.regions
            .iter()
            .find(|(r, _)| *r == role)
            .map(|(_, s)| s)
    }

    /// The role of region `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn role_of(&self, id: RegionId) -> RegionRole {
        self.regions[id.index()].0
    }

    /// Total SPM capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions
            .iter()
            .map(|(_, s)| u64::from(s.geometry().bytes()))
            .sum()
    }

    /// Total leakage power of the structure's regions, mW (the paper's
    /// static-power comparison quantity).
    pub fn leakage_mw(&self) -> f64 {
        self.regions
            .iter()
            .map(|(_, s)| s.params().leakage_mw(s.geometry()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftspm_matches_table_iv() {
        let s = SpmStructure::ftspm();
        assert_eq!(s.total_bytes(), 32 * 1024);
        let ispm = s.spec(RegionRole::Instruction).unwrap();
        assert_eq!(ispm.technology(), Technology::SttRam);
        assert_eq!(ispm.geometry().bytes(), 16 * 1024);
        assert_eq!(
            s.spec(RegionRole::DataStt).unwrap().geometry().bytes(),
            12 * 1024
        );
        assert_eq!(
            s.spec(RegionRole::DataEcc).unwrap().geometry().bytes(),
            2 * 1024
        );
        assert_eq!(
            s.spec(RegionRole::DataParity).unwrap().geometry().bytes(),
            2 * 1024
        );
    }

    #[test]
    fn baselines_have_32_kib_and_no_sram_regions_in_stt() {
        for s in [SpmStructure::pure_sram(), SpmStructure::pure_stt()] {
            assert_eq!(s.total_bytes(), 32 * 1024);
            assert!(s.spec(RegionRole::DataEcc).is_none());
            assert!(s.spec(RegionRole::DataParity).is_none());
        }
        assert!(SpmStructure::pure_stt().leakage_mw() < SpmStructure::pure_sram().leakage_mw());
    }

    #[test]
    fn region_ids_follow_declaration_order() {
        let s = SpmStructure::ftspm();
        assert_eq!(s.region_id(RegionRole::Instruction), Some(RegionId::new(0)));
        assert_eq!(s.region_id(RegionRole::DataParity), Some(RegionId::new(3)));
        assert_eq!(s.role_of(RegionId::new(2)), RegionRole::DataEcc);
    }

    #[test]
    fn static_power_ordering() {
        // Fig. 6 shape: STT < FTSPM < SRAM.
        let stt = SpmStructure::pure_stt().leakage_mw();
        let ftspm = SpmStructure::ftspm().leakage_mw();
        let sram = SpmStructure::pure_sram().leakage_mw();
        assert!(stt < ftspm && ftspm < sram);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_roles_rejected() {
        let spec = SpmRegionSpec::new(
            "x",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(1),
        );
        let _ = SpmStructure::new(
            "bad",
            vec![
                (RegionRole::DataStt, spec.clone()),
                (RegionRole::DataStt, spec),
            ],
        );
    }
}
