//! Closed-form scenario cost estimators used by the MDA threshold loops.
//!
//! Algorithm 1 "calculates the performance overhead of the current
//! mapping scenario" inside its eviction loops (lines 13–22). A compiler-
//! side tool cannot re-simulate the application on every iteration, so —
//! like the paper's tool — it estimates a scenario from the profile
//! counts and the Table IV access parameters:
//!
//! * the *ideal* mapping puts every data block in 1-cycle parity SRAM
//!   (the paper: "from the performance and dynamic energy points of view,
//!   all the program blocks are better to be mapped to the
//!   parity-protected SRAM region");
//! * a block kept in STT-RAM costs `reads·1 + writes·10` cycles and the
//!   STT per-access energies;
//! * a block evicted from STT-RAM is estimated at parity-SRAM cost (its
//!   eventual home, ECC or parity SRAM, is decided later in step 6).
//!
//! The simulator then validates the estimate end-to-end.

use ftspm_profile::BlockProfile;
use ftspm_sim::SpmRegionSpec;

/// Estimated cycles and dynamic energy of one block under one region.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockCost {
    /// Estimated access cycles.
    pub cycles: f64,
    /// Estimated dynamic energy, pJ.
    pub energy_pj: f64,
}

impl BlockCost {
    /// Element-wise sum.
    pub fn plus(self, other: BlockCost) -> BlockCost {
        BlockCost {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }
}

/// Cost of serving `row`'s profiled accesses from a region with `spec`'s
/// technology.
pub fn block_cost(row: &BlockProfile, spec: &SpmRegionSpec) -> BlockCost {
    let p = spec.params();
    let g = spec.geometry();
    BlockCost {
        cycles: row.reads as f64 * f64::from(p.read_latency)
            + row.writes as f64 * f64::from(p.write_latency),
        energy_pj: row.reads as f64 * p.read_energy_pj(g)
            + row.writes as f64 * p.write_energy_pj(g),
    }
}

/// The idealised cost of `row`: every access at 1 cycle and parity-SRAM
/// energy.
pub fn ideal_cost(row: &BlockProfile, parity_like: &SpmRegionSpec) -> BlockCost {
    let p = parity_like.params();
    let g = parity_like.geometry();
    BlockCost {
        cycles: (row.reads + row.writes) as f64,
        energy_pj: row.reads as f64 * p.read_energy_pj(g)
            + row.writes as f64 * p.write_energy_pj(g),
    }
}

/// A whole-scenario estimate over a set of data blocks split into
/// STT-resident and evicted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScenarioEstimate {
    /// Estimated scenario cost.
    pub scenario: BlockCost,
    /// Ideal cost of the same blocks.
    pub ideal: BlockCost,
}

impl ScenarioEstimate {
    /// Fractional performance overhead over ideal (0 if no accesses).
    pub fn perf_overhead(&self) -> f64 {
        if self.ideal.cycles == 0.0 {
            0.0
        } else {
            (self.scenario.cycles - self.ideal.cycles) / self.ideal.cycles
        }
    }

    /// Fractional dynamic-energy overhead over ideal (0 if no accesses).
    pub fn energy_overhead(&self) -> f64 {
        if self.ideal.energy_pj == 0.0 {
            0.0
        } else {
            (self.scenario.energy_pj - self.ideal.energy_pj) / self.ideal.energy_pj
        }
    }
}

/// Estimates a scenario: `stt_rows` stay in `stt_spec`, `evicted_rows`
/// are costed at `parity_spec` (their optimistic SRAM home).
pub fn estimate_scenario<'a>(
    stt_rows: impl IntoIterator<Item = &'a BlockProfile>,
    evicted_rows: impl IntoIterator<Item = &'a BlockProfile>,
    stt_spec: &SpmRegionSpec,
    parity_spec: &SpmRegionSpec,
) -> ScenarioEstimate {
    let mut est = ScenarioEstimate::default();
    for row in stt_rows {
        est.scenario = est.scenario.plus(block_cost(row, stt_spec));
        est.ideal = est.ideal.plus(ideal_cost(row, parity_spec));
    }
    for row in evicted_rows {
        est.scenario = est.scenario.plus(block_cost(row, parity_spec));
        est.ideal = est.ideal.plus(ideal_cost(row, parity_spec));
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspm_ecc::ProtectionScheme;
    use ftspm_mem::{RegionGeometry, Technology};
    use ftspm_sim::{BlockId, BlockKind};

    fn row(reads: u64, writes: u64) -> BlockProfile {
        BlockProfile {
            block: BlockId::new(0),
            name: "b".into(),
            kind: BlockKind::Data,
            size_bytes: 64,
            reads,
            writes,
            references: 1,
            stack_calls: 0,
            max_stack_bytes: 0,
            lifetime_cycles: 100,
            first_access: 0,
            last_access: 100,
        }
    }

    fn stt() -> SpmRegionSpec {
        SpmRegionSpec::new(
            "stt",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(12),
        )
    }

    fn parity() -> SpmRegionSpec {
        SpmRegionSpec::new(
            "par",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_kib(2),
        )
    }

    #[test]
    fn stt_writes_dominate_cycles() {
        let r = row(100, 100);
        let c = block_cost(&r, &stt());
        assert_eq!(c.cycles, 100.0 + 1000.0);
        let i = ideal_cost(&r, &parity());
        assert_eq!(i.cycles, 200.0);
    }

    #[test]
    fn read_only_block_in_stt_has_no_perf_overhead() {
        let r = row(1000, 0);
        let rows = [r];
        let est = estimate_scenario(rows.iter(), [].iter(), &stt(), &parity());
        assert_eq!(est.perf_overhead(), 0.0);
        // …and *saves* energy (STT reads are cheaper than parity reads).
        assert!(est.energy_overhead() < 0.0);
    }

    #[test]
    fn evicting_write_heavy_block_removes_overhead() {
        let hot = row(0, 1000);
        let kept = [hot.clone()];
        let with_hot = estimate_scenario(kept.iter(), [].iter(), &stt(), &parity());
        let evicted = [hot];
        let without = estimate_scenario([].iter(), evicted.iter(), &stt(), &parity());
        assert!(with_hot.perf_overhead() > 5.0, "10x write latency");
        assert_eq!(without.perf_overhead(), 0.0);
        assert!(with_hot.energy_overhead() > without.energy_overhead());
    }

    #[test]
    fn empty_scenario_is_zero_overhead() {
        let est = estimate_scenario([].iter(), [].iter(), &stt(), &parity());
        assert_eq!(est.perf_overhead(), 0.0);
        assert_eq!(est.energy_overhead(), 0.0);
    }
}
