//! The Mapping Determiner Algorithm (the paper's Algorithm 1).
//!
//! MDA is the off-line phase of FTSPM: given the profiling information it
//! decides, for every program block, which region of the hybrid SPM the
//! block will live in. Its six steps (paper §III):
//!
//! 1. map code blocks to the instruction SPM and data blocks to the
//!    STT-RAM region of the data SPM, capacity permitting;
//! 2. sort the STT-resident data blocks by *susceptibility*
//!    (references × lifetime);
//! 3. while the estimated performance overhead exceeds its threshold,
//!    evict the least susceptible block from STT-RAM;
//! 4. likewise for the dynamic-energy overhead;
//! 5. evict every block whose write count exceeds the STT-RAM write
//!    threshold, regardless of susceptibility;
//! 6. place the evicted blocks into SEC-DED SRAM (susceptibility at or
//!    above the evicted average) or parity SRAM (below average), capacity
//!    permitting; anything that does not fit stays off-chip behind the
//!    L1 caches.
//!
//! Every decision carries its provenance ([`DecisionReason`]), which is
//! what the paper's Table II reports.

use ftspm_profile::Profile;
use ftspm_sim::{BlockId, PlacementMap, Program, SimError};

use crate::estimate::estimate_scenario;
use crate::{MdaThresholds, RegionRole, SpmStructure};

/// Where MDA decided a block should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapDecision {
    /// The instruction SPM.
    Instruction,
    /// The STT-RAM region of the data SPM.
    DataStt,
    /// The SEC-DED SRAM region of the data SPM.
    DataEcc,
    /// The parity SRAM region of the data SPM.
    DataParity,
    /// Time-multiplexes the STT-RAM region's spare space with other
    /// dynamic blocks (the paper's §II *dynamic approach*, applied to
    /// blocks the static mapping had to spill off-chip).
    DataSttDynamic,
    /// Not mapped: served through the L1 caches from off-chip memory.
    OffChip,
}

impl MapDecision {
    /// The region role this decision maps to, if any.
    pub fn role(self) -> Option<RegionRole> {
        match self {
            MapDecision::Instruction => Some(RegionRole::Instruction),
            MapDecision::DataStt => Some(RegionRole::DataStt),
            MapDecision::DataEcc => Some(RegionRole::DataEcc),
            MapDecision::DataParity => Some(RegionRole::DataParity),
            MapDecision::DataSttDynamic => Some(RegionRole::DataStt),
            MapDecision::OffChip => None,
        }
    }

    /// Short label matching the paper's Table II nomenclature.
    pub fn label(self) -> &'static str {
        match self {
            MapDecision::Instruction => "STT-RAM (I-SPM)",
            MapDecision::DataStt => "STT-RAM",
            MapDecision::DataEcc => "SRAM (ECC)",
            MapDecision::DataParity => "SRAM (Parity)",
            MapDecision::DataSttDynamic => "STT-RAM (dynamic)",
            MapDecision::OffChip => "No",
        }
    }
}

/// Why a block ended up where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionReason {
    /// Placed in step 1 and never evicted.
    MappedInitially,
    /// Did not fit the target region's remaining capacity in step 1.
    TooLarge,
    /// Evicted from STT-RAM by the performance loop (step 3).
    EvictedPerformance,
    /// Evicted from STT-RAM by the energy loop (step 4).
    EvictedEnergy,
    /// Evicted from STT-RAM by the write-endurance check (step 5).
    EvictedEndurance,
    /// Step 6: susceptibility at or above the evicted average → ECC SRAM.
    HighSusceptibility,
    /// Step 6: susceptibility below the evicted average → parity SRAM.
    LowSusceptibility,
    /// Step 6: no SRAM region had space left.
    NoSpaceLeft,
    /// Promoted from off-chip to dynamic STT-RAM multiplexing.
    PromotedDynamic,
}

/// MDA's verdict for one block (a row of the paper's Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecision {
    /// The block.
    pub block: BlockId,
    /// Block name.
    pub name: String,
    /// Final destination.
    pub decision: MapDecision,
    /// Why the block landed there.
    pub reason: DecisionReason,
    /// If the block was evicted from STT-RAM, the step that evicted it.
    pub evicted_by: Option<DecisionReason>,
    /// The block's susceptibility (references × lifetime).
    pub susceptibility: f64,
}

/// The complete MDA output.
#[derive(Debug, Clone, PartialEq)]
pub struct MdaOutput {
    /// Per-block decisions, in block-id order.
    pub decisions: Vec<BlockDecision>,
    /// Final estimated performance overhead over the ideal mapping.
    pub perf_overhead: f64,
    /// Final estimated dynamic-energy overhead over the ideal mapping.
    pub energy_overhead: f64,
    /// Average susceptibility over the evicted blocks (step 6 pivot),
    /// 0 if nothing was evicted.
    pub avg_evicted_susceptibility: f64,
    /// Name of the structure the mapping targets.
    pub structure: String,
}

impl MdaOutput {
    /// The decision for `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn decision(&self, block: BlockId) -> &BlockDecision {
        &self.decisions[block.index()]
    }

    /// Looks a decision up by block name.
    pub fn find(&self, name: &str) -> Option<&BlockDecision> {
        self.decisions.iter().find(|d| d.name == name)
    }

    /// Materialises the decisions as a [`PlacementMap`] over `structure`.
    ///
    /// Blocks are allocated within each region in descending
    /// susceptibility order.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::RegionFull`] if the decisions overflow a
    /// region (cannot happen for outputs of [`run_mda`], which tracks
    /// capacities).
    pub fn placement(
        &self,
        program: &Program,
        structure: &SpmStructure,
    ) -> Result<PlacementMap, SimError> {
        let specs = structure.specs();
        let mut map = PlacementMap::new(program, &specs);
        let mut order: Vec<&BlockDecision> = self.decisions.iter().collect();
        order.sort_by(|a, b| {
            b.susceptibility
                .partial_cmp(&a.susceptibility)
                .expect("susceptibility is finite")
        });
        // Static placements reserve space first; dynamic blocks then
        // multiplex whatever is left of their region.
        for d in &order {
            if d.decision == MapDecision::DataSttDynamic {
                continue;
            }
            if let Some(role) = d.decision.role() {
                let region = structure
                    .region_id(role)
                    .expect("decision role exists in structure");
                map.place(program, d.block, region)?;
            }
        }
        for d in &order {
            if d.decision == MapDecision::DataSttDynamic {
                let region = structure
                    .region_id(RegionRole::DataStt)
                    .expect("dynamic decisions target the STT region");
                map.place_dynamic(program, d.block, region)?;
            }
        }
        Ok(map)
    }

    /// Blocks mapped to a given decision.
    pub fn blocks_with(&self, decision: MapDecision) -> Vec<BlockId> {
        self.decisions
            .iter()
            .filter(|d| d.decision == decision)
            .map(|d| d.block)
            .collect()
    }
}

/// Runs Algorithm 1.
///
/// `structure` must provide all four [`RegionRole`]s (use
/// [`run_baseline`] for the two-region baselines).
///
/// # Panics
///
/// Panics if `structure` lacks the ECC or parity region, or if `profile`
/// does not cover `program`.
pub fn run_mda(
    program: &Program,
    profile: &Profile,
    structure: &SpmStructure,
    thresholds: &MdaThresholds,
) -> MdaOutput {
    assert_eq!(
        profile.blocks.len(),
        program.len(),
        "profile/program mismatch"
    );
    let stt_spec = structure
        .spec(RegionRole::DataStt)
        .expect("FTSPM structure has an STT data region");
    let ecc_spec = structure
        .spec(RegionRole::DataEcc)
        .expect("FTSPM structure has an ECC region");
    let parity_spec = structure
        .spec(RegionRole::DataParity)
        .expect("FTSPM structure has a parity region");
    let ispm_spec = structure
        .spec(RegionRole::Instruction)
        .expect("structure has an instruction SPM");

    let mut decisions: Vec<BlockDecision> = program
        .iter()
        .map(|(id, spec)| BlockDecision {
            block: id,
            name: spec.name().to_string(),
            decision: MapDecision::OffChip,
            reason: DecisionReason::TooLarge,
            evicted_by: None,
            susceptibility: profile.block(id).susceptibility(),
        })
        .collect();

    // ---- Step 1: code → I-SPM, data → STT-RAM, capacity permitting. ----
    let mut ispm_free = ispm_spec.geometry().bytes();
    let mut code: Vec<BlockId> = program.code_blocks();
    code.sort_by_key(|&b| std::cmp::Reverse(profile.block(b).reads));
    for b in code {
        let size = program.block(b).size_bytes();
        if size <= ispm_free {
            ispm_free -= size;
            decisions[b.index()].decision = MapDecision::Instruction;
            decisions[b.index()].reason = DecisionReason::MappedInitially;
        }
    }

    let mut stt_free = stt_spec.geometry().bytes();
    let mut data: Vec<BlockId> = program.data_blocks();
    data.sort_by(|&a, &b| {
        profile
            .block(b)
            .susceptibility()
            .partial_cmp(&profile.block(a).susceptibility())
            .expect("susceptibility is finite")
    });
    let mut in_stt: Vec<BlockId> = Vec::new();
    let mut evicted: Vec<(BlockId, DecisionReason)> = Vec::new();
    for &b in &data {
        let size = program.block(b).size_bytes();
        if size <= stt_free {
            stt_free -= size;
            in_stt.push(b);
        } else {
            evicted.push((b, DecisionReason::TooLarge));
        }
    }

    // ---- Steps 2–4: eviction loops under the overhead thresholds. ----
    // `in_stt` is kept sorted by descending susceptibility (step 2); the
    // loops pop from the back (least susceptible first).
    let estimate = |in_stt: &[BlockId], evicted: &[(BlockId, DecisionReason)]| {
        estimate_scenario(
            in_stt.iter().map(|&b| profile.block(b)),
            evicted.iter().map(|&(b, _)| profile.block(b)),
            stt_spec,
            parity_spec,
        )
    };
    while estimate(&in_stt, &evicted).perf_overhead() > thresholds.perf_overhead_frac {
        let Some(b) = in_stt.pop() else { break };
        evicted.push((b, DecisionReason::EvictedPerformance));
    }
    while estimate(&in_stt, &evicted).energy_overhead() > thresholds.energy_overhead_frac {
        let Some(b) = in_stt.pop() else { break };
        evicted.push((b, DecisionReason::EvictedEnergy));
    }

    // ---- Step 5: endurance check — unconditional on susceptibility. ----
    in_stt.retain(|&b| {
        if profile.block(b).writes > thresholds.write_cycles_threshold {
            evicted.push((b, DecisionReason::EvictedEndurance));
            false
        } else {
            true
        }
    });

    for &b in &in_stt {
        decisions[b.index()].decision = MapDecision::DataStt;
        decisions[b.index()].reason = DecisionReason::MappedInitially;
    }

    // ---- Step 6: place evicted blocks into ECC / parity SRAM. ----
    let avg_sus = if evicted.is_empty() {
        0.0
    } else {
        evicted
            .iter()
            .map(|&(b, _)| profile.block(b).susceptibility())
            .sum::<f64>()
            / evicted.len() as f64
    };
    evicted.sort_by(|&(a, _), &(b, _)| {
        profile
            .block(b)
            .susceptibility()
            .partial_cmp(&profile.block(a).susceptibility())
            .expect("susceptibility is finite")
    });
    let mut ecc_free = ecc_spec.geometry().bytes();
    let mut parity_free = parity_spec.geometry().bytes();
    for (b, why) in evicted {
        let size = program.block(b).size_bytes();
        let sus = profile.block(b).susceptibility();
        let d = &mut decisions[b.index()];
        d.evicted_by = Some(why);
        if sus >= avg_sus && size <= ecc_free {
            ecc_free -= size;
            d.decision = MapDecision::DataEcc;
            d.reason = DecisionReason::HighSusceptibility;
        } else if sus < avg_sus && size <= parity_free {
            parity_free -= size;
            d.decision = MapDecision::DataParity;
            d.reason = DecisionReason::LowSusceptibility;
        } else if size <= parity_free {
            // Fallbacks beyond the paper's pseudo-code: use whichever SRAM
            // region still has room rather than spilling off-chip.
            parity_free -= size;
            d.decision = MapDecision::DataParity;
            d.reason = DecisionReason::HighSusceptibility;
        } else if size <= ecc_free {
            ecc_free -= size;
            d.decision = MapDecision::DataEcc;
            d.reason = DecisionReason::LowSusceptibility;
        } else {
            d.decision = MapDecision::OffChip;
            d.reason = DecisionReason::NoSpaceLeft;
        }
    }

    let final_est = {
        let stt_rows: Vec<BlockId> = in_stt.clone();
        let other: Vec<(BlockId, DecisionReason)> = decisions
            .iter()
            .filter(|d| matches!(d.decision, MapDecision::DataEcc | MapDecision::DataParity))
            .map(|d| (d.block, DecisionReason::MappedInitially))
            .collect();
        estimate(&stt_rows, &other)
    };

    MdaOutput {
        decisions,
        perf_overhead: final_est.perf_overhead(),
        energy_overhead: final_est.energy_overhead(),
        avg_evicted_susceptibility: avg_sus,
        structure: structure.name().to_string(),
    }
}

/// Runs Algorithm 1, then promotes data blocks the static mapping had to
/// leave off-chip into *dynamic* STT-RAM residents: they time-multiplex
/// the STT region's spare capacity under the machine's LRU policy (the
/// paper's §II dynamic approach, as an extension to its static MDA).
///
/// A block is promoted only if it fits the STT region's spare pool on its
/// own; since STT-RAM is immune, promotion never hurts the vulnerability
/// model — it trades DMA traffic for cache misses.
///
/// # Panics
///
/// As [`run_mda`].
pub fn run_mda_dynamic(
    program: &Program,
    profile: &Profile,
    structure: &SpmStructure,
    thresholds: &MdaThresholds,
) -> MdaOutput {
    let mut out = run_mda(program, profile, structure, thresholds);
    let stt_capacity = structure
        .spec(RegionRole::DataStt)
        .expect("FTSPM structure has an STT data region")
        .geometry()
        .bytes();
    // Any spilled data block that would fit the region on its own?
    let spilled = out.decisions.iter().any(|d| {
        d.decision == MapDecision::OffChip
            && program.block(d.block).kind() == ftspm_sim::BlockKind::Data
            && program.block(d.block).size_bytes() <= stt_capacity
    });
    if !spilled {
        return out; // static mapping already holds everything it can
    }
    // Switch the STT region to pool mode: its static residents and every
    // fitting spilled block time-multiplex the full capacity.
    for d in &mut out.decisions {
        let size = program.block(d.block).size_bytes();
        let is_data = program.block(d.block).kind() == ftspm_sim::BlockKind::Data;
        match d.decision {
            MapDecision::DataStt => {
                d.decision = MapDecision::DataSttDynamic;
            }
            MapDecision::OffChip if is_data && size <= stt_capacity => {
                d.decision = MapDecision::DataSttDynamic;
                d.reason = DecisionReason::PromotedDynamic;
            }
            _ => {}
        }
    }
    out
}

/// Runs Algorithm 1 with a **per-core/shared-block dimension**: each
/// block's susceptibility is weighted by how many cores touch it.
///
/// On an N-core machine a strike in a shared block is observed by every
/// sharer (the coherence fabric propagates the DUE re-fetch or the
/// corrupted value to all of them), so a block shared by `s` cores is
/// effectively `s` times as exposed as the single-core model assumes.
/// `sharer_counts[block.index()]` gives that `s` (0 and 1 both mean
/// private; values are clamped to ≥ 1). The weighted profile biases the
/// eviction loops and the step-6 ECC/parity split toward keeping shared
/// blocks in immune STT-RAM or SEC-DED SRAM.
///
/// With every count ≤ 1 this is exactly [`run_mda`].
///
/// # Panics
///
/// As [`run_mda`]; additionally if `sharer_counts` does not cover
/// `program`.
pub fn run_mda_multicore(
    program: &Program,
    profile: &Profile,
    structure: &SpmStructure,
    thresholds: &MdaThresholds,
    sharer_counts: &[u32],
) -> MdaOutput {
    assert_eq!(
        sharer_counts.len(),
        program.len(),
        "sharer_counts/program mismatch"
    );
    // Susceptibility is references × lifetime; scaling `references` by
    // the sharer count scales susceptibility by it while leaving the
    // read/write volumes (which drive the perf/energy estimates) alone.
    let mut weighted = profile.clone();
    for (row, &sharers) in weighted.blocks.iter_mut().zip(sharer_counts) {
        row.references = row.references.saturating_mul(u64::from(sharers.max(1)));
    }
    run_mda(program, &weighted, structure, thresholds)
}

/// The mapping used for the paper's baselines (pure SRAM / pure STT-RAM):
/// code blocks into the instruction SPM, data blocks into the bulk data
/// region, both by descending access count / susceptibility, no eviction
/// loops.
///
/// # Panics
///
/// Panics if `structure` lacks an instruction or data region, or if
/// `profile` does not cover `program`.
pub fn run_baseline(program: &Program, profile: &Profile, structure: &SpmStructure) -> MdaOutput {
    assert_eq!(
        profile.blocks.len(),
        program.len(),
        "profile/program mismatch"
    );
    let ispm = structure
        .spec(RegionRole::Instruction)
        .expect("baseline has an instruction SPM");
    let dspm = structure
        .spec(RegionRole::DataStt)
        .expect("baseline has a data SPM");
    let mut decisions: Vec<BlockDecision> = program
        .iter()
        .map(|(id, spec)| BlockDecision {
            block: id,
            name: spec.name().to_string(),
            decision: MapDecision::OffChip,
            reason: DecisionReason::TooLarge,
            evicted_by: None,
            susceptibility: profile.block(id).susceptibility(),
        })
        .collect();
    let mut ispm_free = ispm.geometry().bytes();
    let mut code = program.code_blocks();
    code.sort_by_key(|&b| std::cmp::Reverse(profile.block(b).reads));
    for b in code {
        let size = program.block(b).size_bytes();
        if size <= ispm_free {
            ispm_free -= size;
            decisions[b.index()].decision = MapDecision::Instruction;
            decisions[b.index()].reason = DecisionReason::MappedInitially;
        }
    }
    let mut dspm_free = dspm.geometry().bytes();
    let mut data = program.data_blocks();
    data.sort_by(|&a, &b| {
        profile
            .block(b)
            .susceptibility()
            .partial_cmp(&profile.block(a).susceptibility())
            .expect("susceptibility is finite")
    });
    for b in data {
        let size = program.block(b).size_bytes();
        if size <= dspm_free {
            dspm_free -= size;
            decisions[b.index()].decision = MapDecision::DataStt;
            decisions[b.index()].reason = DecisionReason::MappedInitially;
        }
    }
    MdaOutput {
        decisions,
        perf_overhead: 0.0,
        energy_overhead: 0.0,
        avg_evicted_susceptibility: 0.0,
        structure: structure.name().to_string(),
    }
}
