//! The paper's reliability model: equations (1)–(7).
//!
//! `Vulnerability = SDC_AVF + DUE_AVF` (eq. 1), where each AVF term sums,
//! over the blocks resident in a vulnerable (SRAM) region, the block's
//! *ACE time* — the fraction of execution during which the block is
//! architecturally correct-execution critical — times the probability
//! that a particle strike in that region escapes as SDC (eqs. 6–7) or
//! trips as a detected-unrecoverable error (eqs. 4–5) under the MBU size
//! distribution.
//!
//! ACE time is the block's live span over the run (`lifetime / total
//! cycles`, the profiler's lifetime definition), and vulnerabilities are
//! normalised by the total ACE mass of all SPM-resident blocks so that a
//! structure-level *reliability* (`1 − vulnerability`) can be quoted, as
//! the paper does in §IV: the all-SEC-DED baseline lands at
//! `1 − P(≥2 flips) = 62 %` for every workload — exactly the paper's
//! baseline reliability — and FTSPM's comes out around 86 %.

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_profile::Profile;
use ftspm_sim::BlockId;

use crate::mda::{MapDecision, MdaOutput};
use crate::{RegionRole, SpmStructure};

/// Per-block contribution to the structure vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVulnerability {
    /// The block.
    pub block: BlockId,
    /// Block name.
    pub name: String,
    /// The protection scheme of the region the block lives in.
    pub scheme: ProtectionScheme,
    /// ACE time fraction (lifetime / total cycles, clamped to 1).
    pub ace_fraction: f64,
    /// ACE × P(SDC) — the block's SDC_AVF term (eq. 2).
    pub sdc_avf: f64,
    /// ACE × P(DUE) — the block's DUE_AVF term (eq. 3).
    pub due_avf: f64,
}

/// The vulnerability of one mapping of one program on one structure.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnerabilityReport {
    /// Per-block terms (SPM-resident blocks only).
    pub blocks: Vec<BlockVulnerability>,
    /// Σ SDC_AVF (eq. 2), normalised by total ACE mass.
    pub sdc_avf: f64,
    /// Σ DUE_AVF (eq. 3), normalised by total ACE mass.
    pub due_avf: f64,
    /// The MBU distribution used.
    pub mbu: MbuDistribution,
}

impl VulnerabilityReport {
    /// `Vulnerability = SDC_AVF + DUE_AVF` (eq. 1).
    pub fn vulnerability(&self) -> f64 {
        self.sdc_avf + self.due_avf
    }

    /// `Reliability = 1 − vulnerability`, the §IV headline number.
    pub fn reliability(&self) -> f64 {
        1.0 - self.vulnerability()
    }
}

/// Evaluates the vulnerability of `mapping` (an MDA or baseline output)
/// under `mbu`.
///
/// Off-chip blocks are not part of the SPM and are excluded, as in the
/// paper (which evaluates *SPM* vulnerability).
pub fn vulnerability(
    profile: &Profile,
    mapping: &MdaOutput,
    structure: &SpmStructure,
    mbu: MbuDistribution,
) -> VulnerabilityReport {
    let total = profile.total_cycles.max(1) as f64;
    let mut blocks = Vec::new();
    let mut sdc = 0.0;
    let mut due = 0.0;
    let mut ace_mass = 0.0;
    for d in &mapping.decisions {
        let Some(role) = d.decision.role() else {
            continue;
        };
        let scheme = scheme_of(structure, role, d.decision);
        let row = profile.block(d.block);
        // Standard AVF normalisation: a data block's ACE time accumulates
        // per word, so the fraction divides by the block's *bit-time*
        // (words × run length). Code lifetime is PC residency, a plain
        // time fraction.
        let denom = match row.kind {
            ftspm_sim::BlockKind::Data => total * f64::from((row.size_bytes / 4).max(1)),
            ftspm_sim::BlockKind::Code => total,
        };
        let ace = (row.lifetime_cycles as f64 / denom).min(1.0);
        let b = BlockVulnerability {
            block: d.block,
            name: d.name.clone(),
            scheme,
            ace_fraction: ace,
            sdc_avf: ace * scheme.sdc_probability(mbu),
            due_avf: ace * scheme.due_probability(mbu),
        };
        ace_mass += ace;
        sdc += b.sdc_avf;
        due += b.due_avf;
        blocks.push(b);
    }
    if ace_mass > 0.0 {
        sdc /= ace_mass;
        due /= ace_mass;
    }
    VulnerabilityReport {
        blocks,
        sdc_avf: sdc,
        due_avf: due,
        mbu,
    }
}

fn scheme_of(
    structure: &SpmStructure,
    role: RegionRole,
    decision: MapDecision,
) -> ProtectionScheme {
    structure
        .spec(role)
        .map(|s| s.scheme())
        .unwrap_or_else(|| panic!("structure lacks region for decision {decision:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mda::run_baseline;
    use ftspm_profile::{AccessSequence, BlockProfile, Profile};
    use ftspm_sim::{BlockKind, Program};

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.code("F", 1024, 0);
        b.data("A", 1024);
        b.data("B", 1024);
        b.build()
    }

    fn profile(p: &Program, lifetimes: &[u64]) -> Profile {
        Profile {
            program: p.name().into(),
            blocks: p
                .iter()
                .map(|(id, s)| BlockProfile {
                    block: id,
                    name: s.name().into(),
                    kind: s.kind(),
                    size_bytes: s.size_bytes(),
                    reads: 100,
                    writes: if s.kind() == BlockKind::Data { 10 } else { 0 },
                    references: 10,
                    stack_calls: 0,
                    max_stack_bytes: 0,
                    lifetime_cycles: lifetimes[id.index()],
                    first_access: 0,
                    last_access: lifetimes[id.index()],
                })
                .collect(),
            sequence: AccessSequence::default(),
            total_cycles: 1000,
        }
    }

    #[test]
    fn pure_sram_baseline_lands_at_38_percent_vulnerability() {
        // Every block SEC-DED: vulnerability = P(2) + P(>=3) = 0.38,
        // reliability = 62 % — the paper's §IV baseline number.
        let p = program();
        let prof = profile(&p, &[500, 700, 300]);
        let structure = SpmStructure::pure_sram();
        let mapping = run_baseline(&p, &prof, &structure);
        let r = vulnerability(&prof, &mapping, &structure, MbuDistribution::default());
        assert!(
            (r.vulnerability() - 0.38).abs() < 1e-9,
            "{}",
            r.vulnerability()
        );
        assert!((r.reliability() - 0.62).abs() < 1e-9);
    }

    #[test]
    fn pure_stt_is_invulnerable() {
        let p = program();
        let prof = profile(&p, &[500, 700, 300]);
        let structure = SpmStructure::pure_stt();
        let mapping = run_baseline(&p, &prof, &structure);
        let r = vulnerability(&prof, &mapping, &structure, MbuDistribution::default());
        assert_eq!(r.vulnerability(), 0.0);
        assert_eq!(r.reliability(), 1.0);
    }

    #[test]
    fn baseline_vulnerability_is_workload_independent() {
        // Fig. 5's observation: the uniform SEC-DED baseline is flat across
        // workloads because every strike sees the same protection.
        let p = program();
        let structure = SpmStructure::pure_sram();
        let r1 = {
            let prof = profile(&p, &[10, 20, 30]);
            let mapping = run_baseline(&p, &prof, &structure);
            vulnerability(&prof, &mapping, &structure, MbuDistribution::default()).vulnerability()
        };
        let r2 = {
            let prof = profile(&p, &[999, 1, 500]);
            let mapping = run_baseline(&p, &prof, &structure);
            vulnerability(&prof, &mapping, &structure, MbuDistribution::default()).vulnerability()
        };
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn ace_mass_weighting_mixes_schemes() {
        // Hand-build a FTSPM-style mapping: A in STT (immune), B in parity.
        let p = program();
        let prof = profile(&p, &[0, 600, 200]);
        let structure = SpmStructure::ftspm();
        let mut mapping = run_baseline(&p, &prof, &SpmStructure::pure_stt());
        mapping.structure = structure.name().into();
        // Move B to parity.
        let b = p.find("B").unwrap();
        mapping.decisions[b.index()].decision = MapDecision::DataParity;
        let r = vulnerability(&prof, &mapping, &structure, MbuDistribution::default());
        // ACE mass: F=0, A=0.6 (immune), B=0.2 (parity: weight 1.0).
        // vulnerability = 0.2·1.0 / 0.8 = 0.25.
        assert!(
            (r.vulnerability() - 0.25).abs() < 1e-9,
            "{}",
            r.vulnerability()
        );
        // Parity splits 0.62 DUE / 0.38 SDC.
        assert!((r.due_avf - 0.25 * 0.62).abs() < 1e-9);
        assert!((r.sdc_avf - 0.25 * 0.38).abs() < 1e-9);
    }
}
