//! Graceful-degradation remap policy: where a quarantined block goes.
//!
//! When the running machine quarantines a word line — repeated DUE traps
//! on a protected SRAM line, or an STT-RAM line past its endurance
//! budget — the victim block must leave its region. This module computes
//! the *demotion map* the machine consults: for every region of a
//! structure, the next-safer region (by the MBU-weighted vulnerability of
//! its protection scheme) a victim should be re-placed into, or `None`
//! when only off-chip is safer.
//!
//! The policy mirrors the MDA's priorities in reverse:
//!
//! * an STT-RAM region degrades by *wear*, so its victims move to the
//!   least-vulnerable **non-STT** region (more writes to a worn array
//!   only accelerate the failure);
//! * an SRAM region degrades by *particle strikes*, so its victims move
//!   to the least-vulnerable region **strictly safer** than their own —
//!   typically the soft-error-immune STT-RAM;
//! * nothing is ever demoted *into* the instruction SPM: the I-SPM is
//!   sized (and scheduled) for code, and the paper's structure keeps data
//!   out of it.

use ftspm_ecc::MbuDistribution;
use ftspm_mem::Technology;
use ftspm_sim::{RegionId, SpmRegionSpec};

use crate::{RegionRole, SpmStructure};

/// The MBU-weighted vulnerability of one region's protection scheme:
/// the probability that a strike there is *not* absorbed cleanly
/// (`P(SDC) + P(DUE)`; 0 for immune STT-RAM).
pub fn region_weight(spec: &SpmRegionSpec, mbu: MbuDistribution) -> f64 {
    let scheme = spec.scheme();
    scheme.sdc_probability(mbu) + scheme.due_probability(mbu)
}

/// Computes the per-region demotion map of `structure` under `mbu`,
/// indexed by [`RegionId`]. Entry `i` is the region a block quarantined
/// out of region `i` should be dynamically re-placed into, or `None` to
/// demote straight to off-chip.
///
/// For the paper's FTSPM structure this yields: both STT-RAM regions →
/// SEC-DED SRAM, SEC-DED SRAM → data STT-RAM, parity SRAM → data
/// STT-RAM. For the uniform SEC-DED baseline no region is safer than any
/// other, so every entry is `None`.
pub fn demotion_map(structure: &SpmStructure, mbu: MbuDistribution) -> Vec<Option<RegionId>> {
    let regions = structure.regions();
    regions
        .iter()
        .enumerate()
        .map(|(i, (role, spec))| {
            let stt_source = spec.technology() == Technology::SttRam;
            let own = region_weight(spec, mbu);
            let mut best: Option<(f64, usize)> = None;
            for (j, (target_role, target)) in regions.iter().enumerate() {
                if j == i {
                    continue;
                }
                if *target_role == RegionRole::Instruction && *role != RegionRole::Instruction {
                    continue;
                }
                let w = region_weight(target, mbu);
                let safer = if stt_source {
                    // Wear victims must leave STT technology entirely.
                    target.technology() != Technology::SttRam
                } else {
                    w < own
                };
                if safer && best.is_none_or(|(bw, _)| w < bw) {
                    best = Some((w, j));
                }
            }
            best.map(|(_, j)| RegionId::new(j))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftspm_demotes_along_the_safety_gradient() {
        let s = SpmStructure::ftspm();
        let map = demotion_map(&s, MbuDistribution::default());
        let ecc = s.region_id(RegionRole::DataEcc);
        let stt = s.region_id(RegionRole::DataStt);
        // Worn STT (instruction and data) moves to the SEC-DED SRAM, the
        // least-vulnerable non-STT region.
        assert_eq!(
            map[s.region_id(RegionRole::Instruction).unwrap().index()],
            ecc
        );
        assert_eq!(map[stt.unwrap().index()], ecc);
        // Struck SRAM moves to the immune data STT-RAM.
        assert_eq!(map[ecc.unwrap().index()], stt);
        assert_eq!(
            map[s.region_id(RegionRole::DataParity).unwrap().index()],
            stt
        );
    }

    #[test]
    fn uniform_secded_baseline_has_nowhere_safer() {
        let s = SpmStructure::pure_sram();
        let map = demotion_map(&s, MbuDistribution::default());
        assert!(map.iter().all(Option::is_none), "{map:?}");
    }

    #[test]
    fn pure_stt_wear_victims_go_off_chip() {
        // No SRAM exists, so a worn STT line's block can only leave the
        // SPM entirely.
        let s = SpmStructure::pure_stt();
        let map = demotion_map(&s, MbuDistribution::default());
        assert!(map.iter().all(Option::is_none), "{map:?}");
    }

    #[test]
    fn data_is_never_demoted_into_the_instruction_spm() {
        let s = SpmStructure::ftspm();
        let map = demotion_map(&s, MbuDistribution::default());
        let ispm = s.region_id(RegionRole::Instruction).unwrap();
        for (i, target) in map.iter().enumerate() {
            if i != ispm.index() {
                assert_ne!(*target, Some(ispm));
            }
        }
    }

    #[test]
    fn immune_regions_weigh_nothing() {
        let s = SpmStructure::ftspm();
        let mbu = MbuDistribution::default();
        let stt = s.spec(RegionRole::DataStt).unwrap();
        let ecc = s.spec(RegionRole::DataEcc).unwrap();
        let parity = s.spec(RegionRole::DataParity).unwrap();
        assert_eq!(region_weight(stt, mbu), 0.0);
        assert!(region_weight(ecc, mbu) > 0.0);
        assert!(region_weight(parity, mbu) > region_weight(ecc, mbu));
    }
}
