//! STT-RAM endurance model (Table III and Fig. 8).
//!
//! An STT-RAM cell tolerates a bounded number of writes. The SPM's
//! lifetime is limited by its *hottest* line: if the application writes
//! the hottest STT line `w` times per `c` cycles at clock `f`, the cell
//! wears out after `threshold / (w·f/c)` seconds of continuous execution.
//!
//! The paper reports this for thresholds 10¹²–10¹⁶ (Table III): a pure
//! STT-RAM SPM absorbs every write of every hot block and dies in
//! minutes-to-months, while FTSPM deports write-intensive blocks to SRAM
//! and stretches lifetime by about three orders of magnitude.

use std::fmt;

use ftspm_mem::Clock;

/// The write-cycle thresholds of the paper's Table III.
pub const TABLE_III_THRESHOLDS: [u64; 5] = [
    1_000_000_000_000,      // 1e12
    10_000_000_000_000,     // 1e13
    100_000_000_000_000,    // 1e14
    1_000_000_000_000_000,  // 1e15
    10_000_000_000_000_000, // 1e16
];

/// Lifetime of an SPM under continuous re-execution of the profiled
/// workload, in seconds.
///
/// `max_line_writes` is the hottest STT-RAM line's write count over one
/// run of `run_cycles` cycles. Returns `f64::INFINITY` when the workload
/// never writes STT-RAM (e.g. FTSPM with every write-heavy block evicted).
///
/// # Panics
///
/// Panics if `run_cycles` is zero while writes occurred.
pub fn lifetime_seconds(
    threshold_writes: u64,
    max_line_writes: u64,
    run_cycles: u64,
    clock: Clock,
) -> f64 {
    if max_line_writes == 0 {
        return f64::INFINITY;
    }
    assert!(run_cycles > 0, "a run with writes takes at least one cycle");
    let writes_per_second = max_line_writes as f64 / clock.seconds(run_cycles);
    threshold_writes as f64 / writes_per_second
}

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceRow {
    /// The write-cycle threshold (e.g. 10¹²).
    pub threshold: u64,
    /// Lifetime in seconds at that threshold.
    pub lifetime_seconds: f64,
}

impl EnduranceRow {
    /// Human-readable lifetime ("~40 minutes", "~1.5 years", …) matching
    /// the paper's Table III style.
    pub fn human_lifetime(&self) -> String {
        format_duration(self.lifetime_seconds)
    }
}

/// Builds the full Table III column for one structure.
pub fn lifetime_table(max_line_writes: u64, run_cycles: u64, clock: Clock) -> Vec<EnduranceRow> {
    TABLE_III_THRESHOLDS
        .iter()
        .map(|&threshold| EnduranceRow {
            threshold,
            lifetime_seconds: lifetime_seconds(threshold, max_line_writes, run_cycles, clock),
        })
        .collect()
}

/// Lifetime under *ideal wear levelling*: if the controller rotated
/// physical lines so writes spread uniformly (an extension the paper's
/// uniform-wear assumption gestures at), the array dies when the *total*
/// write volume reaches `threshold × lines` instead of when one hot line
/// does.
///
/// Returns `f64::INFINITY` when nothing is written.
///
/// # Panics
///
/// Panics if `lines` is zero, or if `run_cycles` is zero while writes
/// occurred.
pub fn lifetime_seconds_leveled(
    threshold_writes: u64,
    total_writes: u64,
    lines: u32,
    run_cycles: u64,
    clock: Clock,
) -> f64 {
    assert!(lines > 0, "an array has at least one line");
    if total_writes == 0 {
        return f64::INFINITY;
    }
    assert!(run_cycles > 0, "a run with writes takes at least one cycle");
    let writes_per_second = total_writes as f64 / clock.seconds(run_cycles);
    threshold_writes as f64 * f64::from(lines) / writes_per_second
}

/// A per-line write budget for one run: the number of writes a single
/// line may take before the graceful-degradation layer wear-quarantines
/// it, expressed as `fraction` of the cell's `threshold_writes` budget
/// that one run is allowed to consume.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn line_write_budget(threshold_writes: u64, fraction: f64) -> u64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "budget fraction must be in (0, 1]"
    );
    ((threshold_writes as f64) * fraction).floor() as u64
}

/// The wear-levelling headroom: how much longer an ideally-levelled
/// array lives than the observed worst-line wear allows
/// (`≥ 1`; equals 1 when writes are already uniform).
pub fn leveling_gain(total_writes: u64, max_line_writes: u64, lines: u32) -> f64 {
    if max_line_writes == 0 {
        return 1.0;
    }
    f64::from(lines) * max_line_writes as f64 / total_writes.max(1) as f64
}

/// Formats a duration in seconds in the paper's "~40 Minutes" style.
pub fn format_duration(seconds: f64) -> String {
    if seconds.is_infinite() {
        return "unlimited".to_string();
    }
    const MINUTE: f64 = 60.0;
    const HOUR: f64 = 60.0 * MINUTE;
    const DAY: f64 = 24.0 * HOUR;
    const MONTH: f64 = 30.44 * DAY;
    const YEAR: f64 = 365.25 * DAY;
    let (value, unit) = if seconds < MINUTE {
        (seconds, "seconds")
    } else if seconds < HOUR {
        (seconds / MINUTE, "minutes")
    } else if seconds < DAY {
        (seconds / HOUR, "hours")
    } else if seconds < MONTH {
        (seconds / DAY, "days")
    } else if seconds < YEAR {
        (seconds / MONTH, "months")
    } else {
        (seconds / YEAR, "years")
    };
    if value >= 10.0 {
        format!("~{value:.0} {unit}")
    } else {
        format!("~{value:.1} {unit}")
    }
}

/// A convenience display of a whole endurance table.
#[derive(Debug, Clone)]
pub struct EnduranceTable {
    /// Structure name (column header).
    pub structure: String,
    /// Rows in threshold order.
    pub rows: Vec<EnduranceRow>,
}

impl fmt::Display for EnduranceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>18}", "Threshold", &self.structure)?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12.0e} {:>18}",
                r.threshold as f64,
                r.human_lifetime()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_scales_linearly_with_threshold() {
        let clock = Clock::default();
        let l12 = lifetime_seconds(TABLE_III_THRESHOLDS[0], 1000, 1_000_000, clock);
        let l13 = lifetime_seconds(TABLE_III_THRESHOLDS[1], 1000, 1_000_000, clock);
        assert!((l13 / l12 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hotter_lines_die_sooner() {
        let clock = Clock::default();
        let cool = lifetime_seconds(1_000_000_000_000, 10, 1_000_000, clock);
        let hot = lifetime_seconds(1_000_000_000_000, 10_000, 1_000_000, clock);
        assert!((cool / hot - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_writes_is_unlimited() {
        let l = lifetime_seconds(1_000_000_000_000, 0, 1, Clock::default());
        assert!(l.is_infinite());
        assert_eq!(format_duration(l), "unlimited");
    }

    #[test]
    fn one_write_per_cycle_at_1e12_is_about_40_minutes() {
        // The paper's Table III first row: a line written every cycle at
        // 400 MHz reaches 1e12 writes in 2500 s ≈ 42 minutes.
        let clock = Clock::default();
        let l = lifetime_seconds(1_000_000_000_000, 1_000_000, 1_000_000, clock);
        assert!((l - 2500.0).abs() < 1.0, "{l}");
        assert_eq!(format_duration(l), "~42 minutes");
    }

    #[test]
    fn duration_units_span_the_table() {
        assert_eq!(format_duration(30.0), "~30 seconds");
        assert_eq!(format_duration(3600.0 * 7.0), "~7.0 hours");
        assert!(format_duration(86400.0 * 61.0).contains("months"));
        assert!(format_duration(86400.0 * 365.25 * 16.0).contains("16 years"));
    }

    #[test]
    fn leveling_never_hurts() {
        let clock = Clock::default();
        // 1000 lines, one hot line with 1000 writes out of 2000 total.
        let worst = lifetime_seconds(1_000_000_000_000, 1000, 1_000_000, clock);
        let leveled = lifetime_seconds_leveled(1_000_000_000_000, 2000, 1000, 1_000_000, clock);
        assert!(leveled > worst);
        // Gain = lines · max_line / total = 1000·1000/2000 = 500.
        assert!((leveled / worst - 500.0).abs() < 1e-6);
        assert!((leveling_gain(2000, 1000, 1000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_wear_has_no_leveling_gain() {
        // Every line written equally: levelled lifetime = worst-line
        // lifetime.
        let clock = Clock::default();
        let lines = 64u32;
        let per_line = 100u64;
        let worst = lifetime_seconds(1_000_000_000_000, per_line, 1_000_000, clock);
        let leveled = lifetime_seconds_leveled(
            1_000_000_000_000,
            per_line * u64::from(lines),
            lines,
            1_000_000,
            clock,
        );
        assert!((worst - leveled).abs() / worst < 1e-9);
        assert!((leveling_gain(per_line * u64::from(lines), per_line, lines) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leveled_zero_writes_is_unlimited() {
        assert!(lifetime_seconds_leveled(1, 0, 8, 1, Clock::default()).is_infinite());
    }

    #[test]
    fn write_budget_scales_with_fraction() {
        assert_eq!(line_write_budget(1_000_000, 0.5), 500_000);
        assert_eq!(line_write_budget(1_000_000, 1.0), 1_000_000);
        assert_eq!(line_write_budget(3, 0.5), 1);
    }

    #[test]
    #[should_panic(expected = "budget fraction")]
    fn zero_budget_fraction_rejected() {
        let _ = line_write_budget(1_000_000, 0.0);
    }

    #[test]
    fn table_has_five_rows_in_order() {
        let t = lifetime_table(100, 1_000_000, Clock::default());
        assert_eq!(t.len(), 5);
        for w in t.windows(2) {
            assert!(w[0].threshold < w[1].threshold);
            assert!(w[0].lifetime_seconds < w[1].lifetime_seconds);
        }
    }
}
