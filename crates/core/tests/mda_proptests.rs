//! Property tests of the MDA mapping algorithm over randomised
//! programs/profiles: the invariants of Algorithm 1 must hold whatever
//! the workload looks like.

use ftspm_core::mda::{run_mda, run_mda_dynamic, MapDecision};
use ftspm_core::{MdaThresholds, SpmStructure};
use ftspm_profile::{AccessSequence, BlockProfile, Profile};
use ftspm_sim::{BlockKind, Program};
use ftspm_testkit::prop::{
    any_bool, check, int_range, vec_of, Config, Strategy, StrategyExt, VecStrategy,
};

fn cfg() -> Config {
    Config::with_cases(128).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/mda_proptests.regressions"
    ))
}

#[derive(Debug, Clone)]
struct RandBlock {
    code: bool,
    size_kib_quarters: u32, // size in 256-byte units, 1..=40 (0.25..10 KiB)
    reads: u64,
    writes: u64,
    references: u64,
    lifetime: u64,
}

fn block_strategy() -> impl Strategy<Value = RandBlock> {
    (
        any_bool(),
        int_range(1u32..40),
        int_range(0u64..1_000_000),
        int_range(0u64..200_000),
        int_range(1u64..100_000),
        int_range(0u64..10_000_000),
    )
        .map(
            |(code, size_kib_quarters, reads, writes, references, lifetime)| RandBlock {
                code,
                size_kib_quarters,
                reads,
                writes,
                references,
                lifetime,
            },
        )
}

fn blocks_strategy() -> VecStrategy<impl Strategy<Value = RandBlock>> {
    vec_of(block_strategy(), 1..12)
}

fn build(blocks: &[RandBlock]) -> (Program, Profile) {
    let mut b = Program::builder("rand");
    for (i, rb) in blocks.iter().enumerate() {
        let size = rb.size_kib_quarters * 256;
        if rb.code {
            b.code(format!("C{i}"), size, 16);
        } else {
            b.data(format!("D{i}"), size);
        }
    }
    b.stack(256);
    let p = b.build();
    let rows: Vec<BlockProfile> = p
        .iter()
        .map(|(id, spec)| {
            let stack_row = id.index() == blocks.len();
            let rb = blocks.get(id.index());
            BlockProfile {
                block: id,
                name: spec.name().to_string(),
                kind: spec.kind(),
                size_bytes: spec.size_bytes(),
                reads: if stack_row {
                    10
                } else {
                    rb.map_or(0, |r| r.reads)
                },
                writes: if spec.kind() == BlockKind::Code {
                    0
                } else if stack_row {
                    10
                } else {
                    rb.map_or(0, |r| r.writes)
                },
                references: if stack_row {
                    5
                } else {
                    rb.map_or(1, |r| r.references)
                },
                stack_calls: 0,
                max_stack_bytes: 0,
                lifetime_cycles: if stack_row {
                    100
                } else {
                    rb.map_or(0, |r| r.lifetime)
                },
                first_access: 0,
                last_access: 0,
            }
        })
        .collect();
    let profile = Profile {
        program: "rand".into(),
        blocks: rows,
        sequence: AccessSequence::default(),
        total_cycles: 10_000_000,
    };
    (p, profile)
}

fn thresholds() -> MdaThresholds {
    MdaThresholds::new(2.0, 2.0, 20_000)
}

#[test]
fn capacities_are_never_exceeded() {
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let structure = SpmStructure::ftspm();
        let out = run_mda(&p, &profile, &structure, &thresholds());
        for decision in [
            MapDecision::Instruction,
            MapDecision::DataStt,
            MapDecision::DataEcc,
            MapDecision::DataParity,
        ] {
            let used: u64 = out
                .blocks_with(decision)
                .iter()
                .map(|&b| u64::from(p.block(b).size_bytes()))
                .sum();
            let role = decision.role().expect("mapped decision");
            let cap = u64::from(
                structure
                    .spec(role)
                    .expect("role exists")
                    .geometry()
                    .bytes(),
            );
            assert!(used <= cap, "{decision:?}: {used} > {cap}");
        }
        // …and the placement materialises without error.
        assert!(out.placement(&p, &structure).is_ok());
    });
}

#[test]
fn endurance_threshold_is_hard() {
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let structure = SpmStructure::ftspm();
        let th = thresholds();
        let out = run_mda(&p, &profile, &structure, &th);
        for &b in &out.blocks_with(MapDecision::DataStt) {
            assert!(
                profile.block(b).writes <= th.write_cycles_threshold,
                "write-hot block {} stayed in STT",
                profile.block(b).name
            );
        }
    });
}

#[test]
fn code_never_lands_in_data_regions() {
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let out = run_mda(&p, &profile, &SpmStructure::ftspm(), &thresholds());
        for d in &out.decisions {
            if p.block(d.block).kind() == BlockKind::Code {
                assert!(
                    matches!(d.decision, MapDecision::Instruction | MapDecision::OffChip),
                    "{}: {:?}",
                    d.name,
                    d.decision
                );
            } else {
                assert!(
                    d.decision != MapDecision::Instruction,
                    "data block {} in the I-SPM",
                    d.name
                );
            }
        }
    });
}

#[test]
fn mda_is_deterministic() {
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let structure = SpmStructure::ftspm();
        let a = run_mda(&p, &profile, &structure, &thresholds());
        let b = run_mda(&p, &profile, &structure, &thresholds());
        assert_eq!(a, b);
    });
}

#[test]
fn step6_orders_by_susceptibility() {
    // Every ECC-mapped (high) block must be at least as susceptible
    // as the pivot unless it landed there by fallback; every
    // parity-mapped low block below the pivot likewise.
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let out = run_mda(&p, &profile, &SpmStructure::ftspm(), &thresholds());
        for d in &out.decisions {
            match (d.decision, d.reason) {
                (MapDecision::DataEcc, ftspm_core::mda::DecisionReason::HighSusceptibility) => {
                    assert!(d.susceptibility >= out.avg_evicted_susceptibility);
                }
                (MapDecision::DataParity, ftspm_core::mda::DecisionReason::LowSusceptibility) => {
                    assert!(d.susceptibility <= out.avg_evicted_susceptibility);
                }
                _ => {}
            }
        }
    });
}

#[test]
fn dynamic_promotion_only_adds_stt_residents() {
    check(&cfg(), &blocks_strategy(), |blocks| {
        let (p, profile) = build(blocks);
        let structure = SpmStructure::ftspm();
        let th = thresholds();
        let static_out = run_mda(&p, &profile, &structure, &th);
        let dyn_out = run_mda_dynamic(&p, &profile, &structure, &th);
        for (s, d) in static_out.decisions.iter().zip(&dyn_out.decisions) {
            match s.decision {
                // Static STT residents may be demoted to the pool; SRAM
                // and I-SPM decisions never change.
                MapDecision::DataStt => assert!(matches!(
                    d.decision,
                    MapDecision::DataStt | MapDecision::DataSttDynamic
                )),
                MapDecision::OffChip => assert!(matches!(
                    d.decision,
                    MapDecision::OffChip | MapDecision::DataSttDynamic
                )),
                other => assert_eq!(d.decision, other),
            }
        }
        // The dynamic placement must also materialise.
        assert!(dyn_out.placement(&p, &structure).is_ok());
    });
}
