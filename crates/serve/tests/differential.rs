//! The service's determinism contract, pinned differentially: for a
//! grid of workloads × seeds × fault options, the body served by
//! `POST /v1/run` is byte-identical to running the same spec in-process
//! through `JobSpec::run`, and a `POST /v1/batch` body is exactly the
//! input-order concatenation of the singles — at a worker-pool size of
//! 1 **and** at `FTSPM_THREADS`' value (the CI smoke stage runs this
//! file at both).

use std::num::NonZeroUsize;

use ftspm_serve::{JobSpec, ServeConfig, Server};
use ftspm_testkit::{ephemeral_listener, http_request, par};

/// The job grid: named kernels and synthetic dials, seeds, clean and
/// faulted, with and without metrics.
fn job_grid() -> Vec<String> {
    let mut jobs = Vec::new();
    for seed in [1u64, 2] {
        jobs.push(format!(
            r#"{{"workload": {{"name": "crc32", "seed": {seed}}}}}"#
        ));
        jobs.push(format!(
            r#"{{"workload": {{"synthetic": {{"buffer_words": 48, "accesses": 600,
                "run_length": 8, "seed": {seed}}}}},
                "structure": "pure_sram", "optimize": "performance"}}"#
        ));
        jobs.push(format!(
            r#"{{"workload": {{"synthetic": {{"buffer_words": 32, "accesses": 400,
                "seed": {seed}}}}},
                "faults": {{"seed": {seed}, "mean_cycles_between_strikes": 2000.0,
                           "scrub_interval": 10000}},
                "metrics": true}}"#
        ));
    }
    jobs
}

fn serve_at(workers: usize) -> Server {
    let (listener, _) = ephemeral_listener();
    Server::start(
        listener,
        ServeConfig {
            workers: NonZeroUsize::new(workers).expect("nonzero workers"),
            ..ServeConfig::default()
        },
    )
    .expect("boot")
}

#[test]
fn served_run_is_byte_identical_to_in_process_at_any_pool_size() {
    let jobs = job_grid();
    let expected: Vec<String> = jobs
        .iter()
        .map(|body| {
            JobSpec::parse(body.as_bytes())
                .expect("grid job decodes")
                .run()
                .expect("grid job runs")
                .body
        })
        .collect();

    for workers in [1, par::thread_count().get()] {
        let server = serve_at(workers);
        for (body, expected) in jobs.iter().zip(&expected) {
            let reply = http_request(server.addr(), "POST", "/v1/run", body.as_bytes())
                .expect("run request");
            assert_eq!(reply.status, 200, "{}", reply.body_str());
            assert_eq!(
                reply.body_str(),
                expected,
                "served body diverged from in-process (workers={workers}, job={body})"
            );
        }
    }
}

#[test]
fn batch_is_the_input_order_concatenation_of_singles() {
    let jobs = job_grid();
    let singles: Vec<String> = jobs
        .iter()
        .map(|body| {
            JobSpec::parse(body.as_bytes())
                .expect("grid job decodes")
                .run()
                .expect("grid job runs")
                .body
        })
        .collect();
    let expected = format!("[{}]", singles.join(","));
    let batch_body = format!("[{}]", jobs.join(","));

    for workers in [1, par::thread_count().get()] {
        let server = serve_at(workers);
        let reply = http_request(server.addr(), "POST", "/v1/batch", batch_body.as_bytes())
            .expect("batch request");
        assert_eq!(reply.status, 200, "{}", reply.body_str());
        assert_eq!(
            reply.body_str(),
            expected,
            "batch body diverged at workers={workers}"
        );
    }
}

/// Re-serving the same job on the same server yields the same bytes —
/// the server holds no per-job mutable state that could leak between
/// requests.
#[test]
fn repeat_requests_are_stable() {
    let server = serve_at(2);
    let body = br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 300, "seed": 9}},
                    "faults": {"seed": 3, "mean_cycles_between_strikes": 1500.0}}"#;
    let first = http_request(server.addr(), "POST", "/v1/run", body).expect("first");
    let second = http_request(server.addr(), "POST", "/v1/run", body).expect("second");
    assert_eq!(first.status, 200);
    assert_eq!(first.body, second.body);
}
