//! Canonical-string goldens: the content address of a job spec is the
//! cache key, the async job id, and the dedupe key — so its rendering
//! is wire format, not an implementation detail. These tests pin the
//! exact bytes.
//!
//! The `WorkloadSource` redesign rebuilt the decoder on a four-variant
//! source type; the legacy two-variant renderings (named kernel,
//! inline synthetic) are pinned here byte-for-byte so every cache line
//! and job id minted before the redesign still addresses the same
//! work. The two new variants (`trace`, `fit`) get their own pinned
//! fragments.

use ftspm_serve::JobSpec;

fn canonical(body: &str) -> String {
    JobSpec::parse(body.as_bytes())
        .expect("golden spec decodes")
        .canonical()
}

#[test]
fn legacy_named_spec_renders_the_historical_bytes() {
    // Implicit default seed: the registry default (crc32 = 0xC3C3) is
    // written out, so implicit and explicit collapse to one address.
    assert_eq!(
        canonical(r#"{"workload": "crc32"}"#),
        "w=named:crc32:50115;s=ftspm;o=Reliability;f=-;m=false;d=-;c=false"
    );
    assert_eq!(
        canonical(r#"{"workload": {"name": "crc32", "seed": 50115}}"#),
        "w=named:crc32:50115;s=ftspm;o=Reliability;f=-;m=false;d=-;c=false"
    );
    // A seedless kernel renders `-` where the seed would go.
    assert_eq!(
        canonical(r#"{"workload": "case_study"}"#),
        "w=named:case_study:-;s=ftspm;o=Reliability;f=-;m=false;d=-;c=false"
    );
}

#[test]
fn legacy_synthetic_spec_renders_the_historical_bytes() {
    assert_eq!(
        canonical(
            r#"{"workload": {"synthetic": {"write_fraction": 0.5, "buffer_words": 64,
                                           "accesses": 1000, "run_length": 4, "seed": 3}}}"#
        ),
        "w=synthetic:0.5:64:1000:4:3;s=ftspm;o=Reliability;f=-;m=false;d=-;c=false"
    );
    // Defaults fill in; the float renders shortest-roundtrip.
    assert_eq!(
        canonical(r#"{"workload": {"synthetic": {}}}"#),
        "w=synthetic:0.2:512:40000:16:24301;s=ftspm;o=Reliability;f=-;m=false;d=-;c=false"
    );
}

#[test]
fn legacy_dial_tail_renders_the_historical_bytes() {
    assert_eq!(
        canonical(
            r#"{"workload": "sha", "structure": "pure_sram", "optimize": "endurance",
                "metrics": true, "deadline_cycles": 123456,
                "faults": {"seed": 9, "mean_cycles_between_strikes": 2500.0,
                           "scrub_interval": 10000, "due_retry_limit": 2,
                           "quarantine_due_threshold": 4, "line_write_budget": 777,
                           "restrict_to": ["data_ecc", "data_parity"],
                           "mbu": [0.7, 0.2, 0.05, 0.05]}}"#
        ),
        "w=named:sha:21665;s=pure_sram;o=Endurance;\
         f=9:2500.0:10000:2:4:777:data_ecc+data_parity:0.7+0.2+0.05+0.05:false;\
         m=true;d=123456;c=false"
    );
}

#[test]
fn trace_backed_specs_render_their_fragments() {
    let id = "00112233445566778899aabbccddeeff";
    assert_eq!(
        canonical(&format!(r#"{{"workload": {{"trace": "{id}"}}}}"#)),
        format!("w=trace:{id};s=ftspm;o=Reliability;f=-;m=false;d=-;c=false")
    );
    assert_eq!(
        canonical(&format!(r#"{{"workload": {{"fit": "{id}"}}}}"#)),
        format!("w=fitted:{id};s=ftspm;o=Reliability;f=-;m=false;d=-;c=false")
    );
    // Replay and fit of the same trace are different work: different
    // fragments, different cache lines.
    assert_ne!(
        canonical(&format!(r#"{{"workload": {{"trace": "{id}"}}}}"#)),
        canonical(&format!(r#"{{"workload": {{"fit": "{id}"}}}}"#))
    );
}
