//! Property tests of the request parser and job decoder: arbitrary
//! bytes — truncated frames, oversized request lines, malformed
//! content-length tokens, junk after the body — must come back as typed
//! errors with 4xx/5xx statuses, never a panic or an unbounded read.
//!
//! The HTTP parser is a pure function of a `BufRead`, so these tests
//! feed it finite `io::Cursor`s: termination is structural (a cursor
//! cannot block), and any failure shrinks to a minimal byte string via
//! the testkit's shrinker, persisting its seed next to this file.

use std::io::Cursor;

use ftspm_serve::http::{read_request, HttpError, MAX_REQUEST_LINE};
use ftspm_serve::json::{self, JsonError};
use ftspm_serve::JobSpec;
use ftspm_testkit::prop::{any_int, check, int_range, vec_of, Config};

fn cfg() -> Config {
    Config::default().persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/parser_props.regressions"
    ))
}

/// Every HTTP parse outcome on arbitrary bytes is `Ok` or a typed
/// error whose status is in the 4xx/5xx range — nothing panics.
#[test]
fn http_parser_never_panics_on_junk() {
    check(
        &cfg(),
        &vec_of(any_int::<u8>(), 0..600),
        |bytes: &Vec<u8>| {
            if let Err(e) = read_request(&mut Cursor::new(bytes)) {
                let status = e.status();
                assert!(
                    (400..=599).contains(&status),
                    "status {status} out of range for {e}"
                );
            }
        },
    );
}

/// A strict prefix of a valid request is always a typed error: the
/// frame declares its own length, so truncation is detectable.
#[test]
fn truncated_requests_are_typed_errors() {
    check(
        &cfg(),
        &(int_range(1u32..64), any_int::<u16>()),
        |&(body_len, cut_seed)| {
            let body = vec![b'x'; body_len as usize];
            let mut frame =
                format!("POST /v1/run HTTP/1.1\r\nhost: t\r\ncontent-length: {body_len}\r\n\r\n")
                    .into_bytes();
            frame.extend_from_slice(&body);
            assert!(
                read_request(&mut Cursor::new(&frame)).is_ok(),
                "full frame must parse"
            );
            let cut = usize::from(cut_seed) % frame.len();
            let err = read_request(&mut Cursor::new(&frame[..cut]))
                .expect_err("strict prefix must not parse");
            assert!((400..=599).contains(&err.status()));
        },
    );
}

/// Request lines past the cap are refused with 414 without reading the
/// rest of the stream.
#[test]
fn oversized_request_lines_are_refused() {
    check(&cfg(), &int_range(0u32..4096), |&extra| {
        let frame = vec![b'A'; MAX_REQUEST_LINE + extra as usize];
        let err = read_request(&mut Cursor::new(&frame)).expect_err("over-long line");
        assert!(matches!(err, HttpError::RequestLineTooLong));
        assert_eq!(err.status(), 414);
    });
}

/// Non-numeric content-length tokens (random letters, optionally
/// sign-prefixed) are always a 400, never a bogus body read.
#[test]
fn malformed_content_length_is_a_400() {
    check(
        &cfg(),
        &(vec_of(int_range(0u8..26), 1..8), int_range(0u8..2)),
        |(letters, negate): &(Vec<u8>, u8)| {
            let mut token = String::new();
            if *negate == 1 {
                token.push('-');
            }
            token.extend(letters.iter().map(|l| char::from(b'a' + l)));
            let frame = format!("POST /v1/run HTTP/1.1\r\ncontent-length: {token}\r\n\r\nbody");
            let err = read_request(&mut Cursor::new(frame.as_bytes()))
                .expect_err("malformed content-length");
            assert!(
                matches!(err, HttpError::BadContentLength),
                "token {token:?} gave {err}"
            );
            assert_eq!(err.status(), 400);
        },
    );
}

/// The JSON parser returns `Ok` or a typed error on arbitrary bytes.
#[test]
fn json_parser_never_panics_on_junk() {
    check(
        &cfg(),
        &vec_of(any_int::<u8>(), 0..400),
        |bytes: &Vec<u8>| {
            let _ = json::parse(bytes);
        },
    );
}

/// Non-whitespace junk after a complete document is `TrailingBytes`,
/// whatever the junk is.
#[test]
fn junk_after_a_json_body_is_trailing_bytes() {
    check(
        &cfg(),
        &(int_range(0u64..1_000_000), vec_of(any_int::<u8>(), 1..32)),
        |(seed, junk): &(u64, Vec<u8>)| {
            let mut doc = format!("{{\"workload\":\"crc32\",\"seed\":{seed}}}").into_bytes();
            // Force the first trailing byte to be non-whitespace so the
            // document provably ends before it.
            doc.push(b'!');
            doc.extend_from_slice(junk);
            assert!(matches!(
                json::parse(&doc),
                Err(JsonError::TrailingBytes(_))
            ));
        },
    );
}

/// Deep nesting of any depth past the cap is `TooDeep` — a typed
/// error, not a stack overflow.
#[test]
fn nesting_bombs_of_any_depth_are_too_deep() {
    check(&cfg(), &int_range(65u32..4000), |&depth| {
        let mut bomb = Vec::with_capacity(depth as usize);
        bomb.resize(depth as usize, b'[');
        assert_eq!(json::parse(&bomb), Err(JsonError::TooDeep));
    });
}

/// The job decoder is total over arbitrary bytes: valid specs decode,
/// everything else is a typed `JobError` — the panicking constructors
/// behind it (synthetic workloads, MBU distributions) are never
/// reached with unvalidated input.
#[test]
fn job_decoder_never_panics_on_junk() {
    check(
        &cfg(),
        &vec_of(any_int::<u8>(), 0..400),
        |bytes: &Vec<u8>| {
            let _ = JobSpec::parse(bytes);
        },
    );
}

/// Structured fuzz of the job schema: random dials, in and out of
/// range, either decode into a spec that honours the documented bounds
/// or are rejected — never a panic from a downstream constructor.
#[test]
fn job_decoder_is_total_over_random_dials() {
    check(
        &cfg(),
        &(
            any_int::<u32>(),
            any_int::<u32>(),
            any_int::<u32>(),
            any_int::<u64>(),
        ),
        |&(buffer_words, accesses, run_length, seed)| {
            let body = format!(
                "{{\"workload\":{{\"synthetic\":{{\"buffer_words\":{buffer_words},\
                 \"accesses\":{accesses},\"run_length\":{run_length},\"seed\":{seed}}}}}}}"
            );
            if let Ok(spec) = JobSpec::parse(body.as_bytes()) {
                match spec.workload {
                    ftspm_serve::WorkloadSource::Synthetic(c) => {
                        assert!(c.buffer_words >= 1 && c.accesses >= 1 && c.run_length >= 1);
                        assert!(c.accesses <= ftspm_serve::job::MAX_SYNTHETIC_ACCESSES);
                        assert!(c.buffer_words <= ftspm_serve::job::MAX_SYNTHETIC_BUFFER_WORDS);
                    }
                    other => panic!("synthetic spec decoded as {other:?}"),
                }
            }
        },
    );
}
