//! Concurrency soak: 8 in-test clients fire 25 jobs each at one
//! server. Every job body is unique (per-client seeds), so a dropped,
//! duplicated, or cross-wired response is caught by comparing each
//! reply against its precomputed in-process body. Afterwards the
//! server's `/metrics` totals must equal the field-wise sum of the
//! per-job registries, and shutdown must leave no lingering service
//! threads.

use std::num::NonZeroUsize;
use std::sync::Arc;

use ftspm_obs::MetricsRegistry;
use ftspm_serve::{JobSpec, ServeConfig, Server};
use ftspm_testkit::{ephemeral_listener, http_request, par};

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 25;

fn job_body(client: usize, index: usize) -> String {
    let seed = (client * 1000 + index) as u64;
    format!(
        "{{\"workload\":{{\"synthetic\":{{\"buffer_words\":16,\"accesses\":120,\
         \"run_length\":4,\"seed\":{seed}}}}},\"metrics\":true}}"
    )
}

#[cfg(target_os = "linux")]
fn live_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("numeric thread count")
}

#[test]
fn soak_no_job_dropped_duplicated_or_cross_wired() {
    // Precompute every job's expected body and registry in-process —
    // the reference the served responses must match byte-for-byte.
    let mut expected_bodies = vec![vec![String::new(); JOBS_PER_CLIENT]; CLIENTS];
    let mut expected_totals = MetricsRegistry::new();
    for (client, bodies) in expected_bodies.iter_mut().enumerate() {
        for (index, slot) in bodies.iter_mut().enumerate() {
            let body = job_body(client, index);
            let output = JobSpec::parse(body.as_bytes())
                .expect("job decodes")
                .run()
                .expect("job runs");
            *slot = output.body;
            expected_totals.merge(&output.registry.expect("metrics job has a registry"));
        }
    }
    let expected_bodies = Arc::new(expected_bodies);

    #[cfg(target_os = "linux")]
    let threads_before = live_thread_count();

    let (listener, _) = ephemeral_listener();
    let mut server = Server::start(
        listener,
        ServeConfig {
            workers: par::thread_count().max(NonZeroUsize::new(2).expect("2 > 0")),
            ..ServeConfig::default()
        },
    )
    .expect("boot");
    let addr = server.addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let expected = Arc::clone(&expected_bodies);
            std::thread::spawn(move || {
                for index in 0..JOBS_PER_CLIENT {
                    let body = job_body(client, index);
                    let reply = http_request(addr, "POST", "/v1/run", body.as_bytes())
                        .expect("soak request");
                    assert_eq!(reply.status, 200, "{}", reply.body_str());
                    assert_eq!(
                        reply.body_str(),
                        expected[client][index],
                        "client {client} job {index} got the wrong response"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // The server's totals are the field-wise sum of the per-job
    // registries: strip the server's own `serve.*` counters and the
    // remaining CSV must equal the expected merge exactly. (Merge order
    // on the server is completion order, but field-wise addition makes
    // the totals order-independent — that is the determinism contract.)
    let metrics = http_request(addr, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let served_csv: String = metrics
        .body_str()
        .lines()
        .filter(|line| !line.starts_with("serve."))
        .map(|line| format!("{line}\n"))
        .collect();
    assert_eq!(served_csv, expected_totals.to_csv());
    let total_jobs = (CLIENTS * JOBS_PER_CLIENT) as u64;
    assert!(metrics
        .body_str()
        .contains(&format!("serve.jobs,counter,,{total_jobs}")));

    server.shutdown();

    #[cfg(target_os = "linux")]
    assert_eq!(
        live_thread_count(),
        threads_before,
        "shutdown left service threads running"
    );
}
