//! The async job API and the content-addressed result cache, pinned
//! end to end: submission/poll/cancel lifecycle, deterministic
//! content-addressed ids, journal-style table eviction, and the
//! acceptance differential — a cache hit answers bytes identical to
//! the original miss (with `serve.cache.hit` incremented), at a
//! worker-pool size of 1 and at `FTSPM_THREADS`' value.

use std::num::NonZeroUsize;
use std::time::Duration;

use ftspm_serve::{json, JobSpec, ServeConfig, Server};
use ftspm_testkit::{ephemeral_listener, http_request, par, HttpReply};

fn serve_with(config: ServeConfig) -> Server {
    let (listener, _) = ephemeral_listener();
    Server::start(listener, config).expect("boot")
}

fn serve_at(workers: usize) -> Server {
    serve_with(ServeConfig {
        workers: NonZeroUsize::new(workers).expect("nonzero workers"),
        ..ServeConfig::default()
    })
}

/// Extracts `"job"` from a 202 submission body.
fn job_id(reply: &HttpReply) -> String {
    json::parse(&reply.body)
        .expect("submission body is JSON")
        .get("job")
        .and_then(json::Json::as_str)
        .expect("submission body carries a job id")
        .to_string()
}

/// Polls `GET /v1/jobs/{id}` until the job leaves the queued/running
/// states, then returns the terminal reply.
fn poll_until_terminal(addr: std::net::SocketAddr, id: &str) -> HttpReply {
    let path = format!("/v1/jobs/{id}");
    for _ in 0..2000 {
        let reply = http_request(addr, "GET", &path, b"").expect("poll");
        let body = reply.body_str();
        if !(body.contains("\"state\":\"queued\"") || body.contains("\"state\":\"running\"")) {
            return reply;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {id} never reached a terminal state");
}

/// A job heavy enough to hold the single runner busy while the test
/// submits and cancels behind it.
fn slow_job(seed: u64) -> String {
    format!(
        r#"{{"workload": {{"synthetic": {{"buffer_words": 64, "accesses": 200000, "seed": {seed}}}}}}}"#
    )
}

/// The acceptance differential: the second identical request is a
/// cache hit and answers byte-identical bytes, with the hit counted —
/// and the job's own metrics fold into `/metrics` exactly as a fresh
/// run's would (non-`serve.*` counters double).
#[test]
fn cache_hits_replay_byte_identical_bytes_and_full_accounting() {
    let body = br#"{"workload": {"synthetic": {"buffer_words": 48, "accesses": 500, "seed": 21}},
                    "faults": {"seed": 4, "mean_cycles_between_strikes": 1200.0},
                    "metrics": true}"#;
    let output = JobSpec::parse(body)
        .expect("job decodes")
        .run()
        .expect("job runs");
    let mut doubled = ftspm_obs::MetricsRegistry::new();
    let job_registry = output.registry.as_ref().expect("metrics job registry");
    doubled.merge(job_registry);
    doubled.merge(job_registry);

    for workers in [1, par::thread_count().get()] {
        let server = serve_at(workers);
        let miss = http_request(server.addr(), "POST", "/v1/run", body).expect("miss");
        let hit = http_request(server.addr(), "POST", "/v1/run", body).expect("hit");
        assert_eq!(miss.status, 200, "{}", miss.body_str());
        assert_eq!(hit.status, 200);
        assert_eq!(
            miss.body, hit.body,
            "cache hit diverged from its miss (workers={workers})"
        );
        assert_eq!(miss.body_str(), output.body, "served != in-process");

        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        let csv = metrics.body_str();
        assert!(csv.contains("serve.cache.miss,counter,,1"), "{csv}");
        assert!(csv.contains("serve.cache.hit,counter,,1"), "{csv}");
        assert!(csv.contains("serve.jobs,counter,,2"), "{csv}");
        let non_serve: String = csv
            .lines()
            .filter(|line| !line.starts_with("serve."))
            .map(|line| format!("{line}\n"))
            .collect();
        assert_eq!(
            non_serve,
            doubled.to_csv(),
            "a hit must fold the job registry exactly like a fresh run (workers={workers})"
        );
    }
}

/// The cache is keyed on the decoded spec, not the raw bytes: a spec
/// written with its defaults spelled out hits the entry its implicit
/// twin populated.
#[test]
fn equivalent_specs_share_one_cache_entry() {
    let server = serve_at(1);
    let implicit = http_request(
        server.addr(),
        "POST",
        "/v1/run",
        br#"{"workload": "crc32"}"#,
    )
    .expect("implicit");
    // crc32's default table seed, spelled out.
    let explicit = http_request(
        server.addr(),
        "POST",
        "/v1/run",
        br#"{"workload": {"name": "crc32", "seed": 50115}}"#,
    )
    .expect("explicit");
    assert_eq!(implicit.status, 200, "{}", implicit.body_str());
    assert_eq!(implicit.body, explicit.body);
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    assert!(
        metrics.body_str().contains("serve.cache.hit,counter,,1"),
        "{}",
        metrics.body_str()
    );
}

/// Deadline kills are deterministic outcomes too: cached and replayed
/// with the same 504 and the same accounting.
#[test]
fn deadline_kills_are_cached() {
    let server = serve_at(1);
    let body = br#"{"workload": "crc32", "deadline_cycles": 100}"#;
    let miss = http_request(server.addr(), "POST", "/v1/run", body).expect("miss");
    let hit = http_request(server.addr(), "POST", "/v1/run", body).expect("hit");
    assert_eq!(miss.status, 504, "{}", miss.body_str());
    assert_eq!(hit.status, 504);
    assert_eq!(miss.body, hit.body);
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("serve.deadline_killed,counter,,2"), "{csv}");
    assert!(csv.contains("serve.cache.hit,counter,,1"), "{csv}");
}

/// Panics have no deterministic result to replay: `chaos_panic` specs
/// bypass the cache entirely — no hit, no miss, no stored entry.
#[test]
fn panicking_jobs_bypass_the_cache() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("serve-worker"));
        if !in_worker {
            previous(info);
        }
    }));
    let server = serve_at(1);
    let body = br#"{"workload": "crc32", "chaos_panic": true}"#;
    let first = http_request(server.addr(), "POST", "/v1/run", body).expect("first");
    let second = http_request(server.addr(), "POST", "/v1/run", body).expect("second");
    assert_eq!(first.status, 500, "{}", first.body_str());
    assert_eq!(second.status, 500);
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("serve.panicked,counter,,2"), "{csv}");
    assert!(!csv.contains("serve.cache."), "{csv}");
}

/// The cache is a bounded LRU: the oldest entry is evicted (and
/// counted) once capacity is exceeded, and a re-run of an evicted spec
/// is a fresh miss.
#[test]
fn the_cache_evicts_least_recently_used_entries() {
    let server = serve_with(ServeConfig {
        workers: NonZeroUsize::new(1).expect("nonzero"),
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    let job = |seed: u64| {
        format!(
            r#"{{"workload": {{"synthetic": {{"buffer_words": 16, "accesses": 200, "seed": {seed}}}}}}}"#
        )
    };
    for seed in [1, 2, 3] {
        let reply =
            http_request(server.addr(), "POST", "/v1/run", job(seed).as_bytes()).expect("populate");
        assert_eq!(reply.status, 200, "{}", reply.body_str());
    }
    // Seed 1 was evicted by seed 3: a miss again (evicting seed 2).
    let _ = http_request(server.addr(), "POST", "/v1/run", job(1).as_bytes()).expect("re-run");
    // Seed 3 is still resident: a hit.
    let _ = http_request(server.addr(), "POST", "/v1/run", job(3).as_bytes()).expect("hit");
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("serve.cache.miss,counter,,4"), "{csv}");
    assert!(csv.contains("serve.cache.evict,counter,,2"), "{csv}");
    assert!(csv.contains("serve.cache.hit,counter,,1"), "{csv}");
}

/// The async lifecycle: submit answers 202 with the deterministic
/// content-addressed id, polling reaches the finished report, the
/// finished reply replays `/v1/run`'s exact bytes (via the shared
/// cache), resubmission dedupes, and cancel/poll answer typed
/// 404/409s.
#[test]
fn the_job_api_lifecycle_round_trips() {
    let server = serve_at(2);
    let body = br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 400, "seed": 77}},
                    "metrics": true}"#;
    // Warm the cache through the synchronous path first: the job's
    // execution must then be a hit replaying these exact bytes.
    let run = http_request(server.addr(), "POST", "/v1/run", body).expect("run");
    assert_eq!(run.status, 200, "{}", run.body_str());

    let submitted = http_request(server.addr(), "POST", "/v1/jobs", body).expect("submit");
    assert_eq!(submitted.status, 202, "{}", submitted.body_str());
    let id = job_id(&submitted);
    assert_eq!(id.len(), 32, "content-addressed id is 32 hex chars");
    assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));

    let finished = poll_until_terminal(server.addr(), &id);
    assert_eq!(finished.status, 200, "{}", finished.body_str());
    assert_eq!(
        finished.body, run.body,
        "the finished job must replay /v1/run's bytes"
    );

    // Same spec, same id: dedupe instead of a second execution.
    let again = http_request(server.addr(), "POST", "/v1/jobs", body).expect("resubmit");
    assert_eq!(again.status, 202);
    assert_eq!(job_id(&again), id);
    assert!(
        again.body_str().contains("\"state\":\"finished\""),
        "{}",
        again.body_str()
    );

    // Terminal jobs cannot be cancelled; unknown ids are 404s.
    let cancel = http_request(server.addr(), "DELETE", &format!("/v1/jobs/{id}"), b"")
        .expect("cancel finished");
    assert_eq!(cancel.status, 409, "{}", cancel.body_str());
    let missing =
        http_request(server.addr(), "GET", "/v1/jobs/ffffffffffffffff", b"").expect("unknown poll");
    assert_eq!(missing.status, 404);
    let missing = http_request(server.addr(), "DELETE", "/v1/jobs/ffffffffffffffff", b"")
        .expect("unknown cancel");
    assert_eq!(missing.status, 404);

    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("serve.cache.hit,counter,,1"), "{csv}");
    assert!(csv.contains("serve.cache.miss,counter,,1"), "{csv}");
    assert!(csv.contains("serve.jobs,counter,,2"), "{csv}");
}

/// Queued jobs can be cancelled while an earlier job holds the single
/// runner; cancellation is terminal and the runner skips the corpse.
#[test]
fn queued_jobs_cancel_cleanly() {
    let server = serve_at(1);
    let slow = http_request(server.addr(), "POST", "/v1/jobs", slow_job(777).as_bytes())
        .expect("submit slow");
    assert_eq!(slow.status, 202, "{}", slow.body_str());
    let slow_id = job_id(&slow);

    let queued = http_request(server.addr(), "POST", "/v1/jobs", slow_job(778).as_bytes())
        .expect("submit queued");
    assert_eq!(queued.status, 202);
    let queued_id = job_id(&queued);

    let cancel = http_request(
        server.addr(),
        "DELETE",
        &format!("/v1/jobs/{queued_id}"),
        b"",
    )
    .expect("cancel");
    assert_eq!(cancel.status, 200, "{}", cancel.body_str());
    assert!(cancel.body_str().contains("\"state\":\"cancelled\""));
    let again = http_request(
        server.addr(),
        "DELETE",
        &format!("/v1/jobs/{queued_id}"),
        b"",
    )
    .expect("double cancel");
    assert_eq!(again.status, 200, "cancel is idempotent");

    let done = poll_until_terminal(server.addr(), &slow_id);
    assert_eq!(done.status, 200, "{}", done.body_str());
    // The cancelled job stayed cancelled — the runner never ran it.
    let corpse = http_request(server.addr(), "GET", &format!("/v1/jobs/{queued_id}"), b"")
        .expect("poll corpse");
    assert!(
        corpse.body_str().contains("\"state\":\"cancelled\""),
        "{}",
        corpse.body_str()
    );
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    assert!(
        metrics.body_str().contains("serve.jobs,counter,,1"),
        "only the slow job executed:\n{}",
        metrics.body_str()
    );
}

/// The job table is bounded: while every slot holds a live job new
/// submissions get 503 + retry-after; once a job is terminal the
/// oldest terminal entry is evicted (journal-style) to make room, and
/// the evicted id stops resolving.
#[test]
fn the_job_table_is_bounded_with_journal_style_eviction() {
    let server = serve_with(ServeConfig {
        workers: NonZeroUsize::new(1).expect("nonzero"),
        job_capacity: 1,
        ..ServeConfig::default()
    });
    let first = http_request(server.addr(), "POST", "/v1/jobs", slow_job(900).as_bytes())
        .expect("submit first");
    assert_eq!(first.status, 202, "{}", first.body_str());
    let first_id = job_id(&first);

    // The only slot holds a live (queued or running) job: refuse.
    let refused = http_request(server.addr(), "POST", "/v1/jobs", slow_job(901).as_bytes())
        .expect("submit while full");
    assert_eq!(refused.status, 503, "{}", refused.body_str());
    assert_eq!(refused.header("retry-after"), Some("1"));

    let done = poll_until_terminal(server.addr(), &first_id);
    assert_eq!(done.status, 200, "{}", done.body_str());

    // Terminal entries are evictable: the resubmission lands, the old
    // id is forgotten, and the eviction is counted.
    let accepted = http_request(server.addr(), "POST", "/v1/jobs", slow_job(901).as_bytes())
        .expect("resubmit");
    assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    let second_id = job_id(&accepted);
    let forgotten = http_request(server.addr(), "GET", &format!("/v1/jobs/{first_id}"), b"")
        .expect("poll evicted");
    assert_eq!(forgotten.status, 404);

    let done = poll_until_terminal(server.addr(), &second_id);
    assert_eq!(done.status, 200, "{}", done.body_str());
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    assert!(
        metrics.body_str().contains("serve.jobs.evicted,counter,,1"),
        "{}",
        metrics.body_str()
    );
}
