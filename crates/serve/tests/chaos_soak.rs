//! Chaos soak: every client request crosses a seeded
//! `ftspm_testkit::chaos` proxy that stalls, dribbles, tears, cuts, or
//! drops connections deterministically, and a slice of the jobs are
//! `chaos_panic` worker bombs. The battery asserts the crash-only
//! serving contract end to end:
//!
//! - every job the server *received intact* is answered exactly once,
//!   and every surviving response is byte-identical to the clean
//!   in-process run of the same spec;
//! - panicking jobs come back as typed 500s without hurting their
//!   neighbours;
//! - afterwards `/metrics` equals the field-wise sum of the executed
//!   jobs' registries plus exactly the right `serve.*` counters —
//!   torn requests counted as malformed, vanished connections not
//!   counted at all.
//!
//! Chaos plans are a pure function of (seed, connection index), so a
//! failure replays exactly.

use std::num::NonZeroUsize;
use std::sync::Arc;

use std::time::Duration;

use ftspm_obs::MetricsRegistry;
use ftspm_serve::{JobSpec, ServeConfig, Server};
use ftspm_testkit::chaos::{keepalive_plan_for, plan_for, ChaosPlan, ChaosProxy, KeepAlivePlan};
use ftspm_testkit::rng::derive_seed;
use ftspm_testkit::{ephemeral_listener, http_request, par, HttpClient};

const BASE_SEED: u64 = 0xC405_50AC;
const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 24;

/// Every 6th request is a worker bomb; the rest are real jobs with
/// per-(client, index) seeds so cross-wired responses cannot match.
fn job_body(client: usize, index: usize) -> String {
    if index % 6 == 5 {
        return r#"{"workload": "crc32", "chaos_panic": true}"#.to_string();
    }
    let seed = (client * 1000 + index) as u64;
    format!(
        "{{\"workload\":{{\"synthetic\":{{\"buffer_words\":16,\"accesses\":120,\
         \"run_length\":4,\"seed\":{seed}}}}},\"metrics\":true}}"
    )
}

fn is_panic_job(index: usize) -> bool {
    index % 6 == 5
}

/// Silences panic output from the serve worker threads (the injected
/// `chaos_panic` bombs are supposed to fire); everything else keeps
/// the default hook behaviour.
fn quiet_worker_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("serve-worker"));
        if !in_worker {
            previous(info);
        }
    }));
}

#[test]
fn chaos_soak_answers_every_surviving_job_exactly_once() {
    quiet_worker_panics();

    // The clean reference: every non-panic job's body and registry,
    // computed in-process.
    let mut expected_bodies = vec![vec![String::new(); JOBS_PER_CLIENT]; CLIENTS];
    for (client, bodies) in expected_bodies.iter_mut().enumerate() {
        for (index, slot) in bodies.iter_mut().enumerate() {
            if is_panic_job(index) {
                continue;
            }
            let body = job_body(client, index);
            *slot = JobSpec::parse(body.as_bytes())
                .expect("job decodes")
                .run()
                .expect("job runs")
                .body;
        }
    }
    let expected_bodies = Arc::new(expected_bodies);

    let (listener, _) = ephemeral_listener();
    let mut server = Server::start(
        listener,
        ServeConfig {
            workers: par::thread_count().max(NonZeroUsize::new(2).expect("2 > 0")),
            ..ServeConfig::default()
        },
    )
    .expect("boot");
    let addr = server.addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let expected = Arc::clone(&expected_bodies);
            std::thread::spawn(move || {
                // One proxy per client; one connection per request, so
                // request `index` gets plan `plan_for(seed, index)`.
                let seed = derive_seed(BASE_SEED, client as u64);
                let proxy = ChaosProxy::start(addr, seed);
                for index in 0..JOBS_PER_CLIENT {
                    let plan = plan_for(seed, index as u64);
                    let body = job_body(client, index);
                    let reply = http_request(proxy.addr(), "POST", "/v1/run", body.as_bytes());
                    match plan {
                        _ if plan.client_sees_reply() && plan != ChaosPlan::TruncateRequest => {
                            let reply = reply.unwrap_or_else(|e| {
                                panic!("client {client} job {index} ({plan:?}): {e}")
                            });
                            if is_panic_job(index) {
                                assert_eq!(reply.status, 500, "{}", reply.body_str());
                                assert!(
                                    reply.body_str().contains("\"kind\":\"panic\""),
                                    "{}",
                                    reply.body_str()
                                );
                            } else {
                                assert_eq!(reply.status, 200, "{}", reply.body_str());
                                assert_eq!(
                                    reply.body_str(),
                                    expected[client][index],
                                    "client {client} job {index} got the wrong response"
                                );
                            }
                        }
                        ChaosPlan::TruncateRequest => {
                            // The server saw a torn frame: typed 400,
                            // job never ran.
                            let reply = reply.unwrap_or_else(|e| {
                                panic!("client {client} job {index} (truncate): {e}")
                            });
                            assert_eq!(reply.status, 400, "{}", reply.body_str());
                        }
                        _ => {
                            // CutMidResponse / DropBeforeForward: no
                            // complete reply can reach the client.
                            assert!(
                                reply.is_err(),
                                "client {client} job {index} ({plan:?}) got a whole reply"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Reconstruct the exact expected /metrics state from the plans —
    // they are pure functions, so this is the same arithmetic the
    // server just performed.
    let mut expected_totals = MetricsRegistry::new();
    let mut jobs = 0u64;
    let mut panicked = 0u64;
    let mut truncated = 0u64;
    let mut reached_server = 0u64;
    for client in 0..CLIENTS {
        let seed = derive_seed(BASE_SEED, client as u64);
        for index in 0..JOBS_PER_CLIENT {
            let plan = plan_for(seed, index as u64);
            if plan == ChaosPlan::TruncateRequest {
                truncated += 1;
                reached_server += 1;
                continue;
            }
            if !plan.executes() {
                continue;
            }
            reached_server += 1;
            if is_panic_job(index) {
                panicked += 1;
            } else {
                jobs += 1;
                let output = JobSpec::parse(job_body(client, index).as_bytes())
                    .expect("job decodes")
                    .run()
                    .expect("job runs");
                expected_totals.merge(&output.registry.expect("metrics job has a registry"));
            }
        }
    }
    assert!(
        jobs > 0 && panicked > 0 && truncated > 0,
        "chaos mix is degenerate"
    );

    // Fetch /metrics directly (no proxy): the snapshot must equal the
    // reconstruction field-for-field, byte-for-byte.
    let metrics = http_request(addr, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let body = metrics.body_str();
    let served_csv: String = body
        .lines()
        .filter(|line| !line.starts_with("serve."))
        .map(|line| format!("{line}\n"))
        .collect();
    assert_eq!(served_csv, expected_totals.to_csv());
    assert!(
        body.contains(&format!("serve.jobs,counter,,{jobs}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.panicked,counter,,{panicked}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.malformed.400,counter,,{truncated}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.requests,counter,,{reached_server}")),
        "{body}"
    );

    server.shutdown();
}

const KA_SEED: u64 = 0x4B33_9A1E;
const KA_CLIENTS: usize = 3;
const KA_CONNS_PER_CLIENT: usize = 16;
const KA_IDLE_WINDOW: Duration = Duration::from_millis(150);

/// A unique, cacheable, metrics-carrying job per (client, connection,
/// pipeline slot) — cross-wired responses cannot match, and the result
/// cache sees only misses, so exactly-once accounting stays sharp.
fn ka_job_body(client: usize, conn: usize, slot: usize) -> String {
    let seed = 50_000 + ((client * 100 + conn) * 10 + slot) as u64;
    format!(
        "{{\"workload\":{{\"synthetic\":{{\"buffer_words\":16,\"accesses\":120,\
         \"run_length\":4,\"seed\":{seed}}}}},\"metrics\":true}}"
    )
}

/// Drives one keep-alive connection through its chaos plan, asserting
/// every surviving response is byte-identical to the clean in-process
/// run of the same spec.
fn drive_keepalive_plan(
    addr: std::net::SocketAddr,
    plan: KeepAlivePlan,
    client: usize,
    conn: usize,
    expected: &dyn Fn(usize) -> String,
) {
    let mut c = HttpClient::connect(addr)
        .unwrap_or_else(|e| panic!("client {client} conn {conn}: connect: {e}"));
    let check = |reply: std::io::Result<ftspm_testkit::HttpReply>, slot: usize| {
        let reply =
            reply.unwrap_or_else(|e| panic!("client {client} conn {conn} slot {slot}: {e}"));
        assert_eq!(reply.status, 200, "{}", reply.body_str());
        assert_eq!(
            reply.body_str(),
            expected(slot),
            "client {client} conn {conn} slot {slot} got the wrong response"
        );
    };
    match plan {
        KeepAlivePlan::Pipeline { jobs } => {
            for slot in 0..jobs {
                c.send(
                    "POST",
                    "/v1/run",
                    ka_job_body(client, conn, slot).as_bytes(),
                )
                .expect("pipeline send");
            }
            for slot in 0..jobs {
                check(c.read_reply(), slot);
            }
        }
        KeepAlivePlan::TornSecondRequest => {
            c.send("POST", "/v1/run", ka_job_body(client, conn, 0).as_bytes())
                .expect("send slot 0");
            // The second frame tears mid-header and the write side
            // closes: the tear is permanent, not a stall.
            c.send_raw(b"POST /v1/run HTTP/1.1\r\ncontent-le")
                .expect("torn frame");
            c.shutdown_write().expect("half-close");
            check(c.read_reply(), 0);
            c.expect_reply();
            let torn = c.read_reply().expect("typed reply to the torn frame");
            assert_eq!(torn.status, 400, "{}", torn.body_str());
        }
        KeepAlivePlan::IdleStall => {
            check(
                c.request("POST", "/v1/run", ka_job_body(client, conn, 0).as_bytes()),
                0,
            );
            // Go quiet; the server must speak first with a typed 408.
            c.expect_reply();
            let idle = c.read_reply().expect("server-initiated 408");
            assert_eq!(idle.status, 408, "{}", idle.body_str());
        }
        KeepAlivePlan::CutBetweenResponses => {
            c.send("POST", "/v1/run", ka_job_body(client, conn, 0).as_bytes())
                .expect("send slot 0");
            c.send("POST", "/v1/run", ka_job_body(client, conn, 1).as_bytes())
                .expect("send slot 1");
            check(c.read_reply(), 0);
            // Vanish between responses: slot 1's reply is never read
            // (the server has already executed and counted it).
            drop(c);
        }
    }
}

/// Keep-alive chaos soak: every connection runs a seeded
/// [`KeepAlivePlan`] — healthy pipelining, a torn second frame, an
/// idle stall, a cut between pipelined responses — and afterwards
/// `/metrics` must equal the pure-function reconstruction exactly:
/// every job the server parsed executed exactly once, torn frames
/// counted as 400s, idle closes counted as idle closes and nothing
/// else.
#[test]
fn keepalive_chaos_accounts_every_job_exactly_once() {
    let (listener, _) = ephemeral_listener();
    let mut server = Server::start(
        listener,
        ServeConfig {
            workers: par::thread_count().max(NonZeroUsize::new(2).expect("2 > 0")),
            idle_timeout: KA_IDLE_WINDOW,
            ..ServeConfig::default()
        },
    )
    .expect("boot");
    let addr = server.addr();

    let clients: Vec<_> = (0..KA_CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let seed = derive_seed(KA_SEED, client as u64);
                for conn in 0..KA_CONNS_PER_CLIENT {
                    let plan = keepalive_plan_for(seed, conn as u64);
                    let expected = move |slot: usize| {
                        JobSpec::parse(ka_job_body(client, conn, slot).as_bytes())
                            .expect("job decodes")
                            .run()
                            .expect("job runs")
                            .body
                    };
                    drive_keepalive_plan(addr, plan, client, conn, &expected);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Reconstruct /metrics from the plans' pure accounting.
    let mut expected_totals = MetricsRegistry::new();
    let (mut jobs, mut requests, mut torn, mut reused, mut idle) = (0, 0, 0, 0, 0);
    let mut variants = [0usize; 4];
    for client in 0..KA_CLIENTS {
        let seed = derive_seed(KA_SEED, client as u64);
        for conn in 0..KA_CONNS_PER_CLIENT {
            let plan = keepalive_plan_for(seed, conn as u64);
            variants[match plan {
                KeepAlivePlan::Pipeline { .. } => 0,
                KeepAlivePlan::TornSecondRequest => 1,
                KeepAlivePlan::IdleStall => 2,
                KeepAlivePlan::CutBetweenResponses => 3,
            }] += 1;
            jobs += plan.jobs_executed();
            requests += plan.requests_counted();
            torn += plan.malformed_400();
            reused += plan.conn_reused();
            idle += plan.idle_timeouts();
            for slot in 0..plan.jobs_executed() {
                let output = JobSpec::parse(ka_job_body(client, conn, slot).as_bytes())
                    .expect("job decodes")
                    .run()
                    .expect("job runs");
                expected_totals.merge(&output.registry.expect("metrics job has a registry"));
            }
        }
    }
    assert!(
        variants.iter().all(|&n| n > 0),
        "chaos mix is degenerate: {variants:?}"
    );

    let metrics = http_request(addr, "GET", "/metrics", b"").expect("metrics");
    let body = metrics.body_str();
    let served_csv: String = body
        .lines()
        .filter(|line| !line.starts_with("serve."))
        .map(|line| format!("{line}\n"))
        .collect();
    assert_eq!(served_csv, expected_totals.to_csv());
    for (counter, value) in [
        ("serve.jobs", jobs),
        ("serve.requests", requests),
        ("serve.malformed.400", torn),
        ("serve.conn.reused", reused),
        ("serve.conn.idle_timeout", idle),
        // Every job is unique and cacheable: all misses, no hits.
        ("serve.cache.miss", jobs),
    ] {
        assert!(
            body.contains(&format!("{counter},counter,,{value}")),
            "{counter} != {value}:\n{body}"
        );
    }
    assert!(!body.contains("serve.cache.hit"), "{body}");
    assert!(!body.contains("serve.malformed.408"), "{body}");

    server.shutdown();
}
