//! Chaos soak: every client request crosses a seeded
//! `ftspm_testkit::chaos` proxy that stalls, dribbles, tears, cuts, or
//! drops connections deterministically, and a slice of the jobs are
//! `chaos_panic` worker bombs. The battery asserts the crash-only
//! serving contract end to end:
//!
//! - every job the server *received intact* is answered exactly once,
//!   and every surviving response is byte-identical to the clean
//!   in-process run of the same spec;
//! - panicking jobs come back as typed 500s without hurting their
//!   neighbours;
//! - afterwards `/metrics` equals the field-wise sum of the executed
//!   jobs' registries plus exactly the right `serve.*` counters —
//!   torn requests counted as malformed, vanished connections not
//!   counted at all.
//!
//! Chaos plans are a pure function of (seed, connection index), so a
//! failure replays exactly.

use std::num::NonZeroUsize;
use std::sync::Arc;

use ftspm_obs::MetricsRegistry;
use ftspm_serve::{JobSpec, ServeConfig, Server};
use ftspm_testkit::chaos::{plan_for, ChaosPlan, ChaosProxy};
use ftspm_testkit::rng::derive_seed;
use ftspm_testkit::{ephemeral_listener, http_request, par};

const BASE_SEED: u64 = 0xC405_50AC;
const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 24;

/// Every 6th request is a worker bomb; the rest are real jobs with
/// per-(client, index) seeds so cross-wired responses cannot match.
fn job_body(client: usize, index: usize) -> String {
    if index % 6 == 5 {
        return r#"{"workload": "crc32", "chaos_panic": true}"#.to_string();
    }
    let seed = (client * 1000 + index) as u64;
    format!(
        "{{\"workload\":{{\"synthetic\":{{\"buffer_words\":16,\"accesses\":120,\
         \"run_length\":4,\"seed\":{seed}}}}},\"metrics\":true}}"
    )
}

fn is_panic_job(index: usize) -> bool {
    index % 6 == 5
}

/// Silences panic output from the serve worker threads (the injected
/// `chaos_panic` bombs are supposed to fire); everything else keeps
/// the default hook behaviour.
fn quiet_worker_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("serve-worker"));
        if !in_worker {
            previous(info);
        }
    }));
}

#[test]
fn chaos_soak_answers_every_surviving_job_exactly_once() {
    quiet_worker_panics();

    // The clean reference: every non-panic job's body and registry,
    // computed in-process.
    let mut expected_bodies = vec![vec![String::new(); JOBS_PER_CLIENT]; CLIENTS];
    for (client, bodies) in expected_bodies.iter_mut().enumerate() {
        for (index, slot) in bodies.iter_mut().enumerate() {
            if is_panic_job(index) {
                continue;
            }
            let body = job_body(client, index);
            *slot = JobSpec::parse(body.as_bytes())
                .expect("job decodes")
                .run()
                .expect("job runs")
                .body;
        }
    }
    let expected_bodies = Arc::new(expected_bodies);

    let (listener, _) = ephemeral_listener();
    let mut server = Server::start(
        listener,
        ServeConfig {
            workers: par::thread_count().max(NonZeroUsize::new(2).expect("2 > 0")),
            ..ServeConfig::default()
        },
    )
    .expect("boot");
    let addr = server.addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let expected = Arc::clone(&expected_bodies);
            std::thread::spawn(move || {
                // One proxy per client; one connection per request, so
                // request `index` gets plan `plan_for(seed, index)`.
                let seed = derive_seed(BASE_SEED, client as u64);
                let proxy = ChaosProxy::start(addr, seed);
                for index in 0..JOBS_PER_CLIENT {
                    let plan = plan_for(seed, index as u64);
                    let body = job_body(client, index);
                    let reply = http_request(proxy.addr(), "POST", "/v1/run", body.as_bytes());
                    match plan {
                        _ if plan.client_sees_reply() && plan != ChaosPlan::TruncateRequest => {
                            let reply = reply.unwrap_or_else(|e| {
                                panic!("client {client} job {index} ({plan:?}): {e}")
                            });
                            if is_panic_job(index) {
                                assert_eq!(reply.status, 500, "{}", reply.body_str());
                                assert!(
                                    reply.body_str().contains("\"kind\":\"panic\""),
                                    "{}",
                                    reply.body_str()
                                );
                            } else {
                                assert_eq!(reply.status, 200, "{}", reply.body_str());
                                assert_eq!(
                                    reply.body_str(),
                                    expected[client][index],
                                    "client {client} job {index} got the wrong response"
                                );
                            }
                        }
                        ChaosPlan::TruncateRequest => {
                            // The server saw a torn frame: typed 400,
                            // job never ran.
                            let reply = reply.unwrap_or_else(|e| {
                                panic!("client {client} job {index} (truncate): {e}")
                            });
                            assert_eq!(reply.status, 400, "{}", reply.body_str());
                        }
                        _ => {
                            // CutMidResponse / DropBeforeForward: no
                            // complete reply can reach the client.
                            assert!(
                                reply.is_err(),
                                "client {client} job {index} ({plan:?}) got a whole reply"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Reconstruct the exact expected /metrics state from the plans —
    // they are pure functions, so this is the same arithmetic the
    // server just performed.
    let mut expected_totals = MetricsRegistry::new();
    let mut jobs = 0u64;
    let mut panicked = 0u64;
    let mut truncated = 0u64;
    let mut reached_server = 0u64;
    for client in 0..CLIENTS {
        let seed = derive_seed(BASE_SEED, client as u64);
        for index in 0..JOBS_PER_CLIENT {
            let plan = plan_for(seed, index as u64);
            if plan == ChaosPlan::TruncateRequest {
                truncated += 1;
                reached_server += 1;
                continue;
            }
            if !plan.executes() {
                continue;
            }
            reached_server += 1;
            if is_panic_job(index) {
                panicked += 1;
            } else {
                jobs += 1;
                let output = JobSpec::parse(job_body(client, index).as_bytes())
                    .expect("job decodes")
                    .run()
                    .expect("job runs");
                expected_totals.merge(&output.registry.expect("metrics job has a registry"));
            }
        }
    }
    assert!(
        jobs > 0 && panicked > 0 && truncated > 0,
        "chaos mix is degenerate"
    );

    // Fetch /metrics directly (no proxy): the snapshot must equal the
    // reconstruction field-for-field, byte-for-byte.
    let metrics = http_request(addr, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let body = metrics.body_str();
    let served_csv: String = body
        .lines()
        .filter(|line| !line.starts_with("serve."))
        .map(|line| format!("{line}\n"))
        .collect();
    assert_eq!(served_csv, expected_totals.to_csv());
    assert!(
        body.contains(&format!("serve.jobs,counter,,{jobs}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.panicked,counter,,{panicked}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.malformed.400,counter,,{truncated}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("serve.requests,counter,,{reached_server}")),
        "{body}"
    );

    server.shutdown();
}
