//! Keep-alive conformance battery: the PR's acceptance differential
//! (N pipelined requests ≡ N fresh-connection requests, byte for
//! byte), plus the wire-visible RFC 9110 fixes — `Allow` on 405,
//! HEAD mirroring GET headers with an empty body — and the
//! connection-lifecycle bounds (idle 408, per-connection request cap).

use std::num::NonZeroUsize;
use std::time::Duration;

use ftspm_serve::{ServeConfig, Server};
use ftspm_testkit::{ephemeral_listener, http_request, par, HttpClient};

fn serve_with(config: ServeConfig) -> Server {
    let (listener, _) = ephemeral_listener();
    Server::start(listener, config).expect("boot")
}

fn serve_at(workers: usize) -> Server {
    serve_with(ServeConfig {
        workers: NonZeroUsize::new(workers).expect("nonzero workers"),
        ..ServeConfig::default()
    })
}

/// A mixed request list exercising every endpoint class a keep-alive
/// connection can carry. `(method, path, body)`.
fn request_grid() -> Vec<(&'static str, &'static str, Vec<u8>)> {
    vec![
        ("GET", "/healthz", Vec::new()),
        (
            "POST",
            "/v1/run",
            br#"{"workload": {"name": "crc32", "seed": 7}}"#.to_vec(),
        ),
        (
            "POST",
            "/v1/run",
            br#"{"workload": {"synthetic": {"buffer_words": 48, "accesses": 500, "seed": 3}},
                "faults": {"seed": 5, "mean_cycles_between_strikes": 1500.0},
                "metrics": true}"#
                .to_vec(),
        ),
        (
            "POST",
            "/v1/batch",
            br#"[{"workload": {"name": "crc32", "seed": 11}},
                 {"workload": {"synthetic": {"buffer_words": 32, "accesses": 300, "seed": 2}}}]"#
                .to_vec(),
        ),
        ("GET", "/nope", Vec::new()),
        (
            "POST",
            "/v1/run",
            br#"{"workload": {"name": "crc32", "seed": 13}, "deadline_cycles": 50}"#.to_vec(),
        ),
    ]
}

/// The acceptance differential: N requests pipelined down ONE
/// keep-alive connection answer with bodies byte-identical to the same
/// N requests each on a fresh connection — at a worker-pool size of 1
/// and at `FTSPM_THREADS`' value. Only the `connection:` disposition
/// may differ between the two shapes.
#[test]
fn pipelined_requests_match_fresh_connections_byte_for_byte() {
    for workers in [1, par::thread_count().get()] {
        let server = serve_at(workers);

        // Fresh-connection baseline, one socket per request. Run on a
        // separate server so its cache/counters don't feed the other
        // shape — the comparison must be between cold equals.
        let baseline = serve_at(workers);
        let fresh: Vec<_> = request_grid()
            .iter()
            .map(|(method, path, body)| {
                http_request(baseline.addr(), method, path, body).expect("fresh request")
            })
            .collect();

        // All requests on the wire before the first response is read.
        let mut client = HttpClient::connect(server.addr()).expect("connect");
        for (method, path, body) in &request_grid() {
            client.send(method, path, body).expect("pipeline send");
        }
        for (i, expected) in fresh.iter().enumerate() {
            let got = client.read_reply().expect("pipelined reply");
            assert_eq!(
                got.status, expected.status,
                "status {i} (workers={workers})"
            );
            assert_eq!(
                got.body_str(),
                expected.body_str(),
                "body {i} diverged between pipelined and fresh (workers={workers})"
            );
            assert_eq!(
                got.header("content-type"),
                expected.header("content-type"),
                "content-type {i} (workers={workers})"
            );
            // The one permitted difference: disposition.
            assert_eq!(got.header("connection"), Some("keep-alive"), "{i}");
            assert_eq!(expected.header("connection"), Some("close"), "{i}");
        }

        // Every request after the first counted as a reuse.
        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        let reuses = request_grid().len() - 1;
        assert!(
            metrics
                .body_str()
                .contains(&format!("serve.conn.reused,counter,,{reuses}")),
            "workers={workers}:\n{}",
            metrics.body_str()
        );
    }
}

/// RFC 9110 §15.5.6: a 405 must say what IS allowed.
#[test]
fn wrong_methods_get_405_with_an_allow_header() {
    let server = serve_at(1);
    for (method, path, allow) in [
        ("POST", "/healthz", "GET, HEAD"),
        ("DELETE", "/metrics", "GET, HEAD"),
        ("GET", "/v1/run", "POST"),
        ("GET", "/v1/batch", "POST"),
        ("PUT", "/v1/jobs", "POST"),
        ("PATCH", "/v1/jobs/abc123", "GET, DELETE"),
    ] {
        let reply = http_request(server.addr(), method, path, b"").expect("405 reply");
        assert_eq!(reply.status, 405, "{method} {path}");
        assert_eq!(reply.header("allow"), Some(allow), "{method} {path}");
    }
}

/// HEAD answers with exactly the GET headers (content-length included)
/// and no body — and because the body is suppressed at write time, a
/// pipelined request behind the HEAD still parses cleanly.
#[test]
fn head_mirrors_get_headers_with_an_empty_body() {
    let server = serve_at(1);
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    for path in ["/healthz", "/metrics"] {
        let get = client.request("GET", path, b"").expect("GET");
        let head = client.request("HEAD", path, b"").expect("HEAD");
        assert_eq!(head.status, 200, "{path}");
        assert_eq!(
            head.header("content-type"),
            get.header("content-type"),
            "{path}"
        );
        assert!(head.body.is_empty(), "{path}: HEAD must carry no body");
        assert!(
            head.header("content-length").is_some(),
            "{path}: HEAD advertises the GET length"
        );
    }
    // /healthz is a fixed body, so the advertised lengths are equal
    // too. (/metrics grew between the two fetches — serve.requests
    // moved — so only the header-set shape is compared above.)
    let get = client.request("GET", "/healthz", b"").expect("GET");
    let head = client.request("HEAD", "/healthz", b"").expect("HEAD");
    assert_eq!(get.header("content-length"), head.header("content-length"));
    // The connection survived all of it: one socket, seven requests.
    let metrics = client.request("GET", "/metrics", b"").expect("metrics");
    assert!(
        metrics.body_str().contains("serve.conn.reused,counter,,6"),
        "{}",
        metrics.body_str()
    );
}

/// A reused connection that goes quiet gets a typed 408 counted as
/// `serve.conn.idle_timeout` — and NOT as a request, because the
/// client never sent one.
#[test]
fn idle_keep_alive_connections_get_a_typed_408() {
    let server = serve_with(ServeConfig {
        workers: NonZeroUsize::new(1).expect("nonzero"),
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let first = client.request("GET", "/healthz", b"").expect("request 1");
    assert_eq!(first.status, 200);
    // Send nothing more: after the idle window the server speaks
    // first, and the read blocks until its 408 lands.
    client.expect_reply();
    let reply = client.read_reply().expect("the pending 408");
    assert_eq!(reply.status, 408);
    assert_eq!(reply.header("connection"), Some("close"));
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let body = metrics.body_str();
    assert!(
        body.contains("serve.conn.idle_timeout,counter,,1"),
        "{body}"
    );
    // Exactly the healthz request (a /metrics snapshot precedes its
    // own count) — the idle close is not a request, and no
    // malformed.408 was charged.
    assert!(body.contains("serve.requests,counter,,1"), "{body}");
    assert!(!body.contains("serve.malformed.408"), "{body}");
}

/// A stall on the FIRST frame of a connection keeps the legacy
/// accounting: counted as a request and as `serve.malformed.408`.
#[test]
fn a_stalled_first_request_is_a_counted_408() {
    let server = serve_with(ServeConfig {
        workers: NonZeroUsize::new(1).expect("nonzero"),
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    // Half a request line, then silence until the read timeout fires.
    client.send_raw(b"POST /v1/run HT").expect("torn send");
    client.expect_reply();
    let reply = client.read_reply().expect("the pending 408");
    assert_eq!(reply.status, 408);
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let body = metrics.body_str();
    assert!(body.contains("serve.malformed.408,counter,,1"), "{body}");
    assert!(!body.contains("serve.conn.idle_timeout"), "{body}");
}

/// The per-connection request cap closes the socket with
/// `connection: close` on the final response.
#[test]
fn the_request_cap_closes_the_connection() {
    let server = serve_with(ServeConfig {
        workers: NonZeroUsize::new(1).expect("nonzero"),
        max_requests_per_connection: 2,
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let first = client.request("GET", "/healthz", b"").expect("request 1");
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = client.request("GET", "/healthz", b"").expect("request 2");
    assert_eq!(second.header("connection"), Some("close"));
    // The socket is gone; a third request cannot complete (the send
    // itself may already fail with a broken pipe).
    let third = client
        .send("GET", "/healthz", b"")
        .and_then(|()| client.read_reply());
    assert!(third.is_err(), "capped connection must close");
    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    assert!(
        metrics.body_str().contains("serve.conn.reused,counter,,1"),
        "{}",
        metrics.body_str()
    );
}

/// An explicit `connection: close` from the client is honored
/// mid-conversation (the one-shot `http_request` client sends it, so
/// this is also what keeps the legacy client working unchanged).
#[test]
fn client_requested_close_is_honored() {
    let server = serve_at(1);
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let keep = client.request("GET", "/healthz", b"").expect("keep-alive");
    assert_eq!(keep.header("connection"), Some("keep-alive"));
    client
        .send_raw(
            b"GET /healthz HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
        )
        .expect("raw close request");
    client.expect_reply();
    let closed = client.read_reply().expect("close reply");
    assert_eq!(closed.status, 200);
    assert_eq!(closed.header("connection"), Some("close"));
}
