//! The trace ingestion loop, pinned end to end: record a real suite
//! kernel in-process, upload the encoded trace over `POST /v1/traces`,
//! replay it through `POST /v1/run` — and the served report is
//! byte-identical to running the same trace-backed spec in-process
//! through [`JobSpec::run_with`]. The fit path gets the same
//! treatment, plus the failure surface: unknown ids answer a typed
//! 422, damaged uploads a typed 400, and re-uploads dedupe.

use std::num::NonZeroUsize;
use std::sync::Arc;

use ftspm_serve::{JobSpec, ServeConfig, Server, TraceId, TraceTable};
use ftspm_testkit::{ephemeral_listener, http_request, par};
use ftspm_trace::record;
use ftspm_workloads::registry;

fn serve_at(workers: usize) -> Server {
    let (listener, _) = ephemeral_listener();
    Server::start(
        listener,
        ServeConfig {
            workers: NonZeroUsize::new(workers).expect("nonzero workers"),
            ..ServeConfig::default()
        },
    )
    .expect("boot")
}

/// Records the `bitcount` suite kernel (its encoded trace sits well
/// under the 1 MiB body cap) and returns `(encoded bytes, id)`.
fn recorded_kernel() -> (Vec<u8>, TraceId) {
    let entry = registry::find("bitcount").expect("suite kernel");
    let mut workload = entry.build(None);
    let trace = record(&mut *workload).expect("records");
    let bytes = trace.encode();
    let id = TraceId::of(&bytes);
    (bytes, id)
}

#[test]
fn uploaded_replay_is_byte_identical_to_in_process_at_any_pool_size() {
    let (bytes, id) = recorded_kernel();

    // The in-process truth: the same trace resolved from a local table.
    let mut table = TraceTable::new(4);
    let (trace, _tail) = ftspm_trace::Trace::decode(&bytes).expect("own encoding decodes");
    table.insert(id, Arc::new(trace));
    let replay_spec = format!(r#"{{"workload": {{"trace": "{id}"}}}}"#);
    let fit_spec = format!(r#"{{"workload": {{"fit": "{id}"}}, "metrics": true}}"#);
    let expected_replay = JobSpec::parse(replay_spec.as_bytes())
        .expect("decodes")
        .run_with(&table)
        .expect("replays")
        .body;
    let expected_fit = JobSpec::parse(fit_spec.as_bytes())
        .expect("decodes")
        .run_with(&table)
        .expect("fits")
        .body;

    for workers in [1, par::thread_count().get()] {
        let server = serve_at(workers);
        let upload = http_request(server.addr(), "POST", "/v1/traces", &bytes).expect("upload");
        assert_eq!(upload.status, 200, "{}", upload.body_str());
        assert!(
            upload.body_str().contains(&id.to_string()),
            "{}",
            upload.body_str()
        );
        assert!(upload.body_str().contains("\"state\":\"stored\""));

        let reply =
            http_request(server.addr(), "POST", "/v1/run", replay_spec.as_bytes()).expect("replay");
        assert_eq!(reply.status, 200, "{}", reply.body_str());
        assert_eq!(
            reply.body_str(),
            expected_replay,
            "served replay diverged from in-process (workers={workers})"
        );
        // The replayed report carries the source kernel's name and a
        // verified checksum — the replay reproduced every load the
        // recorded run observed.
        assert!(reply.body_str().contains("\"workload\":\"bitcount\""));
        assert!(reply.body_str().contains("\"checksum_ok\":true"));

        let fitted =
            http_request(server.addr(), "POST", "/v1/run", fit_spec.as_bytes()).expect("fit");
        assert_eq!(fitted.status, 200, "{}", fitted.body_str());
        assert_eq!(
            fitted.body_str(),
            expected_fit,
            "served fit diverged from in-process (workers={workers})"
        );

        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        let csv = metrics.body_str();
        assert!(csv.contains("trace.uploaded,counter,,1"), "{csv}");
        assert!(csv.contains("trace.replayed,counter,,1"), "{csv}");
        assert!(csv.contains("trace.fitted,counter,,1"), "{csv}");
    }
}

#[test]
fn reuploads_dedupe_and_damage_is_typed() {
    let (bytes, id) = recorded_kernel();
    let server = serve_at(2);

    let first = http_request(server.addr(), "POST", "/v1/traces", &bytes).expect("first");
    assert_eq!(first.status, 200);
    let second = http_request(server.addr(), "POST", "/v1/traces", &bytes).expect("second");
    assert_eq!(second.status, 200);
    assert!(
        second.body_str().contains("\"state\":\"exists\""),
        "{}",
        second.body_str()
    );

    // Junk bytes: typed 400, counted as a rejection.
    let junk = http_request(server.addr(), "POST", "/v1/traces", b"not a trace").expect("junk");
    assert_eq!(junk.status, 400, "{}", junk.body_str());
    assert!(junk.body_str().contains("\"kind\":\"bad_trace\""));

    // A torn tail (valid prefix, cut upload): rejected too — replay
    // needs the complete op stream.
    let torn = &bytes[..bytes.len() - 100];
    let torn = http_request(server.addr(), "POST", "/v1/traces", torn).expect("torn");
    assert_eq!(torn.status, 400, "{}", torn.body_str());

    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("trace.uploaded,counter,,1"), "{csv}");
    assert!(csv.contains("trace.rejected,counter,,2"), "{csv}");

    // The stored trace still resolves after the failed uploads.
    let spec = format!(r#"{{"workload": {{"trace": "{id}"}}}}"#);
    let reply = http_request(server.addr(), "POST", "/v1/run", spec.as_bytes()).expect("run");
    assert_eq!(reply.status, 200, "{}", reply.body_str());
}

#[test]
fn unknown_trace_ids_answer_422_and_are_never_cached() {
    let server = serve_at(2);
    let (bytes, id) = recorded_kernel();
    let spec = format!(r#"{{"workload": {{"trace": "{id}"}}}}"#);

    // Running before uploading: a typed 422 naming the trace.
    let miss = http_request(server.addr(), "POST", "/v1/run", spec.as_bytes()).expect("miss");
    assert_eq!(miss.status, 422, "{}", miss.body_str());
    assert!(
        miss.body_str().contains("\"kind\":\"unresolved_workload\""),
        "{}",
        miss.body_str()
    );

    // The 422 was not cached: upload the trace and the *same spec*
    // (same content address, same cache key) now runs to a report.
    let upload = http_request(server.addr(), "POST", "/v1/traces", &bytes).expect("upload");
    assert_eq!(upload.status, 200);
    let hit = http_request(server.addr(), "POST", "/v1/run", spec.as_bytes()).expect("run");
    assert_eq!(hit.status, 200, "{}", hit.body_str());

    let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
    let csv = metrics.body_str();
    assert!(csv.contains("trace.unresolved,counter,,1"), "{csv}");
    assert!(csv.contains("serve.malformed.422,counter,,1"), "{csv}");
}
