//! A minimal hand-rolled JSON parser and string escaper.
//!
//! The service's job bodies are small and flat, so this is the whole
//! JSON surface the workspace needs: parse a complete document from
//! bytes (rejecting trailing junk — a body that keeps going after the
//! closing brace is a malformed request, not an extension point), plus
//! [`escape`] for rendering response strings. No external crates, no
//! recursion deeper than [`MAX_DEPTH`] (a nesting bomb must be a typed
//! 4xx, not a stack overflow).
//!
//! Integers and floats are kept apart: seeds are full-range `u64`s that
//! an `f64` would silently round, so a number without `.`/`e` parses as
//! [`Json::Int`] (i128, covering both `u64` and `i64`) and everything
//! else as [`Json::Float`].

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional or exponent part.
    Int(i128),
    /// A number with a fractional or exponent part.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicates kept as-is
    /// (lookups return the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` (integers in range only — floats never
    /// coerce, so a fractional seed is a decode error, not a rounding).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Why a byte buffer failed to parse as one JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended inside a value.
    UnexpectedEnd,
    /// An unexpected byte at this offset.
    UnexpectedByte(usize),
    /// Non-whitespace bytes after the document — junk after the body.
    TrailingBytes(usize),
    /// A malformed number at this offset.
    BadNumber(usize),
    /// A malformed string escape at this offset.
    BadEscape(usize),
    /// A string that is not valid UTF-8 at this offset.
    BadUtf8(usize),
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "unexpected end of JSON input"),
            Self::UnexpectedByte(at) => write!(f, "unexpected byte at offset {at}"),
            Self::TrailingBytes(at) => {
                write!(f, "trailing bytes after JSON document at offset {at}")
            }
            Self::BadNumber(at) => write!(f, "malformed number at offset {at}"),
            Self::BadEscape(at) => write!(f, "malformed string escape at offset {at}"),
            Self::BadUtf8(at) => write!(f, "invalid UTF-8 in string at offset {at}"),
            Self::TooDeep => write!(f, "JSON nested deeper than {MAX_DEPTH} levels"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses `bytes` as exactly one JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed input, over-deep nesting, or
/// non-whitespace bytes after the document.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::TrailingBytes(p.pos));
    }
    Ok(value)
}

/// Renders `s` as a quoted JSON string with the required escapes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(JsonError::UnexpectedByte(self.pos)),
            None => Err(JsonError::UnexpectedEnd),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else if self.bytes.len() - self.pos < word.len() {
            Err(JsonError::UnexpectedEnd)
        } else {
            Err(JsonError::UnexpectedByte(self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::UnexpectedEnd),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::UnexpectedByte(self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(_) => return Err(JsonError::UnexpectedByte(self.pos)),
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                Some(_) => return Err(JsonError::UnexpectedByte(self.pos)),
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::UnexpectedEnd),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| JsonError::BadUtf8(self.pos));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError::UnexpectedEnd)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(JsonError::BadEscape(self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => return Err(JsonError::UnexpectedByte(self.pos)),
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let at = self.pos;
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(JsonError::UnexpectedEnd)?;
        let s = std::str::from_utf8(slice).map_err(|_| JsonError::BadEscape(at))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::BadEscape(at))?;
        self.pos += 4;
        Ok(v)
    }

    /// Parses the 4 hex digits after `\u`, pairing surrogates.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(JsonError::BadEscape(at));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(JsonError::BadEscape(at));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(JsonError::BadEscape(at));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else if (0xDC00..0xE000).contains(&hi) {
            return Err(JsonError::BadEscape(at));
        } else {
            hi
        };
        char::from_u32(code).ok_or(JsonError::BadEscape(at))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digit_run();
        if int_digits == 0 {
            return Err(JsonError::BadNumber(start));
        }
        // Leading zeros are invalid JSON ("01"), but "0" and "0.5" are
        // fine.
        let int_span = &self.bytes[start..self.pos];
        let unsigned = int_span.strip_prefix(b"-").unwrap_or(int_span);
        if unsigned.len() > 1 && unsigned[0] == b'0' {
            return Err(JsonError::BadNumber(start));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(JsonError::BadNumber(start));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(JsonError::BadNumber(start));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::BadNumber(start))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| JsonError::BadNumber(start))?;
            if !f.is_finite() {
                return Err(JsonError::BadNumber(start));
            }
            Ok(Json::Float(f))
        } else {
            // Integers beyond i128 (>39 digits) fall back to float only
            // if finite; otherwise they are malformed.
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| JsonError::BadNumber(start))?;
                    if f.is_finite() {
                        Ok(Json::Float(f))
                    } else {
                        Err(JsonError::BadNumber(start))
                    }
                }
            }
        }
    }

    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_shaped_document() {
        let doc = br#"{"workload": "crc32", "seed": 18446744073709551615,
                       "faults": {"mean": 1e4, "scrub": null}, "metrics": true,
                       "roles": ["data_ecc", "data_parity"]}"#;
        let v = parse(doc).expect("valid document");
        assert_eq!(v.get("workload").and_then(Json::as_str), Some("crc32"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        let faults = v.get("faults").expect("faults");
        assert_eq!(faults.get("mean").and_then(Json::as_f64), Some(1e4));
        assert_eq!(faults.get("scrub"), Some(&Json::Null));
        assert_eq!(v.get("metrics").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("roles").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(parse(b"42"), Ok(Json::Int(42)));
        assert_eq!(parse(b"-7"), Ok(Json::Int(-7)));
        assert_eq!(parse(b"42.0"), Ok(Json::Float(42.0)));
        assert_eq!(parse(b"1e3"), Ok(Json::Float(1000.0)));
        // A fractional value never silently becomes a seed.
        assert_eq!(parse(b"1.5").expect("float").as_u64(), None);
    }

    #[test]
    fn trailing_junk_is_rejected() {
        assert!(matches!(parse(b"{} x"), Err(JsonError::TrailingBytes(_))));
        assert!(matches!(parse(b"1 2"), Err(JsonError::TrailingBytes(_))));
        assert!(matches!(parse(b"[1],"), Err(JsonError::TrailingBytes(_))));
        // Pure whitespace padding is fine.
        assert_eq!(parse(b"  {}  "), Ok(Json::Obj(Vec::new())));
    }

    #[test]
    fn nesting_bombs_are_a_typed_error_not_a_stack_overflow() {
        let mut bomb = Vec::new();
        bomb.extend(std::iter::repeat_n(b'[', 100_000));
        assert_eq!(parse(&bomb), Err(JsonError::TooDeep));
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert_eq!(parse(b""), Err(JsonError::UnexpectedEnd));
        assert!(matches!(
            parse(b"{\"a\":}"),
            Err(JsonError::UnexpectedByte(_))
        ));
        assert!(matches!(parse(b"01"), Err(JsonError::BadNumber(_))));
        assert!(matches!(parse(b"1."), Err(JsonError::BadNumber(_))));
        assert!(matches!(parse(b"\"\\q\""), Err(JsonError::BadEscape(_))));
        assert!(matches!(parse(b"\"\xff\""), Err(JsonError::BadUtf8(_))));
        assert_eq!(parse(b"[1,"), Err(JsonError::UnexpectedEnd));
        assert_eq!(parse(b"\"open"), Err(JsonError::UnexpectedEnd));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab\u{1}";
        let quoted = escape(original);
        let parsed = parse(quoted.as_bytes()).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        assert_eq!(
            parse(br#""\u00e9\ud83d\ude00""#).expect("unicode").as_str(),
            Some("é😀")
        );
        assert!(matches!(
            parse(br#""\ud83d alone""#),
            Err(JsonError::BadEscape(_))
        ));
    }
}
