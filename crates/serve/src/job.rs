//! Job specs: the service's JSON schema, its validating decoder, and
//! the deterministic report renderer.
//!
//! A job body selects a workload — a named suite kernel, an inline
//! synthetic spec, an uploaded trace to replay (`{"trace": "<id>"}`),
//! or a synthetic fitted to one (`{"fit": "<id>"}`) — plus a
//! structure, an optimisation target, optional live fault injection,
//! and whether to attach an observability registry:
//!
//! ```json
//! {
//!   "workload": {"name": "crc32", "seed": 1234},
//!   "structure": "ftspm",
//!   "optimize": "reliability",
//!   "faults": {"seed": 7, "mean_cycles_between_strikes": 10000.0,
//!              "scrub_interval": 50000, "restrict_to": ["data_ecc"]},
//!   "metrics": true,
//!   "deadline_cycles": 100000000
//! }
//! ```
//!
//! `deadline_cycles` bounds the simulation: a job that would run past
//! its budget is cancelled at a deterministic cycle and the server
//! answers 504 with a typed body. `chaos_panic` (boolean) is the
//! documented chaos-testing hook: the job panics inside the worker and
//! the server's `catch_unwind` isolation must turn it into a typed 500.
//!
//! The decoder is strict: unknown fields, wrong types, fractional
//! seeds, and out-of-range synthetic dials are all typed [`JobError`]s
//! — the panicking constructors downstream (`Synthetic::new`,
//! [`MbuDistribution::new`]) are only ever called on values this module
//! has already validated, so a malformed request can never take a
//! worker thread down.
//!
//! [`render_report`] is the other half of the determinism contract:
//! fields render in one fixed order, floats via Rust's
//! shortest-roundtrip formatting, so the same spec and seed produce
//! byte-identical response bodies everywhere — in-process or served,
//! at any worker-pool size.

use std::fmt;

use ftspm_core::{OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::MbuDistribution;
use ftspm_harness::{
    FaultOptionsError, LiveFaultOptions, MultiRunMetrics, RunBuilder, RunError, RunMetrics,
    StructureKind,
};
use ftspm_obs::{MetricsRegistry, Recorder};
use ftspm_sim::MAX_CORES;
use ftspm_trace::{NoTraces, SourceError, TraceId, TraceResolver, WorkloadSource};
use ftspm_workloads::{find_multicore, multicore_names, SyntheticConfig};

use crate::json::{self, Json, JsonError};

/// Cap on synthetic `accesses` — a request must not be able to order an
/// unbounded amount of simulation.
pub const MAX_SYNTHETIC_ACCESSES: u32 = 10_000_000;
/// Cap on synthetic `buffer_words` (per buffer; two are allocated).
pub const MAX_SYNTHETIC_BUFFER_WORDS: u32 = 1 << 20;

/// The thin parse layer between a job's `workload` JSON and the
/// [`WorkloadSource`] it names. All validation that the wire format
/// owns — field strictness, dial ranges, id syntax — happens here; what
/// a source *means* (registry lookup, trace resolution, building) lives
/// in [`WorkloadSource`] itself.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec;

/// A fully validated evaluation job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload to run.
    pub workload: WorkloadSource,
    /// The structure to run it on.
    pub structure: StructureKind,
    /// The MDA optimisation target.
    pub optimize: OptimizeFor,
    /// Live fault injection, if requested.
    pub faults: Option<LiveFaultOptions>,
    /// Attach a metrics registry and echo its CSV in the report.
    pub metrics: bool,
    /// Cycle budget for the run; [`JobSpec::run`] returns
    /// [`RunError::DeadlineExceeded`] (the server's 504) when exhausted.
    pub deadline_cycles: Option<u64>,
    /// Chaos-testing hook: panic inside [`JobSpec::run`] instead of
    /// running anything. The soak battery uses this to prove a worker
    /// panic becomes a typed 500 and nothing else.
    pub chaos_panic: bool,
    /// Core count for a multi-core job (`Some(n)` only for `n >= 2`; a
    /// body's `"cores": 1` is normalised away at decode because a
    /// 1-core machine is observably byte-identical to the plain one —
    /// the multicore differential battery pins that collapse).
    pub cores: Option<usize>,
}

/// Why a job body failed to decode. Shape errors map to HTTP 400;
/// [`JobError::Workload`] is the semantic rejection — a well-formed
/// body naming a workload the service does not have — and maps to 422.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The body is not a JSON document.
    Json(JsonError),
    /// The document decoded but a field is missing, unknown, of the
    /// wrong type, or out of range; the message names it.
    Spec(String),
    /// The fault options decoded but failed harness validation.
    Faults(FaultOptionsError),
    /// The workload reference is well-formed but names nothing the
    /// service can build — an unknown kernel name (the message lists
    /// the valid ones) or an unknown trace id.
    Workload(SourceError),
    /// A well-formed multi-core job the service cannot satisfy: an
    /// unknown multi-core kernel, or a core count below the kernel's
    /// minimum. Semantic, like [`JobError::Workload`] — maps to 422.
    Multicore(String),
}

impl JobError {
    /// The HTTP status this error answers with: 422 for a semantic
    /// workload rejection, 400 for every shape error.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            Self::Workload(_) | Self::Multicore(_) => 422,
            Self::Json(_) | Self::Spec(_) | Self::Faults(_) => 400,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "invalid JSON: {e}"),
            Self::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            Self::Faults(e) => write!(f, "invalid fault options: {e}"),
            Self::Workload(e) => write!(f, "invalid job spec: {e}"),
            Self::Multicore(msg) => write!(f, "invalid job spec: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<JsonError> for JobError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<FaultOptionsError> for JobError {
    fn from(e: FaultOptionsError) -> Self {
        Self::Faults(e)
    }
}

fn spec_err(msg: impl Into<String>) -> JobError {
    JobError::Spec(msg.into())
}

fn u64_field(obj: &Json, field: &str) -> Result<Option<u64>, JobError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("`{field}` must be an unsigned integer"))),
    }
}

fn f64_field(obj: &Json, field: &str) -> Result<Option<f64>, JobError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("`{field}` must be a number"))),
    }
}

fn u32_field(obj: &Json, field: &str) -> Result<Option<u32>, JobError> {
    match u64_field(obj, field)? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| spec_err(format!("`{field}` exceeds u32 range"))),
    }
}

fn reject_unknown_fields(obj: &Json, known: &[&str], context: &str) -> Result<(), JobError> {
    for (key, _) in obj.as_obj().unwrap_or(&[]) {
        if !known.contains(&key.as_str()) {
            return Err(spec_err(format!("unknown {context} field `{key}`")));
        }
    }
    Ok(())
}

impl WorkloadSpec {
    /// Decodes a job's `workload` JSON into the source it names.
    ///
    /// # Errors
    ///
    /// [`JobError::Spec`] for shape problems (unknown fields, wrong
    /// types, out-of-range dials, malformed trace ids) and
    /// [`JobError::Workload`] — the 422 — for an unknown kernel name.
    pub fn from_json(v: &Json) -> Result<WorkloadSource, JobError> {
        match v {
            Json::Str(name) => Self::named(name, None),
            Json::Obj(_) => {
                if let Some(synth) = v.get("synthetic") {
                    reject_unknown_fields(v, &["synthetic"], "workload")?;
                    return Self::synthetic(synth);
                }
                if let Some(id) = v.get("trace") {
                    reject_unknown_fields(v, &["trace"], "workload")?;
                    return Ok(WorkloadSource::Trace(Self::trace_id(id, "trace")?));
                }
                if let Some(id) = v.get("fit") {
                    reject_unknown_fields(v, &["fit"], "workload")?;
                    return Ok(WorkloadSource::Fitted(Self::trace_id(id, "fit")?));
                }
                reject_unknown_fields(v, &["name", "seed"], "workload")?;
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| spec_err("workload object needs a string `name`"))?;
                Self::named(name, u64_field(v, "seed")?)
            }
            _ => Err(spec_err(
                "`workload` must be a kernel name, {\"name\", \"seed\"}, {\"synthetic\": ...}, \
                 {\"trace\": \"<id>\"}, or {\"fit\": \"<id>\"}",
            )),
        }
    }

    fn named(name: &str, seed: Option<u64>) -> Result<WorkloadSource, JobError> {
        let source = WorkloadSource::named(name, seed);
        match source.validate() {
            Ok(()) => Ok(source),
            // The seedless-with-seed case is a shape error (the body
            // asked for a contradiction) and keeps its historical 400.
            Err(e @ SourceError::SeededSeedless { .. }) => Err(spec_err(e.to_string())),
            Err(e) => Err(JobError::Workload(e)),
        }
    }

    fn trace_id(v: &Json, field: &str) -> Result<TraceId, JobError> {
        v.as_str()
            .and_then(TraceId::parse)
            .ok_or_else(|| spec_err(format!("`{field}` must be a 32-hex-digit trace id")))
    }

    fn synthetic(v: &Json) -> Result<WorkloadSource, JobError> {
        if v.as_obj().is_none() {
            return Err(spec_err("`synthetic` must be an object"));
        }
        reject_unknown_fields(
            v,
            &[
                "write_fraction",
                "buffer_words",
                "accesses",
                "run_length",
                "seed",
            ],
            "synthetic",
        )?;
        let defaults = SyntheticConfig::default();
        let write_fraction = f64_field(v, "write_fraction")?.unwrap_or(defaults.write_fraction);
        if !write_fraction.is_finite() || !(0.0..=1.0).contains(&write_fraction) {
            return Err(spec_err("`write_fraction` must be in [0, 1]"));
        }
        let buffer_words = u32_field(v, "buffer_words")?.unwrap_or(defaults.buffer_words);
        if buffer_words == 0 || buffer_words > MAX_SYNTHETIC_BUFFER_WORDS {
            return Err(spec_err(format!(
                "`buffer_words` must be in 1..={MAX_SYNTHETIC_BUFFER_WORDS}"
            )));
        }
        let accesses = u32_field(v, "accesses")?.unwrap_or(defaults.accesses);
        if accesses == 0 || accesses > MAX_SYNTHETIC_ACCESSES {
            return Err(spec_err(format!(
                "`accesses` must be in 1..={MAX_SYNTHETIC_ACCESSES}"
            )));
        }
        let run_length = u32_field(v, "run_length")?.unwrap_or(defaults.run_length);
        if run_length == 0 {
            return Err(spec_err("`run_length` must be >= 1"));
        }
        let seed = u64_field(v, "seed")?.unwrap_or(defaults.seed);
        Ok(WorkloadSource::Synthetic(SyntheticConfig {
            write_fraction,
            buffer_words,
            accesses,
            run_length,
            seed,
        }))
    }
}

fn decode_structure(v: Option<&Json>) -> Result<StructureKind, JobError> {
    match v {
        None | Some(Json::Null) => Ok(StructureKind::Ftspm),
        Some(v) => match v.as_str() {
            Some("ftspm") => Ok(StructureKind::Ftspm),
            Some("pure_sram") => Ok(StructureKind::PureSram),
            Some("pure_stt") => Ok(StructureKind::PureStt),
            _ => Err(spec_err(
                "`structure` must be \"ftspm\", \"pure_sram\", or \"pure_stt\"",
            )),
        },
    }
}

fn decode_optimize(v: Option<&Json>) -> Result<OptimizeFor, JobError> {
    match v {
        None | Some(Json::Null) => Ok(OptimizeFor::Reliability),
        Some(v) => match v.as_str() {
            Some("reliability") => Ok(OptimizeFor::Reliability),
            Some("performance") => Ok(OptimizeFor::Performance),
            Some("power") => Ok(OptimizeFor::Power),
            Some("endurance") => Ok(OptimizeFor::Endurance),
            _ => Err(spec_err(
                "`optimize` must be \"reliability\", \"performance\", \"power\", or \"endurance\"",
            )),
        },
    }
}

fn decode_role(v: &Json) -> Result<RegionRole, JobError> {
    match v.as_str() {
        Some("instruction") => Ok(RegionRole::Instruction),
        Some("data_stt") => Ok(RegionRole::DataStt),
        Some("data_ecc") => Ok(RegionRole::DataEcc),
        Some("data_parity") => Ok(RegionRole::DataParity),
        _ => Err(spec_err(
            "`restrict_to` entries must be \"instruction\", \"data_stt\", \"data_ecc\", or \"data_parity\"",
        )),
    }
}

fn decode_faults(v: &Json) -> Result<LiveFaultOptions, JobError> {
    if v.as_obj().is_none() {
        return Err(spec_err("`faults` must be an object"));
    }
    reject_unknown_fields(
        v,
        &[
            "seed",
            "mean_cycles_between_strikes",
            "scrub_interval",
            "due_retry_limit",
            "quarantine_due_threshold",
            "line_write_budget",
            "restrict_to",
            "mbu",
            "reference_path",
        ],
        "faults",
    )?;
    let seed = u64_field(v, "seed")?.ok_or_else(|| spec_err("`faults.seed` is required"))?;
    let mean = f64_field(v, "mean_cycles_between_strikes")?
        .ok_or_else(|| spec_err("`faults.mean_cycles_between_strikes` is required"))?;
    let mut b = LiveFaultOptions::builder(seed, mean);
    if let Some(interval) = u64_field(v, "scrub_interval")? {
        b = b.scrub_interval(interval);
    }
    if let Some(limit) = u32_field(v, "due_retry_limit")? {
        b = b.due_retry_limit(limit);
    }
    if let Some(threshold) = u32_field(v, "quarantine_due_threshold")? {
        b = b.quarantine_due_threshold(threshold);
    }
    if let Some(budget) = u64_field(v, "line_write_budget")? {
        b = b.line_write_budget(budget);
    }
    match v.get("restrict_to") {
        None | Some(Json::Null) => {}
        Some(roles) => {
            let roles = roles
                .as_arr()
                .ok_or_else(|| spec_err("`restrict_to` must be an array of role names"))?;
            if roles.is_empty() {
                return Err(spec_err(
                    "`restrict_to` must not be empty (omit it for all)",
                ));
            }
            b = b.restrict_to(roles.iter().map(decode_role).collect::<Result<_, _>>()?);
        }
    }
    match v.get("reference_path") {
        None | Some(Json::Null) => {}
        Some(r) => {
            let reference = r
                .as_bool()
                .ok_or_else(|| spec_err("`reference_path` must be a boolean"))?;
            b = b.reference_path(reference);
        }
    }
    match v.get("mbu") {
        None | Some(Json::Null) => {}
        Some(mbu) => {
            let ps = mbu
                .as_arr()
                .filter(|a| a.len() == 4)
                .and_then(|a| a.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>())
                .ok_or_else(|| spec_err("`mbu` must be an array of 4 probabilities"))?;
            // Validate here — MbuDistribution::new panics on bad input.
            if ps.iter().any(|p| !p.is_finite() || *p < 0.0)
                || (ps.iter().sum::<f64>() - 1.0).abs() >= 1e-9
            {
                return Err(spec_err("`mbu` probabilities must be >= 0 and sum to 1"));
            }
            b = b.mbu(MbuDistribution::new(ps[0], ps[1], ps[2], ps[3]));
        }
    }
    Ok(b.build()?)
}

impl JobSpec {
    /// Decodes one job from raw body bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError`] for malformed JSON or an invalid spec.
    pub fn parse(body: &[u8]) -> Result<Self, JobError> {
        Self::from_json(&json::parse(body)?)
    }

    /// Decodes one job from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError`] for anything but a complete, in-range
    /// spec: unknown fields, missing workload, wrong types, out-of-range
    /// dials, invalid fault options.
    pub fn from_json(v: &Json) -> Result<Self, JobError> {
        if v.as_obj().is_none() {
            return Err(spec_err("job must be a JSON object"));
        }
        reject_unknown_fields(
            v,
            &[
                "workload",
                "structure",
                "optimize",
                "faults",
                "metrics",
                "deadline_cycles",
                "chaos_panic",
                "cores",
            ],
            "job",
        )?;
        let cores = match u64_field(v, "cores")? {
            None => None,
            Some(n) => {
                if !(1..=MAX_CORES as u64).contains(&n) {
                    return Err(spec_err(format!("`cores` must be in 1..={MAX_CORES}")));
                }
                // 1 collapses to the plain single-core path: a 1-core
                // machine is byte-identical to it (pinned by the
                // multicore differential battery), so the two spellings
                // share one canonical address and one code path.
                (n >= 2).then_some(n as usize)
            }
        };
        let workload_json = v
            .get("workload")
            .ok_or_else(|| spec_err("`workload` is required"))?;
        let workload = match cores {
            None => WorkloadSpec::from_json(workload_json)?,
            Some(n) => Self::multicore_workload(workload_json, n)?,
        };
        let structure = decode_structure(v.get("structure"))?;
        let optimize = decode_optimize(v.get("optimize"))?;
        let faults = match v.get("faults") {
            None | Some(Json::Null) => None,
            Some(f) => Some(decode_faults(f)?),
        };
        let metrics = match v.get("metrics") {
            None | Some(Json::Null) => false,
            Some(m) => m
                .as_bool()
                .ok_or_else(|| spec_err("`metrics` must be a boolean"))?,
        };
        let deadline_cycles = match u64_field(v, "deadline_cycles")? {
            Some(0) => return Err(spec_err("`deadline_cycles` must be >= 1 (omit for none)")),
            other => other,
        };
        let chaos_panic = match v.get("chaos_panic") {
            None | Some(Json::Null) => false,
            Some(c) => c
                .as_bool()
                .ok_or_else(|| spec_err("`chaos_panic` must be a boolean"))?,
        };
        Ok(Self {
            workload,
            structure,
            optimize,
            faults,
            metrics,
            deadline_cycles,
            chaos_panic,
            cores,
        })
    }

    /// Decodes the `workload` of a multi-core job (`cores >= 2`): a
    /// kernel name — bare string or `{"name", "seed"}` — resolved in
    /// the *multicore* registry. Synthetics and traces have no
    /// multi-core form, so anything else is a shape error.
    fn multicore_workload(v: &Json, cores: usize) -> Result<WorkloadSource, JobError> {
        let (name, seed) =
            match v {
                Json::Str(name) => (name.as_str(), None),
                Json::Obj(_) => {
                    reject_unknown_fields(v, &["name", "seed"], "workload")?;
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| spec_err("workload object needs a string `name`"))?;
                    (name, u64_field(v, "seed")?)
                }
                _ => return Err(spec_err(
                    "a multi-core job's `workload` must be a kernel name or {\"name\", \"seed\"}",
                )),
            };
        let Some(entry) = find_multicore(name) else {
            let mut msg = format!("unknown multi-core kernel `{name}`; valid names: ");
            for (i, n) in multicore_names().iter().enumerate() {
                if i > 0 {
                    msg.push_str(", ");
                }
                msg.push_str(n);
            }
            return Err(JobError::Multicore(msg));
        };
        if cores < entry.min_cores() {
            return Err(JobError::Multicore(format!(
                "`{name}` needs at least {} cores, got {cores}",
                entry.min_cores()
            )));
        }
        Ok(WorkloadSource::named(name, seed))
    }

    /// Renders the decoded spec as a total, fixed-order canonical
    /// string — the result cache's content address and the job API's
    /// identity.
    ///
    /// Canonicalisation happens on the *decoded* spec, not the raw
    /// body: whitespace, JSON field order, and defaulted fields all
    /// collapse, so `{"workload":"crc32"}` and
    /// `{"workload":{"name":"crc32","seed":49859}}` address the same
    /// cache line. Every dial that [`JobSpec::run`] reads is rendered
    /// (floats via `{:?}`, options as `-` when absent), so two specs
    /// with equal canonical strings provably produce byte-identical
    /// responses under the determinism contract.
    #[must_use]
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(192);
        // The workload fragment is rendered by the source itself and is
        // byte-compatible with the historical two-variant rendering
        // (pinned by `tests/spec_goldens.rs`), so pre-redesign cache
        // addresses and job ids survive unchanged. Multi-core jobs
        // resolve their default seed in the multicore registry instead
        // (an omitted seed and the written-out default must share one
        // cache line there too).
        match self.cores {
            None => s.push_str(&self.workload.canonical_fragment()),
            Some(_) => {
                let WorkloadSource::Named { name, seed } = &self.workload else {
                    unreachable!("multi-core workloads are named (validated at decode)");
                };
                let seed =
                    seed.unwrap_or_else(|| find_multicore(name).expect("validated").default_seed());
                let _ = write!(s, "w=named:{name}:{seed}");
            }
        }
        let _ = write!(
            s,
            ";s={};o={:?}",
            structure_token(self.structure),
            self.optimize
        );
        match &self.faults {
            None => s.push_str(";f=-"),
            Some(f) => {
                let _ = write!(
                    s,
                    ";f={}:{:?}:{}:{}:{}:{}",
                    f.seed,
                    f.mean_cycles_between_strikes,
                    opt(f.scrub_interval),
                    f.due_retry_limit,
                    f.quarantine_due_threshold,
                    opt(f.line_write_budget),
                );
                match &f.restrict_to {
                    None => s.push_str(":-"),
                    Some(roles) => {
                        s.push(':');
                        for (i, role) in roles.iter().enumerate() {
                            if i > 0 {
                                s.push('+');
                            }
                            s.push_str(role_token(*role));
                        }
                    }
                }
                let _ = write!(
                    s,
                    ":{:?}+{:?}+{:?}+{:?}:{}",
                    f.mbu.p1(),
                    f.mbu.p2(),
                    f.mbu.p3(),
                    f.mbu.p4_plus(),
                    f.reference_path,
                );
            }
        }
        let _ = write!(
            s,
            ";m={};d={};c={}",
            self.metrics,
            opt(self.deadline_cycles),
            self.chaos_panic
        );
        // Appended only for true multi-core jobs: absent and `"cores": 1`
        // must collapse onto the historical single-core address.
        if let Some(cores) = self.cores {
            let _ = write!(s, ";n={cores}");
        }
        s
    }

    /// Whether this job's result may be served from the cache.
    /// `chaos_panic` jobs exist to *exercise* the worker path — caching
    /// them would defeat the chaos battery's exactly-once accounting —
    /// and panics never produce a result to cache anyway.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        !self.chaos_panic
    }

    /// Runs the job through the harness and renders its report,
    /// resolving any trace-backed workload with [`NoTraces`] — the
    /// entry point for trace-less specs (kernels and synthetics).
    ///
    /// # Errors
    ///
    /// [`RunError::DeadlineExceeded`] when the spec's `deadline_cycles`
    /// budget runs out; the server renders it as a 504.
    ///
    /// # Panics
    ///
    /// Panics when the spec set `chaos_panic` (the documented chaos
    /// hook; the server's `catch_unwind` isolation turns it into a
    /// 500), or when the spec names a trace — those need
    /// [`JobSpec::run_with`] and a real resolver.
    pub fn run(&self) -> Result<JobOutput, RunError> {
        match self.run_with(&NoTraces) {
            Ok(output) => Ok(output),
            Err(JobRunError::Run(e)) => Err(e),
            Err(JobRunError::Source(e)) => {
                panic!("trace-backed specs need JobSpec::run_with and a resolver: {e}")
            }
        }
    }

    /// Runs the job through the harness and renders its report,
    /// resolving trace-backed workloads through `traces`.
    ///
    /// This is the same call path whether the job arrived over HTTP or
    /// was constructed in-process — which is exactly what the
    /// differential tests pin.
    ///
    /// # Errors
    ///
    /// [`JobRunError::Source`] when the workload cannot be built (an
    /// unknown trace id above all — the server's 422), and
    /// [`JobRunError::Run`] for [`RunError::DeadlineExceeded`] (the
    /// server's 504).
    ///
    /// # Panics
    ///
    /// Panics when the spec set `chaos_panic` — the documented chaos
    /// hook; the server's `catch_unwind` isolation turns it into a 500.
    pub fn run_with(&self, traces: &dyn TraceResolver) -> Result<JobOutput, JobRunError> {
        assert!(
            !self.chaos_panic,
            "chaos_panic: injected worker panic (test hook)"
        );
        if let Some(cores) = self.cores {
            return self.run_multi(cores);
        }
        let workload = self.workload.build(traces)?;
        let structure = match self.structure {
            StructureKind::Ftspm => SpmStructure::ftspm(),
            StructureKind::PureSram => SpmStructure::pure_sram(),
            StructureKind::PureStt => SpmStructure::pure_stt(),
        };
        let mut builder = RunBuilder::new()
            .workload_boxed(workload)
            .structure(&structure, self.structure)
            .optimize(self.optimize);
        if let Some(faults) = &self.faults {
            builder = builder.faults(faults.clone());
        }
        if let Some(deadline) = self.deadline_cycles {
            builder = builder.deadline_cycles(deadline);
        }
        if self.metrics {
            let mut recorder = Recorder::recovery_only(256);
            let metrics = builder.recorder(&mut recorder).try_run()?;
            let (registry, _trace) = recorder.into_parts();
            Ok(JobOutput {
                body: render_report(&metrics, Some(&registry.to_csv())),
                registry: Some(registry),
            })
        } else {
            let metrics = builder.try_run()?;
            Ok(JobOutput {
                body: render_report(&metrics, None),
                registry: None,
            })
        }
    }

    /// The `cores >= 2` run path: builds the multicore kernel at the
    /// job's core count and drives the lockstep pipeline. Same report
    /// contract, plus a `multicore` section.
    fn run_multi(&self, cores: usize) -> Result<JobOutput, JobRunError> {
        let WorkloadSource::Named { name, seed } = &self.workload else {
            unreachable!("multi-core workloads are named (validated at decode)");
        };
        let entry = find_multicore(name).expect("validated at decode");
        let mut workload = entry.build(cores, *seed);
        let structure = match self.structure {
            StructureKind::Ftspm => SpmStructure::ftspm(),
            StructureKind::PureSram => SpmStructure::pure_sram(),
            StructureKind::PureStt => SpmStructure::pure_stt(),
        };
        let mut builder = RunBuilder::new()
            .workload_multi(workload.as_mut())
            .cores(cores)
            .structure(&structure, self.structure)
            .optimize(self.optimize);
        if let Some(faults) = &self.faults {
            builder = builder.faults(faults.clone());
        }
        if let Some(deadline) = self.deadline_cycles {
            builder = builder.deadline_cycles(deadline);
        }
        if self.metrics {
            let mut recorder = Recorder::recovery_only(256);
            let metrics = builder.recorder(&mut recorder).try_run_multi()?;
            let (registry, _trace) = recorder.into_parts();
            Ok(JobOutput {
                body: render_multi_report(&metrics, Some(&registry.to_csv())),
                registry: Some(registry),
            })
        } else {
            let metrics = builder.try_run_multi()?;
            Ok(JobOutput {
                body: render_multi_report(&metrics, None),
                registry: None,
            })
        }
    }
}

/// Why [`JobSpec::run_with`] failed: the workload could not be built,
/// or the run itself was cancelled.
#[derive(Debug)]
pub enum JobRunError {
    /// The workload source did not resolve — an unknown trace id (the
    /// trace was never uploaded, or was evicted); the server's 422.
    Source(SourceError),
    /// The harness cancelled the run ([`RunError::DeadlineExceeded`];
    /// the server's 504).
    Run(RunError),
}

impl fmt::Display for JobRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Source(e) => write!(f, "cannot build workload: {e}"),
            Self::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JobRunError {}

impl From<SourceError> for JobRunError {
    fn from(e: SourceError) -> Self {
        Self::Source(e)
    }
}

impl From<RunError> for JobRunError {
    fn from(e: RunError) -> Self {
        Self::Run(e)
    }
}

/// What running a job produces: the response body, plus the job's
/// metrics registry when one was attached (the server folds these into
/// its `/metrics` totals).
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The rendered JSON report — the exact `/v1/run` response body.
    pub body: String,
    /// The job's registry when the spec set `"metrics": true`.
    pub registry: Option<MetricsRegistry>,
}

/// The wire token for a structure kind (also accepted by the decoder).
pub fn structure_token(kind: StructureKind) -> &'static str {
    match kind {
        StructureKind::Ftspm => "ftspm",
        StructureKind::PureSram => "pure_sram",
        StructureKind::PureStt => "pure_stt",
    }
}

/// The wire token for a region role (inverse of the decoder's table).
fn role_token(role: RegionRole) -> &'static str {
    match role {
        RegionRole::Instruction => "instruction",
        RegionRole::DataStt => "data_stt",
        RegionRole::DataEcc => "data_ecc",
        RegionRole::DataParity => "data_parity",
    }
}

/// Renders an optional integer for [`JobSpec::canonical`]: the value,
/// or `-` when absent (no integer renders as `-`, so the two cases
/// cannot collide).
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Formats an `f64` deterministically as valid JSON (Rust's
/// shortest-roundtrip `{:?}`; the simulator never produces NaN or
/// infinities in report fields).
fn num(f: f64) -> String {
    debug_assert!(f.is_finite(), "report fields are finite");
    format!("{f:?}")
}

/// Renders a run report as JSON with a fixed field order.
///
/// This function is the response-body half of the determinism contract:
/// no maps, no locale, no clocks — two calls with equal inputs yield
/// equal bytes.
pub fn render_report(m: &RunMetrics, metrics_csv: Option<&str>) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"workload\":{},\"structure\":\"{}\",\"cycles\":{},\"instructions\":{},\
         \"spm_dynamic_pj\":{},\"spm_static_pj\":{},\"spm_leakage_mw\":{},\
         \"vulnerability\":{},\"reliability\":{},\"stt_max_line_writes\":{},\
         \"stt_total_writes\":{},\"stt_lines\":{},\"spm_accesses\":{},\"checksum_ok\":{}",
        json::escape(&m.workload),
        structure_token(m.structure),
        m.cycles,
        m.instructions,
        num(m.spm_dynamic_pj),
        num(m.spm_static_pj),
        num(m.spm_leakage_mw),
        num(m.vulnerability),
        num(m.reliability),
        m.stt_max_line_writes,
        m.stt_total_writes,
        m.stt_lines,
        m.spm_accesses(),
        m.checksum_ok,
    );
    s.push_str(",\"traffic\":[");
    for (i, t) in m.traffic.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"region\":{},\"reads\":{},\"writes\":{}}}",
            json::escape(&t.region),
            t.reads,
            t.writes
        );
    }
    s.push(']');
    match &m.recovery {
        None => s.push_str(",\"recovery\":null"),
        Some(r) => {
            let _ = write!(
                s,
                ",\"recovery\":{{\"strikes\":{},\"masked\":{},\"corrections\":{},\
                 \"due_traps\":{},\"due_retries\":{},\"sdc_escapes\":{},\"scrub_passes\":{},\
                 \"scrub_corrections\":{},\"quarantined_lines\":{},\"remapped_blocks\":{},\
                 \"recovery_cycles\":{}}}",
                r.strikes,
                r.masked,
                r.corrections,
                r.due_traps,
                r.due_retries,
                r.sdc_escapes,
                r.scrub_passes,
                r.scrub_corrections,
                r.quarantined_lines,
                r.remapped_blocks,
                r.recovery_cycles,
            );
        }
    }
    if let Some(csv) = metrics_csv {
        let _ = write!(s, ",\"metrics_csv\":{}", json::escape(csv));
    }
    s.push('}');
    s
}

/// Renders a multi-core run report: the single-core report fields (from
/// the embedded [`RunMetrics`]) plus a `multicore` section — core
/// count, bus-level coherence counters, per-core fault views, and each
/// block's sharer count. Deterministic like [`render_report`].
pub fn render_multi_report(m: &MultiRunMetrics, metrics_csv: Option<&str>) -> String {
    use std::fmt::Write as _;
    let mut s = render_report(&m.base, metrics_csv);
    s.pop();
    let c = &m.coherence;
    let _ = write!(
        s,
        ",\"multicore\":{{\"cores\":{},\"coherence\":{{\"invalidations\":{},\
         \"dirty_flushes\":{},\"downgrades\":{},\"shared_fills\":{},\"upgrades\":{},\
         \"remap_invalidations\":{},\"shared_block_faults\":{},\
         \"cross_core_observations\":{}}}",
        m.cores,
        c.invalidations,
        c.dirty_flushes,
        c.downgrades,
        c.shared_fills,
        c.upgrades,
        c.remap_invalidations,
        c.shared_block_faults,
        c.cross_core_observations,
    );
    s.push_str(",\"per_core\":[");
    for (i, v) in m.per_core.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"corrections\":{},\"due_traps\":{},\"sdc_escapes\":{},\"shared_exposures\":{}}}",
            v.corrections, v.due_traps, v.sdc_escapes, v.shared_exposures
        );
    }
    s.push_str("],\"sharer_counts\":[");
    for (i, n) in m.sharer_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{n}");
    }
    s.push_str("]}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_minimal_named_job_decodes_with_defaults() {
        let job = JobSpec::parse(br#"{"workload": "crc32"}"#).expect("minimal job");
        assert_eq!(
            job.workload,
            WorkloadSource::Named {
                name: "crc32".to_string(),
                seed: None
            }
        );
        assert_eq!(job.structure, StructureKind::Ftspm);
        assert_eq!(job.optimize, OptimizeFor::Reliability);
        assert!(job.faults.is_none());
        assert!(!job.metrics);
    }

    #[test]
    fn a_full_job_decodes() {
        let job = JobSpec::parse(
            br#"{"workload": {"name": "qsort", "seed": 99},
                 "structure": "pure_sram", "optimize": "endurance",
                 "faults": {"seed": 7, "mean_cycles_between_strikes": 5000.0,
                            "scrub_interval": 10000, "due_retry_limit": 2,
                            "quarantine_due_threshold": 4, "line_write_budget": 1000,
                            "restrict_to": ["data_ecc", "data_parity"],
                            "mbu": [0.7, 0.2, 0.05, 0.05]},
                 "metrics": true}"#,
        )
        .expect("full job");
        assert_eq!(job.structure, StructureKind::PureSram);
        assert_eq!(job.optimize, OptimizeFor::Endurance);
        let faults = job.faults.expect("faults decoded");
        assert_eq!(faults.seed, 7);
        assert_eq!(faults.scrub_interval, Some(10_000));
        assert_eq!(faults.due_retry_limit, 2);
        assert_eq!(faults.line_write_budget, Some(1000));
        assert_eq!(
            faults.restrict_to,
            Some(vec![RegionRole::DataEcc, RegionRole::DataParity])
        );
        assert!(job.metrics);
    }

    #[test]
    fn synthetic_jobs_decode_and_out_of_range_dials_are_rejected() {
        let job = JobSpec::parse(
            br#"{"workload": {"synthetic": {"write_fraction": 0.5, "buffer_words": 64,
                                            "accesses": 1000, "run_length": 4, "seed": 3}}}"#,
        )
        .expect("synthetic job");
        match job.workload {
            WorkloadSource::Synthetic(c) => {
                assert_eq!(c.buffer_words, 64);
                assert_eq!(c.accesses, 1000);
            }
            other => panic!("expected synthetic, got {other:?}"),
        }
        for bad in [
            r#"{"workload": {"synthetic": {"write_fraction": 1.5}}}"#,
            r#"{"workload": {"synthetic": {"write_fraction": -0.1}}}"#,
            r#"{"workload": {"synthetic": {"buffer_words": 0}}}"#,
            r#"{"workload": {"synthetic": {"accesses": 99999999}}}"#,
            r#"{"workload": {"synthetic": {"run_length": 0}}}"#,
        ] {
            assert!(
                matches!(JobSpec::parse(bad.as_bytes()), Err(JobError::Spec(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn strictness_unknown_fields_and_bad_values_are_typed_errors() {
        for bad in [
            r#"{}"#,
            r#"{"workload": "crc32", "surprise": 1}"#,
            r#"{"workload": {"name": "crc32", "seed": 1.5}}"#,
            r#"{"workload": {"name": "crc32", "seed": -1}}"#,
            r#"{"workload": "crc32", "structure": "dram"}"#,
            r#"{"workload": "crc32", "optimize": "speed"}"#,
            r#"{"workload": "crc32", "metrics": 1}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "mbu": [0.5, 0.5, 0.5, 0.5]}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "restrict_to": []}}"#,
            r#"["not", "an", "object"]"#,
        ] {
            assert!(
                matches!(JobSpec::parse(bad.as_bytes()), Err(JobError::Spec(_))),
                "should reject: {bad}"
            );
        }
        // An unknown kernel name is the workload-level 422 (it lists
        // the valid names), not a generic spec 400.
        let unknown = JobSpec::parse(br#"{"workload": "no_such_kernel"}"#).expect_err("rejects");
        assert!(matches!(unknown, JobError::Workload(_)), "{unknown:?}");
        assert_eq!(unknown.status(), 422);
        assert!(
            unknown.to_string().contains("crc32"),
            "lists valid names: {unknown}"
        );
        // A malformed trace id is a spec 400; a well-formed id for a
        // trace nobody uploaded decodes fine (resolution is deferred).
        assert!(matches!(
            JobSpec::parse(br#"{"workload": {"trace": "not-hex"}}"#),
            Err(JobError::Spec(_))
        ));
        let id = "00112233445566778899aabbccddeeff";
        let spec = JobSpec::parse(format!(r#"{{"workload": {{"fit": "{id}"}}}}"#).as_bytes())
            .expect("fit spec decodes");
        assert!(matches!(spec.workload, WorkloadSource::Fitted(_)));
        // A case_study seed is rejected; a valid name + seed works.
        assert!(JobSpec::parse(br#"{"workload": {"name": "case_study", "seed": 1}}"#).is_err());
        // Builder-level validation surfaces as Faults.
        assert!(matches!(
            JobSpec::parse(
                br#"{"workload": "crc32",
                     "faults": {"seed": 1, "mean_cycles_between_strikes": 0.5}}"#
            ),
            Err(JobError::Faults(FaultOptionsError::InvalidStrikeMean))
        ));
    }

    #[test]
    fn reports_render_deterministically_and_reparse() {
        let job = JobSpec::parse(
            br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 400,
                                            "run_length": 4, "seed": 11}},
                 "faults": {"seed": 5, "mean_cycles_between_strikes": 2000.0}}"#,
        )
        .expect("job");
        let a = job.run().expect("run");
        let b = job.run().expect("run");
        assert_eq!(a.body, b.body, "equal specs must render equal bytes");
        let parsed = json::parse(a.body.as_bytes()).expect("report is valid JSON");
        assert_eq!(
            parsed.get("workload").and_then(Json::as_str),
            Some("synthetic")
        );
        assert_eq!(
            parsed.get("structure").and_then(Json::as_str),
            Some("ftspm")
        );
        assert!(parsed.get("recovery").is_some_and(|r| r.as_obj().is_some()));
        assert!(parsed.get("metrics_csv").is_none());
    }

    #[test]
    fn deadline_and_chaos_fields_decode_and_validate() {
        let job = JobSpec::parse(
            br#"{"workload": "crc32", "deadline_cycles": 5000, "chaos_panic": false}"#,
        )
        .expect("job");
        assert_eq!(job.deadline_cycles, Some(5000));
        assert!(!job.chaos_panic);
        for bad in [
            r#"{"workload": "crc32", "deadline_cycles": 0}"#,
            r#"{"workload": "crc32", "deadline_cycles": -3}"#,
            r#"{"workload": "crc32", "deadline_cycles": 1.5}"#,
            r#"{"workload": "crc32", "chaos_panic": "yes"}"#,
        ] {
            assert!(
                matches!(JobSpec::parse(bad.as_bytes()), Err(JobError::Spec(_))),
                "should reject: {bad}"
            );
        }
        // A tiny budget cancels a real run with a typed error, and the
        // cut lands at the same cycle every time.
        let job = JobSpec::parse(br#"{"workload": "crc32", "deadline_cycles": 10}"#).expect("job");
        let a = job.run().expect_err("budget too small");
        let b = job.run().expect_err("budget too small");
        assert_eq!(a, b, "deadline cut is deterministic");
        assert!(matches!(
            a,
            RunError::DeadlineExceeded {
                deadline_cycles: 10,
                ..
            }
        ));
    }

    #[test]
    fn canonical_collapses_equivalent_bodies_and_separates_different_ones() {
        // Omitted seed vs. the suite default written out, different
        // whitespace/field order: one cache line.
        let implicit = JobSpec::parse(br#"{"workload": "crc32"}"#).expect("job");
        let explicit =
            JobSpec::parse(br#"{ "workload" : {"seed": 50115, "name": "crc32"} }"#).expect("job");
        assert_eq!(implicit.canonical(), explicit.canonical());
        // Any dial the run reads must separate keys.
        for other in [
            r#"{"workload": {"name": "crc32", "seed": 50116}}"#,
            r#"{"workload": "sha"}"#,
            r#"{"workload": "crc32", "structure": "pure_sram"}"#,
            r#"{"workload": "crc32", "optimize": "power"}"#,
            r#"{"workload": "crc32", "metrics": true}"#,
            r#"{"workload": "crc32", "deadline_cycles": 5000}"#,
            r#"{"workload": "crc32",
                "faults": {"seed": 1, "mean_cycles_between_strikes": 100.0}}"#,
        ] {
            let spec = JobSpec::parse(other.as_bytes()).expect("job");
            assert_ne!(implicit.canonical(), spec.canonical(), "collided: {other}");
        }
        // Fault sub-dials separate too, including reference_path.
        let base = r#"{"workload": "crc32",
            "faults": {"seed": 1, "mean_cycles_between_strikes": 100.0}}"#;
        let base = JobSpec::parse(base.as_bytes()).expect("job");
        for variant in [
            r#"{"workload": "crc32", "faults": {"seed": 2,
                "mean_cycles_between_strikes": 100.0}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 200.0}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "scrub_interval": 5000}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "restrict_to": ["data_ecc"]}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "mbu": [0.8, 0.1, 0.05, 0.05]}}"#,
            r#"{"workload": "crc32", "faults": {"seed": 1,
                "mean_cycles_between_strikes": 100.0, "reference_path": true}}"#,
        ] {
            let spec = JobSpec::parse(variant.as_bytes()).expect("job");
            assert_ne!(base.canonical(), spec.canonical(), "collided: {variant}");
        }
    }

    #[test]
    fn multicore_jobs_decode_run_and_render_a_multicore_section() {
        let job = JobSpec::parse(br#"{"workload": "reduction", "cores": 3, "metrics": true}"#)
            .expect("multicore job");
        assert_eq!(job.cores, Some(3));
        let a = job.run().expect("run");
        let b = job.run().expect("run");
        assert_eq!(a.body, b.body, "multicore reports are deterministic");
        let parsed = json::parse(a.body.as_bytes()).expect("valid JSON");
        let multi = parsed.get("multicore").expect("multicore section");
        assert_eq!(multi.get("cores").and_then(Json::as_u64), Some(3));
        assert!(multi.get("coherence").is_some_and(|c| c.as_obj().is_some()));
        assert_eq!(
            multi.get("per_core").and_then(Json::as_arr).map(<[_]>::len),
            Some(3)
        );
        assert!(multi.get("sharer_counts").is_some());
        assert_eq!(
            parsed.get("checksum_ok").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn cores_one_collapses_onto_the_single_core_address() {
        let implicit = JobSpec::parse(br#"{"workload": "crc32"}"#).expect("job");
        let explicit = JobSpec::parse(br#"{"workload": "crc32", "cores": 1}"#).expect("job");
        assert_eq!(implicit.canonical(), explicit.canonical());
        assert_eq!(explicit.cores, None, "cores=1 normalises away");
        // A real multi-core job gets its own address, and the omitted
        // seed collapses onto the registry default written out.
        let multi = JobSpec::parse(br#"{"workload": "reduction", "cores": 2}"#).expect("job");
        assert_ne!(implicit.canonical(), multi.canonical());
        let seeded = ftspm_workloads::find_multicore("reduction")
            .expect("registered")
            .default_seed();
        let spelled = JobSpec::parse(
            format!(r#"{{"workload": {{"name": "reduction", "seed": {seeded}}}, "cores": 2}}"#)
                .as_bytes(),
        )
        .expect("job");
        assert_eq!(multi.canonical(), spelled.canonical());
        let more = JobSpec::parse(br#"{"workload": "reduction", "cores": 3}"#).expect("job");
        assert_ne!(multi.canonical(), more.canonical(), "core count separates");
    }

    #[test]
    fn multicore_validation_is_typed_and_maps_to_422() {
        // Out-of-range core counts are shape errors.
        for bad in [
            r#"{"workload": "reduction", "cores": 0}"#,
            r#"{"workload": "reduction", "cores": 9}"#,
            r#"{"workload": "reduction", "cores": 2.5}"#,
            r#"{"workload": {"synthetic": {}}, "cores": 2}"#,
        ] {
            assert!(
                matches!(JobSpec::parse(bad.as_bytes()), Err(JobError::Spec(_))),
                "should reject: {bad}"
            );
        }
        // Unknown multi-core kernel: semantic 422 listing valid names.
        let e = JobSpec::parse(br#"{"workload": "crc32", "cores": 2}"#).expect_err("rejects");
        assert!(matches!(e, JobError::Multicore(_)), "{e:?}");
        assert_eq!(e.status(), 422);
        assert!(e.to_string().contains("reduction"), "lists names: {e}");
        // At its 2-core floor producer_consumer decodes fine...
        assert!(JobSpec::parse(br#"{"workload": "producer_consumer", "cores": 2}"#).is_ok());
        // ...but `cores: 1` collapses onto the single-core path, where
        // a multicore-only kernel is simply an unknown workload (422).
        let e = JobSpec::parse(br#"{"workload": "producer_consumer", "cores": 1}"#)
            .expect_err("no single-core producer_consumer");
        assert!(matches!(e, JobError::Workload(_)), "{e:?}");
        assert_eq!(e.status(), 422);
    }

    #[test]
    fn chaos_panic_jobs_are_not_cacheable() {
        let normal = JobSpec::parse(br#"{"workload": "crc32"}"#).expect("job");
        assert!(normal.cacheable());
        let chaos = JobSpec::parse(br#"{"workload": "crc32", "chaos_panic": true}"#).expect("job");
        assert!(!chaos.cacheable());
        assert_ne!(normal.canonical(), chaos.canonical());
    }

    #[test]
    fn metrics_jobs_attach_a_registry_and_echo_its_csv() {
        let job = JobSpec::parse(
            br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 200}},
                 "metrics": true}"#,
        )
        .expect("job");
        let out = job.run().expect("run");
        let registry = out.registry.expect("registry attached");
        assert!(!registry.is_empty());
        let parsed = json::parse(out.body.as_bytes()).expect("valid JSON");
        let csv = parsed
            .get("metrics_csv")
            .and_then(Json::as_str)
            .expect("metrics_csv present");
        assert_eq!(csv, registry.to_csv());
    }
}
