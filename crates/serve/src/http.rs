//! Hand-rolled HTTP/1.1 request framing and deterministic responses.
//!
//! The parser is a pure function of a [`BufRead`] — the server hands it
//! a buffered socket, the property tests hand it an `io::Cursor` full
//! of junk — so every malformed-input path is exercised without a
//! network in the loop. Every way a request can be malformed is a typed
//! [`HttpError`] with a 4xx/5xx status; nothing panics, and the hard
//! caps on request line, header block, and body mean no input can make
//! the reader grow without bound.
//!
//! Responses are written with a fixed header set and **no `Date`
//! header**: the service's determinism contract says the same job body
//! and seed produce byte-identical response bytes, so nothing
//! wall-clock-dependent may appear on the wire. The only header that
//! varies between a fresh connection and a reused one is `connection:`
//! itself — bodies, status lines, and every other header are identical,
//! which is what lets the keep-alive differential test compare
//! pipelined responses against fresh-connection ones byte for byte.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line (`METHOD SP path SP version CRLF`).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Cap on the total header block, request line included.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on a request body; a batch of a few hundred job specs fits with
/// room to spare.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: the routing triple plus the connection
/// disposition. Headers beyond `content-length`/`transfer-encoding`/
/// `connection` are validated for shape and discarded — the service
/// keys on method, path, and body only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/v1/run`.
    pub path: String,
    /// The request body (empty when no `content-length`).
    pub body: Vec<u8>,
    /// Whether the connection must close after this response:
    /// a `connection: close` token, or HTTP/1.0 without an explicit
    /// `connection: keep-alive`.
    pub close: bool,
}

/// Why a request failed to parse, each variant carrying its HTTP
/// status.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying stream failed (includes read timeouts).
    Io(io::Error),
    /// The stream ended mid-request.
    Truncated,
    /// Request line longer than [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// Header block larger than [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// The request line is not `METHOD SP path SP HTTP/1.x`.
    BadRequestLine,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
    /// A header line without a `:` separator.
    BadHeader,
    /// `content-length` present but not a base-10 integer in range.
    BadContentLength,
    /// A body-bearing method (POST/PUT) with no `content-length`.
    MissingContentLength,
    /// Declared body larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `transfer-encoding` is declared; only identity framing is
    /// supported.
    UnsupportedTransferEncoding,
    /// A keep-alive connection sat idle past the server's idle window
    /// with no request in flight. Distinct from [`HttpError::Io`]
    /// timeouts mid-frame: no request was ever started, so the server
    /// answers a typed 408 and does not count a request.
    IdleTimeout,
}

impl HttpError {
    /// The HTTP status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                408
            }
            Self::IdleTimeout => 408,
            Self::Io(_)
            | Self::Truncated
            | Self::BadRequestLine
            | Self::BadHeader
            | Self::BadContentLength => 400,
            Self::RequestLineTooLong => 414,
            Self::HeadersTooLarge => 431,
            Self::UnsupportedVersion => 505,
            Self::MissingContentLength => 411,
            Self::BodyTooLarge => 413,
            Self::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error reading request: {e}"),
            Self::Truncated => write!(f, "request truncated mid-frame"),
            Self::RequestLineTooLong => {
                write!(f, "request line exceeds {MAX_REQUEST_LINE} bytes")
            }
            Self::HeadersTooLarge => write!(f, "header block exceeds {MAX_HEADER_BYTES} bytes"),
            Self::BadRequestLine => write!(f, "malformed request line"),
            Self::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            Self::BadHeader => write!(f, "malformed header line"),
            Self::BadContentLength => write!(f, "malformed content-length"),
            Self::MissingContentLength => write!(f, "content-length required"),
            Self::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            Self::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported; send content-length")
            }
            Self::IdleTimeout => write!(f, "connection idle past the keep-alive window"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e)
        }
    }
}

/// Reads one line terminated by `\n`, capped at `max` bytes **counting
/// the terminator**. Returns the line without `\r\n`/`\n`, or `None`
/// at clean EOF before any byte. `consumed` accumulates every byte
/// read, so callers can tell a timeout on a silent connection (nothing
/// consumed) from one mid-line.
fn read_capped_line(
    reader: &mut impl BufRead,
    max: usize,
    over: fn() -> HttpError,
    consumed: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    loop {
        if raw.len() >= max {
            return Err(over());
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {
                *consumed += 1;
                if byte[0] == b'\n' {
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    let line = String::from_utf8(raw).map_err(|_| HttpError::BadHeader)?;
                    return Ok(Some(line));
                }
                raw.push(byte[0]);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads and validates one request frame from `reader`.
///
/// The one-shot entry point: a clean EOF before any byte is
/// [`HttpError::Truncated`]. Connection loops that must tell "client
/// hung up between requests" apart from "client died mid-frame" use
/// [`read_next_request`] instead.
///
/// # Errors
///
/// Every malformed frame is a typed [`HttpError`]; see each variant for
/// the status it maps to. The caps guarantee the call terminates on any
/// finite or timing-out stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    read_next_request(reader)?.ok_or(HttpError::Truncated)
}

/// Reads the next request off a (possibly reused) connection.
///
/// Returns `Ok(None)` on a clean EOF before any byte — the client
/// closed between requests, which on a keep-alive connection is the
/// normal way a conversation ends, not an error. A connection reset
/// before any byte is the same close, just abrupt (the client dropped
/// the socket with responses still unread).
///
/// # Errors
///
/// [`HttpError::IdleTimeout`] when the socket read timed out before the
/// first byte of a request (an idle keep-alive connection); every other
/// malformed frame is the same typed [`HttpError`] as
/// [`read_request`].
pub fn read_next_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut consumed = 0usize;
    let line = match read_capped_line(
        reader,
        MAX_REQUEST_LINE,
        || HttpError::RequestLineTooLong,
        &mut consumed,
    ) {
        Ok(None) => return Ok(None),
        Ok(Some(line)) => line,
        Err(HttpError::Io(e))
            if consumed == 0
                && matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
        {
            return Err(HttpError::IdleTimeout);
        }
        // A reset before any byte of a request is a client that
        // vanished between requests (its RST beat our read) — the same
        // clean close as an orderly FIN, never a malformed request.
        Err(HttpError::Io(e))
            if consumed == 0
                && matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                ) =>
        {
            return Ok(None);
        }
        Err(e) => return Err(e),
    };
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() || method.is_empty() || path.is_empty() {
        return Err(HttpError::BadRequestLine);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::UnsupportedVersion);
    }

    let mut content_length: Option<usize> = None;
    let mut close_token = false;
    let mut keep_alive_token = false;
    let mut header_bytes = line.len();
    loop {
        let remaining = MAX_HEADER_BYTES.saturating_sub(header_bytes);
        if remaining == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        let header = read_capped_line(
            reader,
            remaining,
            || HttpError::HeadersTooLarge,
            &mut consumed,
        )?
        .ok_or(HttpError::Truncated)?;
        if header.is_empty() {
            break;
        }
        header_bytes += header.len() + 2;
        let (name, value) = header.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "connection" {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close_token = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive_token = true;
                }
            }
        }
        if name == "content-length" {
            // RFC 9110 §8.6: content-length is 1*DIGIT — no sign, no
            // whitespace inside the token. `parse::<usize>` alone would
            // accept a leading `+`, so check every byte first.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadContentLength);
            }
            let parsed: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
            // Duplicate content-length headers that disagree are a
            // classic smuggling vector; reject rather than pick one.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::BadContentLength);
            }
            content_length = Some(parsed);
        }
    }

    let body = match content_length {
        None if matches!(method, "POST" | "PUT") => {
            return Err(HttpError::MissingContentLength);
        }
        None => Vec::new(),
        Some(len) if len > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge),
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
    };

    // HTTP/1.0 closes unless the client opts into keep-alive; HTTP/1.1
    // keeps alive unless the client says close.
    let close = if version == "HTTP/1.0" {
        close_token || !keep_alive_token
    } else {
        close_token
    };

    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    }))
}

/// A response with the fixed deterministic header set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `content-type` header value.
    pub content_type: &'static str,
    /// Optional `retry-after` seconds (the 503 backpressure path).
    pub retry_after: Option<u32>,
    /// Optional `allow` header value (405 responses, RFC 9110 §15.5.6).
    pub allow: Option<&'static str>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 JSON response.
    pub fn json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            retry_after: None,
            allow: None,
            body: body.into_bytes(),
        }
    }

    /// A JSON response with an explicit status (the job API's 202s and
    /// replayed terminal reports).
    pub fn json_status(status: u16, body: String) -> Self {
        Self {
            status,
            ..Self::json(body)
        }
    }

    /// A 200 CSV response (the `/metrics` endpoint).
    pub fn csv(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/csv",
            retry_after: None,
            allow: None,
            body: body.into_bytes(),
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            allow: None,
            body: format!("{{\"error\":{}}}", crate::json::escape(message)).into_bytes(),
        }
    }

    /// A 405 with the mandatory `allow` header (RFC 9110: a 405 MUST
    /// name the methods the target does support).
    pub fn method_not_allowed(allow: &'static str) -> Self {
        Self {
            allow: Some(allow),
            ..Self::error(405, &format!("use {allow}"))
        }
    }

    /// The reason phrase for the statuses this service emits.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            505 => "HTTP Version Not Supported",
            _ => "Internal Server Error",
        }
    }

    /// Renders the one-shot (`connection: close`) wire frame — the
    /// historical shape; connection loops use [`Response::render`].
    pub fn to_bytes(&self) -> Vec<u8> {
        self.render(true, false)
    }

    /// Renders the full deterministic wire frame.
    ///
    /// `close` selects the `connection` header; `head_only` omits the
    /// body while keeping the `content-length` it *would* have had —
    /// the HEAD contract (RFC 9110 §9.3.2).
    pub fn render(&self, close: bool, head_only: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        if let Some(allow) = self.allow {
            head.push_str(&format!("allow: {allow}\r\n"));
        }
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        head.push_str("\r\n");
        let mut frame = head.into_bytes();
        if !head_only {
            frame.extend_from_slice(&self.body);
        }
        frame
    }

    /// Writes the one-shot (`connection: close`) frame to `stream`,
    /// best-effort flush.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        self.write_framed(stream, true, false)
    }

    /// Writes the frame with an explicit connection disposition and
    /// HEAD mode; see [`Response::render`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_framed(
        &self,
        stream: &mut impl Write,
        close: bool,
        head_only: bool,
    ) -> io::Result<()> {
        stream.write_all(&self.render(close, head_only))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw))
    }

    #[test]
    fn a_well_formed_post_parses() {
        let req = parse(b"POST /v1/run HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nbody")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn get_without_content_length_parses_with_empty_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("valid GET");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncation_and_caps_are_typed_errors() {
        assert!(matches!(parse(b""), Err(HttpError::Truncated)));
        assert!(matches!(
            parse(b"POST /v1/run HTT"),
            Err(HttpError::Truncated)
        ));
        assert!(matches!(
            parse(b"POST /v1/run HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
        let long_line = vec![b'A'; MAX_REQUEST_LINE + 10];
        assert!(matches!(
            parse(&long_line),
            Err(HttpError::RequestLineTooLong)
        ));
        let mut fat_headers = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..4000 {
            fat_headers.extend_from_slice(format!("x-h{i}: {i}\r\n").as_bytes());
        }
        fat_headers.extend_from_slice(b"\r\n");
        assert!(matches!(
            parse(&fat_headers),
            Err(HttpError::HeadersTooLarge)
        ));
    }

    #[test]
    fn malformed_frames_map_to_their_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"NOPE\r\n\r\n", 400),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n", 400),
            // RFC 9110: content-length is 1*DIGIT. A leading sign or an
            // empty token must be rejected even though `parse::<usize>`
            // would accept "+4".
            (b"POST / HTTP/1.1\r\ncontent-length: +4\r\n\r\nbody", 400),
            (b"POST / HTTP/1.1\r\ncontent-length: 4 4\r\n\r\nbody", 400),
            (b"POST / HTTP/1.1\r\ncontent-length:\r\n\r\nbody", 400),
            (
                b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\nxx",
                400,
            ),
            (b"POST / HTTP/1.1\r\nhost: x\r\n\r\n", 411),
            (b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 413),
            (
                b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, status) in cases {
            let err = parse(raw).expect_err("malformed frame");
            assert_eq!(
                err.status(),
                status,
                "frame: {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn connection_disposition_follows_version_and_tokens() {
        let cases: Vec<(&[u8], bool)> = vec![
            (b"GET / HTTP/1.1\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nconnection: Close\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nconnection: keep-alive\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nconnection: foo, close\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nconnection: close\r\n\r\n", true),
        ];
        for (raw, close) in cases {
            let req = parse(raw).expect("valid request");
            assert_eq!(req.close, close, "{}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn clean_eof_between_requests_is_none_not_an_error() {
        assert!(matches!(read_next_request(&mut Cursor::new(b"")), Ok(None)));
        // A half request is still a typed error, not a clean close.
        assert!(matches!(
            read_next_request(&mut Cursor::new(b"GET / HT")),
            Err(HttpError::Truncated)
        ));
        // Two pipelined requests come off the same reader in order.
        let two =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/run HTTP/1.1\r\ncontent-length: 2\r\n\r\nok";
        let mut cursor = Cursor::new(&two[..]);
        let first = read_next_request(&mut cursor)
            .expect("first")
            .expect("some");
        assert_eq!(first.path, "/healthz");
        let second = read_next_request(&mut cursor)
            .expect("second")
            .expect("some");
        assert_eq!(second.path, "/v1/run");
        assert_eq!(second.body, b"ok");
        assert!(matches!(read_next_request(&mut cursor), Ok(None)));
    }

    #[test]
    fn responses_render_a_fixed_frame_with_no_date_header() {
        let frame = Response::json("{\"ok\":true}".to_string()).to_bytes();
        let text = String::from_utf8(frame).expect("ascii frame");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 11\r\n\
             connection: close\r\n\r\n{\"ok\":true}"
        );
        let busy = Response {
            retry_after: Some(1),
            ..Response::error(503, "queue full")
        };
        let text = String::from_utf8(busy.to_bytes()).expect("ascii frame");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(!text.to_ascii_lowercase().contains("date:"));
    }

    #[test]
    fn keep_alive_and_head_frames_differ_only_as_documented() {
        let response = Response::json("{\"ok\":true}".to_string());
        let fresh = String::from_utf8(response.render(true, false)).expect("ascii");
        let reused = String::from_utf8(response.render(false, false)).expect("ascii");
        assert_eq!(
            fresh.replace("connection: close", "connection: keep-alive"),
            reused,
            "only the connection header may differ"
        );
        // HEAD: identical headers (content-length included), no body.
        let head = String::from_utf8(response.render(true, true)).expect("ascii");
        assert!(head.contains("content-length: 11\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
        assert_eq!(format!("{head}{{\"ok\":true}}"), fresh);
    }

    #[test]
    fn method_not_allowed_carries_the_allow_header() {
        let frame = Response::method_not_allowed("GET, HEAD").to_bytes();
        let text = String::from_utf8(frame).expect("ascii frame");
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("allow: GET, HEAD\r\n"), "{text}");
    }
}
