//! Hand-rolled HTTP/1.1 request framing and deterministic responses.
//!
//! The parser is a pure function of a [`BufRead`] — the server hands it
//! a buffered socket, the property tests hand it an `io::Cursor` full
//! of junk — so every malformed-input path is exercised without a
//! network in the loop. Every way a request can be malformed is a typed
//! [`HttpError`] with a 4xx/5xx status; nothing panics, and the hard
//! caps on request line, header block, and body mean no input can make
//! the reader grow without bound.
//!
//! Responses are written with a fixed header set and **no `Date`
//! header**: the service's determinism contract says the same job body
//! and seed produce byte-identical response bytes, so nothing
//! wall-clock-dependent may appear on the wire.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line (`METHOD SP path SP version CRLF`).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Cap on the total header block, request line included.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on a request body; a batch of a few hundred job specs fits with
/// room to spare.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: just the routing triple. Headers beyond
/// `content-length`/`transfer-encoding` are validated for shape and
/// discarded — the service keys on method, path, and body only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/v1/run`.
    pub path: String,
    /// The request body (empty when no `content-length`).
    pub body: Vec<u8>,
}

/// Why a request failed to parse, each variant carrying its HTTP
/// status.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying stream failed (includes read timeouts).
    Io(io::Error),
    /// The stream ended mid-request.
    Truncated,
    /// Request line longer than [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// Header block larger than [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// The request line is not `METHOD SP path SP HTTP/1.x`.
    BadRequestLine,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
    /// A header line without a `:` separator.
    BadHeader,
    /// `content-length` present but not a base-10 integer in range.
    BadContentLength,
    /// A body-bearing method (POST/PUT) with no `content-length`.
    MissingContentLength,
    /// Declared body larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `transfer-encoding` is declared; only identity framing is
    /// supported.
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The HTTP status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                408
            }
            Self::Io(_)
            | Self::Truncated
            | Self::BadRequestLine
            | Self::BadHeader
            | Self::BadContentLength => 400,
            Self::RequestLineTooLong => 414,
            Self::HeadersTooLarge => 431,
            Self::UnsupportedVersion => 505,
            Self::MissingContentLength => 411,
            Self::BodyTooLarge => 413,
            Self::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error reading request: {e}"),
            Self::Truncated => write!(f, "request truncated mid-frame"),
            Self::RequestLineTooLong => {
                write!(f, "request line exceeds {MAX_REQUEST_LINE} bytes")
            }
            Self::HeadersTooLarge => write!(f, "header block exceeds {MAX_HEADER_BYTES} bytes"),
            Self::BadRequestLine => write!(f, "malformed request line"),
            Self::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            Self::BadHeader => write!(f, "malformed header line"),
            Self::BadContentLength => write!(f, "malformed content-length"),
            Self::MissingContentLength => write!(f, "content-length required"),
            Self::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            Self::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported; send content-length")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e)
        }
    }
}

/// Reads one line terminated by `\n`, capped at `max` bytes **counting
/// the terminator**. Returns the line without `\r\n`/`\n`, or `None`
/// at clean EOF before any byte.
fn read_capped_line(
    reader: &mut impl BufRead,
    max: usize,
    over: fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    loop {
        if raw.len() >= max {
            return Err(over());
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    let line = String::from_utf8(raw).map_err(|_| HttpError::BadHeader)?;
                    return Ok(Some(line));
                }
                raw.push(byte[0]);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads and validates one request frame from `reader`.
///
/// # Errors
///
/// Every malformed frame is a typed [`HttpError`]; see each variant for
/// the status it maps to. The caps guarantee the call terminates on any
/// finite or timing-out stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let line = read_capped_line(reader, MAX_REQUEST_LINE, || HttpError::RequestLineTooLong)?
        .ok_or(HttpError::Truncated)?;
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() || method.is_empty() || path.is_empty() {
        return Err(HttpError::BadRequestLine);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::UnsupportedVersion);
    }

    let mut content_length: Option<usize> = None;
    let mut header_bytes = line.len();
    loop {
        let remaining = MAX_HEADER_BYTES.saturating_sub(header_bytes);
        if remaining == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        let header = read_capped_line(reader, remaining, || HttpError::HeadersTooLarge)?
            .ok_or(HttpError::Truncated)?;
        if header.is_empty() {
            break;
        }
        header_bytes += header.len() + 2;
        let (name, value) = header.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            let parsed: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
            // Duplicate content-length headers that disagree are a
            // classic smuggling vector; reject rather than pick one.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::BadContentLength);
            }
            content_length = Some(parsed);
        }
    }

    let body = match content_length {
        None if matches!(method, "POST" | "PUT") => {
            return Err(HttpError::MissingContentLength);
        }
        None => Vec::new(),
        Some(len) if len > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge),
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
    };

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// A response with the fixed deterministic header set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `content-type` header value.
    pub content_type: &'static str,
    /// Optional `retry-after` seconds (the 503 backpressure path).
    pub retry_after: Option<u32>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 JSON response.
    pub fn json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            retry_after: None,
            body: body.into_bytes(),
        }
    }

    /// A 200 CSV response (the `/metrics` endpoint).
    pub fn csv(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/csv",
            retry_after: None,
            body: body.into_bytes(),
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            body: format!("{{\"error\":{}}}", crate::json::escape(message)).into_bytes(),
        }
    }

    /// The reason phrase for the statuses this service emits.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            505 => "HTTP Version Not Supported",
            _ => "Internal Server Error",
        }
    }

    /// Renders the full deterministic wire frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        head.push_str("\r\n");
        let mut frame = head.into_bytes();
        frame.extend_from_slice(&self.body);
        frame
    }

    /// Writes the frame to `stream`, best-effort flush.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw))
    }

    #[test]
    fn a_well_formed_post_parses() {
        let req = parse(b"POST /v1/run HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nbody")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn get_without_content_length_parses_with_empty_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("valid GET");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncation_and_caps_are_typed_errors() {
        assert!(matches!(parse(b""), Err(HttpError::Truncated)));
        assert!(matches!(
            parse(b"POST /v1/run HTT"),
            Err(HttpError::Truncated)
        ));
        assert!(matches!(
            parse(b"POST /v1/run HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
        let long_line = vec![b'A'; MAX_REQUEST_LINE + 10];
        assert!(matches!(
            parse(&long_line),
            Err(HttpError::RequestLineTooLong)
        ));
        let mut fat_headers = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..4000 {
            fat_headers.extend_from_slice(format!("x-h{i}: {i}\r\n").as_bytes());
        }
        fat_headers.extend_from_slice(b"\r\n");
        assert!(matches!(
            parse(&fat_headers),
            Err(HttpError::HeadersTooLarge)
        ));
    }

    #[test]
    fn malformed_frames_map_to_their_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"NOPE\r\n\r\n", 400),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\nxx",
                400,
            ),
            (b"POST / HTTP/1.1\r\nhost: x\r\n\r\n", 411),
            (b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 413),
            (
                b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, status) in cases {
            let err = parse(raw).expect_err("malformed frame");
            assert_eq!(
                err.status(),
                status,
                "frame: {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn responses_render_a_fixed_frame_with_no_date_header() {
        let frame = Response::json("{\"ok\":true}".to_string()).to_bytes();
        let text = String::from_utf8(frame).expect("ascii frame");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 11\r\n\
             connection: close\r\n\r\n{\"ok\":true}"
        );
        let busy = Response {
            retry_after: Some(1),
            ..Response::error(503, "queue full")
        };
        let text = String::from_utf8(busy.to_bytes()).expect("ascii frame");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(!text.to_ascii_lowercase().contains("date:"));
    }
}
