//! The service itself: a bounded-queue accept loop, a connection
//! worker pool, and an async job-runner pool.
//!
//! Threading model: one accept thread pushes accepted connections onto
//! a bounded queue; `workers` pool threads pop and serve them — each
//! connection through a keep-alive loop that parses sequential
//! requests off the same socket until the client closes, asks to
//! close, exceeds the per-connection request bound, or sits idle past
//! the idle window (a typed 408). A separate pool of `workers` job
//! runners drains the async job table, so a long campaign submitted
//! via `POST /v1/jobs` never pins a socket or a connection worker.
//! When the connection queue is full the **accept thread** answers
//! `503` with `retry-after` directly — backpressure is explicit and
//! immediate, not a silently growing buffer. Batch requests fan out
//! over `ftspm_testkit::par` with the same worker count, so the
//! ordered seed-substream discipline that makes campaign sharding
//! deterministic also makes `/v1/batch` bodies identical at every pool
//! size.
//!
//! Every execution path — `/v1/run`, `/v1/batch` elements, and job
//! runners — goes through the content-addressed result cache
//! ([`crate::cache`]): the determinism contract makes a hit
//! byte-identical to the fresh run it replaces, so the cache changes
//! `serve.cache.*` counters and latency, nothing else.
//!
//! Lock discipline: `queue`, `registry`, `cache`, `jobs`, and `traces`
//! are five independent mutexes and no code path holds two at once —
//! lock, update, unlock, then take the next (the trace resolver locks,
//! clones an `Arc`, and unlocks before any run state exists). That
//! makes deadlock impossible by construction and keeps panic poisoning
//! (always recovered via `relock`) from ever wedging more than one
//! update.
//!
//! Shutdown is graceful: [`Server::shutdown`] stops accepting, lets the
//! workers drain every connection already queued and the runners drain
//! every claimable job, and joins all threads. Dropping the server does
//! the same.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use ftspm_harness::RunError;
use ftspm_obs::MetricsRegistry;
use ftspm_testkit::par;

use ftspm_trace::{Tail, Trace, TraceId, TraceResolver, WorkloadSource};

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::http::{read_next_request, HttpError, Request, Response};
use crate::job::{JobError, JobOutput, JobRunError, JobSpec};
use crate::jobs::{Cancelled, JobState, JobTable, Submitted};
use crate::json::{self, Json};
use crate::traces::{Stored, TraceTable};

/// Cap on jobs in one `/v1/batch` request.
pub const MAX_BATCH_JOBS: usize = 256;

/// Why the service failed to boot. These are the conditions a caller
/// can reasonably hit and handle (a busy port above all); `repro serve`
/// prints them and exits instead of unwinding with a backtrace.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Binding the listen address failed (port in use, bad address,
    /// privileged port, …).
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying bind error.
        source: io::Error,
    },
    /// The bound listener's local address could not be read.
    LocalAddr(io::Error),
    /// An accept or worker thread could not be spawned.
    Spawn(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            Self::LocalAddr(e) => write!(f, "cannot read listener address: {e}"),
            Self::Spawn(e) => write!(f, "cannot spawn service thread: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Bind { source, .. } => Some(source),
            Self::LocalAddr(e) | Self::Spawn(e) => Some(e),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size; also the `/v1/batch` fan-out width. Defaults
    /// to the `FTSPM_THREADS` knob ([`par::thread_count`]).
    pub workers: NonZeroUsize,
    /// Connections held while all workers are busy; beyond this the
    /// accept thread answers 503. Defaults to 64.
    pub queue_depth: usize,
    /// Socket read/write timeout per connection. A client that stalls
    /// mid-request gets a 408, never a hung worker. Defaults to 5 s.
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server answers a typed 408 and closes (counted as
    /// `serve.conn.idle_timeout`, not as a request). Defaults to 5 s.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the final response); bounds how long a
    /// single client can hold a worker. Defaults to 1024, minimum 1.
    pub max_requests_per_connection: usize,
    /// Result-cache entries held (LRU); 0 disables caching. Defaults
    /// to 128.
    pub cache_capacity: usize,
    /// Async job-table entries held; when full of live jobs, new
    /// submissions get 503. Defaults to 256, minimum 1.
    pub job_capacity: usize,
    /// Uploaded traces held (oldest evicted when full; every stored
    /// trace is evictable, so uploads never 503). Defaults to 64,
    /// minimum 1.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: par::thread_count(),
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
            cache_capacity: 128,
            job_capacity: 256,
            trace_capacity: 64,
        }
    }
}

struct Queue {
    conns: VecDeque<TcpStream>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    registry: Mutex<MetricsRegistry>,
    cache: Mutex<ResultCache>,
    jobs: Mutex<JobTable>,
    jobs_ready: Condvar,
    traces: Mutex<TraceTable>,
    config: ServeConfig,
}

/// [`TraceResolver`] over the server's shared trace table: locks,
/// clones the `Arc`, unlocks — never held across a run.
struct SharedTraces<'a>(&'a Shared);

impl TraceResolver for SharedTraces<'_> {
    fn resolve(&self, id: TraceId) -> Option<Arc<Trace>> {
        relock(&self.0.traces).get(id)
    }
}

/// Poison-recovering lock: a panic between lock and unlock (anywhere,
/// ever) must not wedge the accept thread, the workers, or `shutdown`.
/// The guarded state is a connection queue and a counter registry —
/// both meaningful after any partial update — so recovering the guard
/// is always safe.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running service; see the module docs for the threading model.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and boots the service on it — the `repro serve`
    /// entry point.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address is busy or invalid, plus
    /// everything [`Server::start`] can return.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        Self::start(listener, config)
    }

    /// Boots the service on an already-bound listener (tests use
    /// `ftspm_testkit::ephemeral_listener`; `repro serve` binds an
    /// explicit address via [`Server::bind`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::LocalAddr`] / [`ServeError::Spawn`] when the
    /// listener's address cannot be read or a service thread cannot be
    /// spawned. Threads spawned before the failure are shut down before
    /// returning.
    pub fn start(listener: TcpListener, config: ServeConfig) -> Result<Self, ServeError> {
        let addr = listener.local_addr().map_err(ServeError::LocalAddr)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                conns: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            registry: Mutex::new(MetricsRegistry::new()),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            jobs: Mutex::new(JobTable::new(config.job_capacity)),
            jobs_ready: Condvar::new(),
            traces: Mutex::new(TraceTable::new(config.trace_capacity)),
            config,
        });
        let mut server = Self {
            addr,
            shared: Arc::clone(&shared),
            accept: None,
            workers: Vec::new(),
            runners: Vec::new(),
        };
        for i in 0..shared.config.workers.get() {
            let shared = Arc::clone(&shared);
            let worker = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(ServeError::Spawn)?;
            // On a later spawn failure, `server` drops here and its
            // shutdown path joins the workers already running.
            server.workers.push(worker);
        }
        for i in 0..shared.config.workers.get() {
            let shared = Arc::clone(&shared);
            let runner = std::thread::Builder::new()
                .name(format!("serve-job-runner-{i}"))
                .spawn(move || job_runner_loop(&shared))
                .map_err(ServeError::Spawn)?;
            server.runners.push(runner);
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(ServeError::Spawn)?
        };
        server.accept = Some(accept);
        Ok(server)
    }

    /// The address the service is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every already-queued connection and
    /// every claimable job, and joins all service threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut q = relock(&self.shared.queue);
            if q.shutdown {
                return;
            }
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        relock(&self.shared.jobs).begin_shutdown();
        self.shared.jobs_ready.notify_all();
        // The accept thread is parked in accept(); poke it awake so it
        // observes the flag. The connection itself is queued and served
        // (or refused) like any other — harmless either way.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // keep serving unless we are shutting down.
                if relock(&shared.queue).shutdown {
                    return;
                }
                continue;
            }
        };
        let mut q = relock(&shared.queue);
        if q.shutdown {
            return;
        }
        if q.conns.len() >= shared.config.queue_depth {
            drop(q);
            relock(&shared.registry).incr("serve.refused");
            refuse(conn, shared.config.read_timeout);
            continue;
        }
        q.conns.push_back(conn);
        drop(q);
        shared.ready.notify_one();
    }
}

/// Answers 503 + `retry-after` on the accept thread: backpressure must
/// not depend on a worker becoming free.
fn refuse(mut conn: TcpStream, timeout: Duration) {
    let _ = conn.set_write_timeout(Some(timeout));
    let busy = Response {
        retry_after: Some(1),
        ..Response::error(503, "job queue full; retry shortly")
    };
    let _ = busy.write_to(&mut conn);
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = relock(&shared.queue);
            loop {
                if let Some(conn) = q.conns.pop_front() {
                    break conn;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        serve_connection(conn, shared);
    }
}

/// The `serve.malformed.*` counter for a request the service turned
/// away without running anything: bad framing, bad routing, or a bad
/// job spec. Keyed by status so `/metrics` shows the failure classes
/// separately (`501`/`505` are protocol-level rejections and count
/// here too; `500`/`503`/`504` are accounted by their own counters).
fn malformed_counter(status: u16) -> Option<&'static str> {
    Some(match status {
        400 => "serve.malformed.400",
        404 => "serve.malformed.404",
        405 => "serve.malformed.405",
        408 => "serve.malformed.408",
        411 => "serve.malformed.411",
        413 => "serve.malformed.413",
        414 => "serve.malformed.414",
        422 => "serve.malformed.422",
        431 => "serve.malformed.431",
        501 => "serve.malformed.501",
        505 => "serve.malformed.505",
        401..=499 => "serve.malformed.4xx",
        _ => return None,
    })
}

/// The keep-alive connection loop: parses sequential requests off one
/// socket until the client closes (clean EOF), asks to close, trips a
/// parse error, exceeds the per-connection request bound, or idles
/// past the idle window.
///
/// The response bytes are identical to the one-shot path except for
/// the `connection:` header (pinned by `http::tests`), which is what
/// makes N pipelined requests produce exactly the concatenation of N
/// fresh-connection responses, `connection:` aside.
fn serve_connection(conn: TcpStream, shared: &Shared) {
    let config = &shared.config;
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let _ = conn.set_write_timeout(Some(config.read_timeout));
    // Responses go out as several small writes; on a keep-alive
    // connection Nagle + delayed ACK would turn that into ~40 ms per
    // round trip.
    let _ = conn.set_nodelay(true);
    let max_requests = config.max_requests_per_connection.max(1);
    let mut reader = BufReader::new(&conn);
    let mut served = 0usize;
    loop {
        let (response, close, head_only) = match read_next_request(&mut reader) {
            // Clean EOF between requests: the client hung up, which is
            // how a keep-alive conversation normally ends.
            Ok(None) => return,
            Ok(Some(request)) => {
                served += 1;
                if served > 1 {
                    // Count the reuse before routing: by the time the
                    // client holds response #2, /metrics includes it.
                    relock(&shared.registry).incr("serve.conn.reused");
                }
                let close = request.close || served >= max_requests;
                (route(&request, shared), close, request.method == "HEAD")
            }
            Err(HttpError::IdleTimeout) if served > 0 => {
                // A reused connection idled out with no request in
                // flight: typed 408, counted as an idle close — not as
                // a request, because the client never sent one.
                relock(&shared.registry).incr("serve.conn.idle_timeout");
                let mut writer = &conn;
                let _ = http_error_response(&HttpError::IdleTimeout).write_framed(
                    &mut writer,
                    true,
                    false,
                );
                return;
            }
            Err(e) => {
                let response = http_error_response(&e);
                {
                    let mut registry = relock(&shared.registry);
                    registry.incr("serve.requests");
                    if let Some(counter) = malformed_counter(response.status) {
                        registry.incr(counter);
                    }
                }
                // Framing is broken (or the very first read timed
                // out); the only safe move is answer-and-close.
                let mut writer = &conn;
                let _ = response.write_framed(&mut writer, true, false);
                return;
            }
        };
        // Count before writing: once the client holds the response, a
        // subsequent `/metrics` fetch must already include this request.
        {
            let mut registry = relock(&shared.registry);
            registry.incr("serve.requests");
            if let Some(counter) = malformed_counter(response.status) {
                registry.incr(counter);
            }
        }
        // A write error means the client went away; the connection
        // closes when it drops, so there is nothing to clean up.
        let mut writer = &conn;
        if response
            .write_framed(&mut writer, close, head_only)
            .is_err()
            || close
        {
            return;
        }
        if served == 1 {
            // Between requests the idle window applies, not the
            // per-frame read timeout.
            let _ = conn.set_read_timeout(Some(config.idle_timeout));
        }
    }
}

/// The async job-runner loop: claims queued jobs, executes them through
/// the same cached path as `/v1/run`, and records the terminal state.
/// On shutdown, runners drain every job still claimable, then exit.
fn job_runner_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut jobs = relock(&shared.jobs);
            loop {
                if let Some(claim) = jobs.claim_next() {
                    break claim;
                }
                if jobs.shutting_down() {
                    return;
                }
                jobs = shared
                    .jobs_ready
                    .wait(jobs)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let (status, body) = run_cached(&spec, shared);
        relock(&shared.jobs).finish(&id, status, body);
    }
}

fn http_error_response(e: &HttpError) -> Response {
    Response::error(e.status(), &e.to_string())
}

fn job_error_response(e: &JobError) -> Response {
    Response::error(e.status(), &e.to_string())
}

/// One job's fate after execution under panic isolation.
enum ExecOutcome {
    /// The run completed and rendered a report.
    Done(JobOutput),
    /// The run was cancelled by its `deadline_cycles` budget.
    Deadline { deadline_cycles: u64, cycle: u64 },
    /// The workload did not resolve at execution time — a trace id with
    /// no stored trace behind it (never uploaded, or evicted).
    Unresolved(String),
    /// The run panicked; the worker caught it and carries the message.
    Panicked(String),
}

impl ExecOutcome {
    /// The HTTP status for this outcome: 200 report, 504 deadline kill,
    /// 422 unresolved workload, 500 caught panic.
    fn status(&self) -> u16 {
        match self {
            Self::Done(_) => 200,
            Self::Deadline { .. } => 504,
            Self::Unresolved(_) => 422,
            Self::Panicked(_) => 500,
        }
    }

    /// The response body for this outcome — also the element rendered
    /// into a `/v1/batch` array, so batch ≡ concatenated singles holds
    /// for failed jobs too.
    fn body(&self) -> String {
        match self {
            Self::Done(output) => output.body.clone(),
            Self::Deadline {
                deadline_cycles,
                cycle,
            } => format!(
                "{{\"error\":\"job exceeded its cycle deadline\",\"kind\":\"deadline\",\
                 \"deadline_cycles\":{deadline_cycles},\"cycles\":{cycle}}}"
            ),
            Self::Unresolved(msg) => format!(
                "{{\"error\":{},\"kind\":\"unresolved_workload\"}}",
                json::escape(msg)
            ),
            Self::Panicked(msg) => format!(
                "{{\"error\":{},\"kind\":\"panic\"}}",
                json::escape(&format!("job panicked: {msg}"))
            ),
        }
    }

    /// Folds this job into the service registry (the caller holds the
    /// lock so batch elements fold atomically).
    fn count_into(&self, registry: &mut MetricsRegistry) {
        match self {
            Self::Done(output) => {
                registry.incr("serve.jobs");
                if let Some(job_registry) = &output.registry {
                    registry.merge(job_registry);
                }
            }
            Self::Deadline { .. } => registry.incr("serve.deadline_killed"),
            Self::Unresolved(_) => registry.incr("trace.unresolved"),
            Self::Panicked(_) => registry.incr("serve.panicked"),
        }
    }
}

/// Best-effort text from a caught panic payload (`panic!` carries
/// `&str` or `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one spec under `catch_unwind`: the worker thread survives any
/// panic inside the harness or a `chaos_panic` hook, and a deadline
/// cancellation comes back as data. `AssertUnwindSafe` is sound here
/// because the closure owns everything it touches — the spec is read
/// only, the resolver only clones `Arc`s out of the trace table, and
/// all run state is constructed, used, and dropped inside.
fn execute_spec(spec: &JobSpec, shared: &Shared) -> ExecOutcome {
    let traces = SharedTraces(shared);
    match catch_unwind(AssertUnwindSafe(|| spec.run_with(&traces))) {
        Ok(Ok(output)) => ExecOutcome::Done(output),
        Ok(Err(JobRunError::Run(RunError::DeadlineExceeded {
            deadline_cycles,
            cycle,
        }))) => ExecOutcome::Deadline {
            deadline_cycles,
            cycle,
        },
        Ok(Err(JobRunError::Source(e))) => ExecOutcome::Unresolved(e.to_string()),
        Ok(Err(e)) => ExecOutcome::Panicked(format!("unexpected run error: {e}")),
        Err(payload) => ExecOutcome::Panicked(panic_message(payload.as_ref())),
    }
}

/// Runs one spec through the result cache, with full accounting, and
/// returns the `(status, body)` every caller — `/v1/run`, a `/v1/batch`
/// element, a job runner — answers with.
///
/// A hit replays the stored result: same status, same body bytes, and
/// the same registry accounting a fresh run would have performed
/// (`serve.jobs` + registry merge for a report, `serve.deadline_killed`
/// for a deadline kill), plus `serve.cache.hit`. The determinism
/// contract is what makes this sound — the stored bytes *are* the bytes
/// a fresh run would produce. A miss counts `serve.cache.miss`, runs,
/// and caches any non-panic outcome; panics are never cached (there is
/// no deterministic result to replay) and `chaos_panic` specs bypass
/// the cache entirely.
fn run_cached(spec: &JobSpec, shared: &Shared) -> (u16, String) {
    let key = spec.cacheable().then(|| CacheKey::of(&spec.canonical()));
    if let Some(key) = key {
        if let Some(hit) = relock(&shared.cache).get(key) {
            let mut registry = relock(&shared.registry);
            registry.incr("serve.cache.hit");
            if hit.status == 200 {
                registry.incr("serve.jobs");
                match &spec.workload {
                    WorkloadSource::Trace(_) => registry.incr("trace.replayed"),
                    WorkloadSource::Fitted(_) => registry.incr("trace.fitted"),
                    _ => {}
                }
                if let Some(job_registry) = &hit.registry {
                    registry.merge(job_registry);
                }
            } else {
                registry.incr("serve.deadline_killed");
            }
            return (hit.status, hit.body);
        }
        relock(&shared.registry).incr("serve.cache.miss");
    }
    let outcome = execute_spec(spec, shared);
    {
        let mut registry = relock(&shared.registry);
        outcome.count_into(&mut registry);
        if matches!(outcome, ExecOutcome::Done(_)) {
            match &spec.workload {
                WorkloadSource::Trace(_) => registry.incr("trace.replayed"),
                WorkloadSource::Fitted(_) => registry.incr("trace.fitted"),
                _ => {}
            }
        }
    }
    let status = outcome.status();
    let body = outcome.body();
    if let Some(key) = key {
        // An unresolved workload is never cached: the trace table is
        // mutable (uploads and evictions), so "unknown trace" today can
        // be a real report tomorrow. Done outcomes of trace-backed
        // specs ARE cacheable — the id is content-addressed, so the
        // same id always names the same bytes.
        let store = match &outcome {
            ExecOutcome::Done(output) => Some(output.registry.clone()),
            ExecOutcome::Deadline { .. } => Some(None),
            ExecOutcome::Unresolved(_) | ExecOutcome::Panicked(_) => None,
        };
        if let Some(registry) = store {
            let evicted = relock(&shared.cache).insert(
                key,
                CachedResult {
                    status,
                    body: body.clone(),
                    registry,
                },
            );
            if evicted {
                relock(&shared.registry).incr("serve.cache.evict");
            }
        }
    }
    (status, body)
}

fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        // HEAD gets the GET headers (content-length included) with the
        // body suppressed at write time — liveness probes over
        // keep-alive use it.
        ("GET" | "HEAD", "/healthz") => Response::json("{\"status\":\"ok\"}".to_string()),
        ("GET" | "HEAD", "/metrics") => {
            let snapshot = relock(&shared.registry).snapshot();
            Response::csv(snapshot.to_csv())
        }
        ("POST", "/v1/run") => run_one(&request.body, shared),
        ("POST", "/v1/batch") => run_batch(&request.body, shared),
        ("POST", "/v1/jobs") => submit_job(&request.body, shared),
        ("POST", "/v1/traces") => upload_trace(&request.body, shared),
        (_, "/healthz" | "/metrics") => Response::method_not_allowed("GET, HEAD"),
        (_, "/v1/run" | "/v1/batch" | "/v1/jobs" | "/v1/traces") => {
            Response::method_not_allowed("POST")
        }
        (method, path) => match path.strip_prefix("/v1/jobs/") {
            Some(id) => match method {
                "GET" => job_status(id, shared),
                "DELETE" => job_cancel(id, shared),
                _ => Response::method_not_allowed("GET, DELETE"),
            },
            None => Response::error(404, "unknown path"),
        },
    }
}

fn run_one(body: &[u8], shared: &Shared) -> Response {
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return job_error_response(&e),
    };
    let (status, body) = run_cached(&spec, shared);
    Response::json_status(status, body)
}

/// `POST /v1/jobs`: decode, derive the deterministic content-addressed
/// id, enqueue (or dedupe), answer 202.
fn submit_job(body: &[u8], shared: &Shared) -> Response {
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return job_error_response(&e),
    };
    let id = CacheKey::of(&spec.canonical()).hex();
    let submitted = relock(&shared.jobs).submit(id.clone(), spec);
    let state = match submitted {
        Submitted::Queued { evicted } => {
            if evicted {
                relock(&shared.registry).incr("serve.jobs.evicted");
            }
            shared.jobs_ready.notify_one();
            "queued"
        }
        Submitted::Existing(label) => label,
        Submitted::Full => {
            return Response {
                retry_after: Some(1),
                ..Response::error(503, "job table full of live jobs; retry shortly")
            };
        }
    };
    Response::json_status(202, format!("{{\"job\":\"{id}\",\"state\":\"{state}\"}}"))
}

/// `POST /v1/traces`: ingest a binary `FTSPMTRC` trace. The body is
/// decoded up front (a malformed upload is rejected now, not at run
/// time), addressed by content (`TraceId::of` over the raw bytes, so
/// re-uploads are idempotent), and stored in the bounded trace table.
/// Torn or incomplete traces are rejected too: replay determinism
/// demands the full op stream, and the recorded checksum covers it.
/// The HTTP layer's body cap (1 MiB) bounds upload size with a 413.
fn upload_trace(body: &[u8], shared: &Shared) -> Response {
    let reject = |msg: &str, shared: &Shared| {
        relock(&shared.registry).incr("trace.rejected");
        Response {
            body: format!("{{\"error\":{},\"kind\":\"bad_trace\"}}", json::escape(msg))
                .into_bytes(),
            ..Response::error(400, msg)
        }
    };
    let (trace, tail) = match Trace::decode(body) {
        Ok(decoded) => decoded,
        Err(e) => return reject(&format!("trace rejected: {e}"), shared),
    };
    if tail == Tail::Torn || !trace.complete() {
        return reject(
            "trace rejected: torn tail (incomplete op stream; re-record and re-upload)",
            shared,
        );
    }
    let id = TraceId::of(body);
    let name = trace.name.clone();
    let ops = trace.op_count;
    let stored = relock(&shared.traces).insert(id, Arc::new(trace));
    let state = {
        let mut registry = relock(&shared.registry);
        match stored {
            Stored::Added { evicted } => {
                registry.incr("trace.uploaded");
                if evicted {
                    registry.incr("trace.evicted");
                }
                "stored"
            }
            Stored::Existing => "exists",
        }
    };
    Response::json_status(
        200,
        format!(
            "{{\"trace\":\"{id}\",\"name\":{},\"ops\":{ops},\"state\":\"{state}\"}}",
            json::escape(&name)
        ),
    )
}

/// `GET /v1/jobs/{id}`: a pending job reports its state; a finished job
/// replays its terminal response — the exact status and bytes `/v1/run`
/// would have answered.
fn job_status(id: &str, shared: &Shared) -> Response {
    match relock(&shared.jobs).get(id) {
        None => Response::error(404, "unknown job"),
        Some(JobState::Finished { status, body }) => Response::json_status(*status, body.clone()),
        Some(state) => Response::json_status(
            200,
            format!("{{\"job\":\"{id}\",\"state\":\"{}\"}}", state.label()),
        ),
    }
}

/// `DELETE /v1/jobs/{id}`: cancels a queued job; running and finished
/// jobs answer 409 (their outcome is already determined).
fn job_cancel(id: &str, shared: &Shared) -> Response {
    match relock(&shared.jobs).cancel(id) {
        Cancelled::Done => {
            Response::json_status(200, format!("{{\"job\":\"{id}\",\"state\":\"cancelled\"}}"))
        }
        Cancelled::Conflict(label) => Response::error(
            409,
            &format!("job is {label}; only queued jobs can be cancelled"),
        ),
        Cancelled::Unknown => Response::error(404, "unknown job"),
    }
}

fn run_batch(body: &[u8], shared: &Shared) -> Response {
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return job_error_response(&e.into()),
    };
    let Json::Arr(items) = doc else {
        return Response::error(400, "batch body must be a JSON array of job specs");
    };
    if items.len() > MAX_BATCH_JOBS {
        return Response::error(
            400,
            &format!(
                "batch of {} exceeds the {MAX_BATCH_JOBS}-job cap",
                items.len()
            ),
        );
    }
    let mut specs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match JobSpec::from_json(item) {
            Ok(spec) => specs.push(spec),
            Err(e) => return Response::error(400, &format!("job {i}: {e}")),
        }
    }
    // Fan out over the deterministic executor: results come back in
    // input order at any worker count, so the concatenated body is a
    // pure function of the request. Each element runs under its own
    // panic isolation and through the result cache — a panicking or
    // deadline-killed job renders its typed error object in place
    // while its neighbours report normally, and a cached element
    // replays bytes identical to a fresh run.
    let results = par::par_map_threads(shared.config.workers, specs, |spec| {
        run_cached(&spec, shared).1
    });
    let mut merged = String::from("[");
    for (i, body) in results.iter().enumerate() {
        if i > 0 {
            merged.push(',');
        }
        merged.push_str(body);
    }
    merged.push(']');
    Response::json(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspm_testkit::{ephemeral_listener, http_request};

    fn boot(workers: usize) -> Server {
        let (listener, _) = ephemeral_listener();
        Server::start(
            listener,
            ServeConfig {
                workers: NonZeroUsize::new(workers).expect("nonzero workers"),
                ..ServeConfig::default()
            },
        )
        .expect("boot")
    }

    /// Runs `f` with the default panic hook silenced: these tests
    /// deliberately panic inside worker threads, and the isolation
    /// under test catches every one, so the default hook's backtrace
    /// spew is pure noise. The hook is process-global, so tests using
    /// this helper serialise on a lock.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK: Mutex<()> = Mutex::new(());
        let _guard = relock(&HOOK);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(previous);
        result.unwrap_or_else(|p| std::panic::resume_unwind(p))
    }

    #[test]
    fn healthz_and_unknown_paths_route() {
        let server = boot(2);
        let ok = http_request(server.addr(), "GET", "/healthz", b"").expect("healthz");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body_str(), "{\"status\":\"ok\"}");
        let missing = http_request(server.addr(), "GET", "/nope", b"").expect("404");
        assert_eq!(missing.status, 404);
        let wrong_method = http_request(server.addr(), "POST", "/healthz", b"{}").expect("405");
        assert_eq!(wrong_method.status, 405);
        let wrong_method = http_request(server.addr(), "GET", "/v1/run", b"").expect("405");
        assert_eq!(wrong_method.status, 405);
    }

    #[test]
    fn malformed_bodies_get_typed_4xx() {
        let server = boot(2);
        let bad_json = http_request(server.addr(), "POST", "/v1/run", b"{not json").expect("reply");
        assert_eq!(bad_json.status, 400);
        assert!(bad_json.body_str().contains("error"));
        // An unknown kernel name is semantically valid JSON with an
        // unprocessable value: 422, and the body lists the real names.
        let bad_spec = http_request(server.addr(), "POST", "/v1/run", br#"{"workload": "nope"}"#)
            .expect("reply");
        assert_eq!(bad_spec.status, 422, "{}", bad_spec.body_str());
        assert!(
            bad_spec.body_str().contains("crc32"),
            "{}",
            bad_spec.body_str()
        );
        let bad_batch = http_request(
            server.addr(),
            "POST",
            "/v1/batch",
            br#"[{"workload": "crc32"}, {"workload": 42}]"#,
        )
        .expect("reply");
        assert_eq!(bad_batch.status, 400);
        assert!(
            bad_batch.body_str().contains("job 1"),
            "{}",
            bad_batch.body_str()
        );
    }

    #[test]
    fn run_serves_a_job_and_metrics_accumulate() {
        let mut server = boot(2);
        let body = br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 200}},
                        "metrics": true}"#;
        let reply = http_request(server.addr(), "POST", "/v1/run", body).expect("run");
        assert_eq!(reply.status, 200, "{}", reply.body_str());
        assert_eq!(reply.header("content-type"), Some("application/json"));
        let report = json::parse(&reply.body).expect("valid report JSON");
        assert_eq!(
            report.get("workload").and_then(Json::as_str),
            Some("synthetic")
        );
        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.header("content-type"), Some("text/csv"));
        assert!(metrics.body_str().contains("serve.jobs,counter,,1"));
        server.shutdown();
    }

    #[test]
    fn a_panicking_job_gets_a_typed_500_and_the_pool_keeps_serving() {
        with_quiet_panics(|| {
            let mut server = boot(1);
            let chaos = br#"{"workload": "crc32", "chaos_panic": true}"#;
            let reply = http_request(server.addr(), "POST", "/v1/run", chaos).expect("reply");
            assert_eq!(reply.status, 500, "{}", reply.body_str());
            let body = json::parse(&reply.body).expect("typed error body");
            assert_eq!(body.get("kind").and_then(Json::as_str), Some("panic"));
            assert!(body
                .get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("chaos_panic")));
            // The sole worker survived: the next job on the same pool
            // is served normally, and /metrics kept working throughout.
            let ok = http_request(
                server.addr(),
                "POST",
                "/v1/run",
                br#"{"workload": "crc32"}"#,
            )
            .expect("reply");
            assert_eq!(ok.status, 200, "{}", ok.body_str());
            let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
            assert!(metrics.body_str().contains("serve.panicked,counter,,1"));
            assert!(metrics.body_str().contains("serve.jobs,counter,,1"));
            server.shutdown();
        });
    }

    #[test]
    fn a_deadline_killed_job_gets_a_typed_504() {
        let server = boot(2);
        let body = br#"{"workload": "crc32", "deadline_cycles": 100}"#;
        let reply = http_request(server.addr(), "POST", "/v1/run", body).expect("reply");
        assert_eq!(reply.status, 504, "{}", reply.body_str());
        let parsed = json::parse(&reply.body).expect("typed error body");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(
            parsed.get("deadline_cycles").and_then(Json::as_u64),
            Some(100)
        );
        assert!(parsed.get("cycles").and_then(Json::as_u64).is_some());
        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        assert!(metrics
            .body_str()
            .contains("serve.deadline_killed,counter,,1"));
    }

    #[test]
    fn batch_elements_fail_independently() {
        with_quiet_panics(|| {
            let server = boot(2);
            let batch = br#"[{"workload": "crc32"},
                            {"workload": "crc32", "chaos_panic": true},
                            {"workload": "crc32", "deadline_cycles": 100}]"#;
            let reply = http_request(server.addr(), "POST", "/v1/batch", batch).expect("reply");
            assert_eq!(reply.status, 200, "{}", reply.body_str());
            let Json::Arr(items) = json::parse(&reply.body).expect("array body") else {
                panic!("batch body must be an array");
            };
            assert_eq!(items.len(), 3);
            assert!(items[0].get("cycles").is_some(), "healthy job reported");
            assert_eq!(items[1].get("kind").and_then(Json::as_str), Some("panic"));
            assert_eq!(
                items[2].get("kind").and_then(Json::as_str),
                Some("deadline")
            );
        });
    }

    #[test]
    fn malformed_requests_count_by_status_class() {
        let server = boot(1);
        let _ = http_request(server.addr(), "POST", "/v1/run", b"{not json").expect("400");
        let _ = http_request(server.addr(), "GET", "/nope", b"").expect("404");
        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        let body = metrics.body_str();
        assert!(body.contains("serve.malformed.400,counter,,1"), "{body}");
        assert!(body.contains("serve.malformed.404,counter,,1"), "{body}");
    }

    #[test]
    fn binding_a_busy_port_is_a_typed_error() {
        let (listener, addr) = ephemeral_listener();
        let err = Server::bind(&addr.to_string(), ServeConfig::default())
            .err()
            .expect("port is held by `listener`");
        assert!(matches!(err, ServeError::Bind { .. }), "{err}");
        assert!(err.to_string().contains("cannot bind"), "{err}");
        drop(listener);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut server = boot(1);
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is released: a fresh bind to the same addr works.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
