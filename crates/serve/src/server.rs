//! The service itself: a bounded-queue accept loop and a worker pool.
//!
//! Threading model: one accept thread pushes accepted connections onto
//! a bounded queue; `workers` pool threads pop and serve them one at a
//! time. When the queue is full the **accept thread** answers `503`
//! with `retry-after` directly — backpressure is explicit and
//! immediate, not a silently growing buffer. Batch requests fan out
//! over `ftspm_testkit::par` with the same worker count, so the ordered
//! seed-substream discipline that makes campaign sharding deterministic
//! also makes `/v1/batch` bodies identical at every pool size.
//!
//! Shutdown is graceful: [`Server::shutdown`] stops accepting, lets the
//! workers drain every connection already queued, and joins all
//! threads. Dropping the server does the same.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ftspm_obs::MetricsRegistry;
use ftspm_testkit::par;

use crate::http::{read_request, HttpError, Request, Response};
use crate::job::{JobError, JobSpec};
use crate::json::{self, Json};

/// Cap on jobs in one `/v1/batch` request.
pub const MAX_BATCH_JOBS: usize = 256;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size; also the `/v1/batch` fan-out width. Defaults
    /// to the `FTSPM_THREADS` knob ([`par::thread_count`]).
    pub workers: NonZeroUsize,
    /// Connections held while all workers are busy; beyond this the
    /// accept thread answers 503. Defaults to 64.
    pub queue_depth: usize,
    /// Socket read/write timeout per connection. A client that stalls
    /// mid-request gets a 408, never a hung worker. Defaults to 5 s.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: par::thread_count(),
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

struct Queue {
    conns: VecDeque<TcpStream>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    registry: Mutex<MetricsRegistry>,
    config: ServeConfig,
}

/// A running service; see the module docs for the threading model.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Boots the service on an already-bound listener (tests use
    /// `ftspm_testkit::ephemeral_listener`; `repro serve` binds an
    /// explicit address).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read or a
    /// service thread cannot be spawned — boot-time failures, not
    /// runtime conditions.
    pub fn start(listener: TcpListener, config: ServeConfig) -> Self {
        let addr = listener.local_addr().expect("bound listener has an addr");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                conns: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            registry: Mutex::new(MetricsRegistry::new()),
            config,
        });
        let workers = (0..shared.config.workers.get())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Self {
            addr,
            shared,
            accept: Some(accept),
            workers,
        }
    }

    /// The address the service is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every already-queued connection, and
    /// joins all service threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.shutdown {
                return;
            }
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        // The accept thread is parked in accept(); poke it awake so it
        // observes the flag. The connection itself is queued and served
        // (or refused) like any other — harmless either way.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // keep serving unless we are shutting down.
                if shared.queue.lock().expect("queue lock").shutdown {
                    return;
                }
                continue;
            }
        };
        let mut q = shared.queue.lock().expect("queue lock");
        if q.shutdown {
            return;
        }
        if q.conns.len() >= shared.config.queue_depth {
            drop(q);
            shared
                .registry
                .lock()
                .expect("registry lock")
                .incr("serve.rejected");
            refuse(conn, shared.config.read_timeout);
            continue;
        }
        q.conns.push_back(conn);
        drop(q);
        shared.ready.notify_one();
    }
}

/// Answers 503 + `retry-after` on the accept thread: backpressure must
/// not depend on a worker becoming free.
fn refuse(mut conn: TcpStream, timeout: Duration) {
    let _ = conn.set_write_timeout(Some(timeout));
    let busy = Response {
        retry_after: Some(1),
        ..Response::error(503, "job queue full; retry shortly")
    };
    let _ = busy.write_to(&mut conn);
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = q.conns.pop_front() {
                    break conn;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).expect("queue lock");
            }
        };
        serve_connection(conn, shared);
    }
}

fn serve_connection(conn: TcpStream, shared: &Shared) {
    let timeout = shared.config.read_timeout;
    let _ = conn.set_read_timeout(Some(timeout));
    let _ = conn.set_write_timeout(Some(timeout));
    let mut reader = BufReader::new(&conn);
    let response = match read_request(&mut reader) {
        Ok(request) => route(&request, shared),
        Err(e) => http_error_response(&e),
    };
    // A write error means the client went away; the connection closes
    // when it drops, so there is nothing to clean up.
    let mut writer = &conn;
    let _ = response.write_to(&mut writer);
    shared
        .registry
        .lock()
        .expect("registry lock")
        .incr("serve.requests");
}

fn http_error_response(e: &HttpError) -> Response {
    Response::error(e.status(), &e.to_string())
}

fn job_error_response(e: &JobError) -> Response {
    Response::error(400, &e.to_string())
}

fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json("{\"status\":\"ok\"}".to_string()),
        ("GET", "/metrics") => {
            let snapshot = shared.registry.lock().expect("registry lock").snapshot();
            Response::csv(snapshot.to_csv())
        }
        ("POST", "/v1/run") => run_one(&request.body, shared),
        ("POST", "/v1/batch") => run_batch(&request.body, shared),
        (_, "/healthz" | "/metrics") => Response::error(405, "use GET"),
        (_, "/v1/run" | "/v1/batch") => Response::error(405, "use POST"),
        _ => Response::error(404, "unknown path"),
    }
}

fn run_one(body: &[u8], shared: &Shared) -> Response {
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return job_error_response(&e),
    };
    let output = spec.run();
    let mut registry = shared.registry.lock().expect("registry lock");
    registry.incr("serve.jobs");
    if let Some(job_registry) = &output.registry {
        registry.merge(job_registry);
    }
    Response::json(output.body)
}

fn run_batch(body: &[u8], shared: &Shared) -> Response {
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return job_error_response(&e.into()),
    };
    let Json::Arr(items) = doc else {
        return Response::error(400, "batch body must be a JSON array of job specs");
    };
    if items.len() > MAX_BATCH_JOBS {
        return Response::error(
            400,
            &format!(
                "batch of {} exceeds the {MAX_BATCH_JOBS}-job cap",
                items.len()
            ),
        );
    }
    let mut specs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match JobSpec::from_json(item) {
            Ok(spec) => specs.push(spec),
            Err(e) => return Response::error(400, &format!("job {i}: {e}")),
        }
    }
    // Fan out over the deterministic executor: results come back in
    // input order at any worker count, so the concatenated body is a
    // pure function of the request.
    let outputs = par::par_map_threads(shared.config.workers, specs, |spec| spec.run());
    let mut merged = String::from("[");
    {
        let mut registry = shared.registry.lock().expect("registry lock");
        for (i, output) in outputs.iter().enumerate() {
            if i > 0 {
                merged.push(',');
            }
            merged.push_str(&output.body);
            registry.incr("serve.jobs");
            if let Some(job_registry) = &output.registry {
                registry.merge(job_registry);
            }
        }
    }
    merged.push(']');
    Response::json(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspm_testkit::{ephemeral_listener, http_request};

    fn boot(workers: usize) -> Server {
        let (listener, _) = ephemeral_listener();
        Server::start(
            listener,
            ServeConfig {
                workers: NonZeroUsize::new(workers).expect("nonzero workers"),
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn healthz_and_unknown_paths_route() {
        let server = boot(2);
        let ok = http_request(server.addr(), "GET", "/healthz", b"").expect("healthz");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body_str(), "{\"status\":\"ok\"}");
        let missing = http_request(server.addr(), "GET", "/nope", b"").expect("404");
        assert_eq!(missing.status, 404);
        let wrong_method = http_request(server.addr(), "POST", "/healthz", b"{}").expect("405");
        assert_eq!(wrong_method.status, 405);
        let wrong_method = http_request(server.addr(), "GET", "/v1/run", b"").expect("405");
        assert_eq!(wrong_method.status, 405);
    }

    #[test]
    fn malformed_bodies_get_typed_4xx() {
        let server = boot(2);
        let bad_json = http_request(server.addr(), "POST", "/v1/run", b"{not json").expect("reply");
        assert_eq!(bad_json.status, 400);
        assert!(bad_json.body_str().contains("error"));
        let bad_spec = http_request(server.addr(), "POST", "/v1/run", br#"{"workload": "nope"}"#)
            .expect("reply");
        assert_eq!(bad_spec.status, 400);
        let bad_batch = http_request(
            server.addr(),
            "POST",
            "/v1/batch",
            br#"[{"workload": "crc32"}, {"workload": 42}]"#,
        )
        .expect("reply");
        assert_eq!(bad_batch.status, 400);
        assert!(
            bad_batch.body_str().contains("job 1"),
            "{}",
            bad_batch.body_str()
        );
    }

    #[test]
    fn run_serves_a_job_and_metrics_accumulate() {
        let mut server = boot(2);
        let body = br#"{"workload": {"synthetic": {"buffer_words": 32, "accesses": 200}},
                        "metrics": true}"#;
        let reply = http_request(server.addr(), "POST", "/v1/run", body).expect("run");
        assert_eq!(reply.status, 200, "{}", reply.body_str());
        assert_eq!(reply.header("content-type"), Some("application/json"));
        let report = json::parse(&reply.body).expect("valid report JSON");
        assert_eq!(
            report.get("workload").and_then(Json::as_str),
            Some("synthetic")
        );
        let metrics = http_request(server.addr(), "GET", "/metrics", b"").expect("metrics");
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.header("content-type"), Some("text/csv"));
        assert!(metrics.body_str().contains("serve.jobs,counter,,1"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut server = boot(1);
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is released: a fresh bind to the same addr works.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
