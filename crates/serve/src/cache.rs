//! Content-addressed result cache.
//!
//! The determinism contract (DESIGN.md §11) says the same decoded job
//! and seed produce byte-identical response bytes — which makes a
//! result cache *provably* correct: a hit returns exactly the bytes a
//! fresh run would have produced, so callers cannot distinguish a hit
//! from a miss by anything but latency and the `serve.cache.*`
//! counters. The key is a 128-bit FNV-1a pair over the **canonical
//! rendering of the decoded spec** ([`crate::JobSpec::canonical`]),
//! not the raw body — whitespace, field order, and defaulted fields
//! (an omitted workload seed vs. the suite default written out) all
//! collapse to one cache line.
//!
//! The cache is a bounded LRU. Capacities are small (default 128
//! entries) because one entry is one full report, so lookup is a
//! linear scan over the recency list — microseconds against the
//! milliseconds a simulation costs, and trivially deterministic.

use ftspm_obs::MetricsRegistry;

/// 128-bit content key: two independent 64-bit FNV-1a streams over the
/// same canonical bytes. FNV is tiny, in-tree, and — with 128 bits
/// against a cache of a few hundred entries — collision-safe for this
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64, u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    let mut hash = offset;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl CacheKey {
    /// Hashes a canonical spec rendering into a key.
    #[must_use]
    pub fn of(canonical: &str) -> Self {
        let bytes = canonical.as_bytes();
        // Second stream: different offset basis (the first stream's
        // offset re-hashed) so the two halves are independent.
        Self(
            fnv1a64(bytes, FNV_OFFSET),
            fnv1a64(bytes, FNV_OFFSET.wrapping_mul(FNV_PRIME) ^ 0x5bd1_e995),
        )
    }

    /// The 32-hex-character rendering — also the job API's job id.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

/// What a finished cacheable job leaves behind: enough to replay both
/// the response *and* its metrics accounting, so a hit is
/// indistinguishable from a fresh run everywhere — response bytes,
/// `/metrics` totals, `serve.jobs` — except the `serve.cache.*`
/// counters.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The HTTP status the original run answered (200 report or 504
    /// deadline; panics are never cached).
    pub status: u16,
    /// The exact response body bytes of the original run.
    pub body: String,
    /// The job's metrics registry when the spec asked for one — folded
    /// into the server totals on every replay, exactly as a fresh run
    /// would fold it.
    pub registry: Option<MetricsRegistry>,
}

/// A bounded LRU of job results keyed by content.
#[derive(Debug)]
pub struct ResultCache {
    /// Recency order: least-recently-used at the front. Capacity is
    /// small, so Vec beats a linked structure in both simplicity and
    /// constants.
    entries: Vec<(CacheKey, CachedResult)>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results; 0 disables
    /// caching entirely (every probe misses, nothing is stored).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<CachedResult> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let result = entry.1.clone();
        self.entries.push(entry);
        Some(result)
    }

    /// Stores `result` under `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns `true` when an eviction
    /// happened (the `serve.cache.evict` counter).
    pub fn insert(&mut self, key: CacheKey, result: CachedResult) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            // Re-inserting an existing key (two concurrent misses on
            // the same job): the bytes are identical by the determinism
            // contract, so just refresh recency.
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return false;
        }
        let evict = self.entries.len() >= self.capacity;
        if evict {
            self.entries.remove(0);
        }
        self.entries.push((key, result));
        evict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            status: 200,
            body: tag.to_string(),
            registry: None,
        }
    }

    #[test]
    fn keys_are_content_addressed_and_stable() {
        let a = CacheKey::of("w=named:crc32:49859;s=ftspm");
        let b = CacheKey::of("w=named:crc32:49859;s=ftspm");
        let c = CacheKey::of("w=named:crc32:49860;s=ftspm");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.hex().len(), 32);
        assert!(a.hex().bytes().all(|b| b.is_ascii_hexdigit()));
        assert_ne!(a.hex(), c.hex());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut cache = ResultCache::new(2);
        assert!(!cache.insert(CacheKey::of("a"), result("a")));
        assert!(!cache.insert(CacheKey::of("b"), result("b")));
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(cache.get(CacheKey::of("a")).expect("hit").body, "a");
        assert!(cache.insert(CacheKey::of("c"), result("c")), "evicts b");
        assert!(cache.get(CacheKey::of("b")).is_none());
        assert!(cache.get(CacheKey::of("a")).is_some());
        assert!(cache.get(CacheKey::of("c")).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_evicting() {
        let mut cache = ResultCache::new(2);
        cache.insert(CacheKey::of("a"), result("a"));
        cache.insert(CacheKey::of("b"), result("b"));
        assert!(!cache.insert(CacheKey::of("a"), result("a")), "no evict");
        assert_eq!(cache.len(), 2);
        // `b` is now the LRU entry.
        assert!(cache.insert(CacheKey::of("c"), result("c")));
        assert!(cache.get(CacheKey::of("b")).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        assert!(!cache.insert(CacheKey::of("a"), result("a")));
        assert!(cache.get(CacheKey::of("a")).is_none());
        assert!(cache.is_empty());
    }
}
