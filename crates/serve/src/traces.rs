//! The uploaded-trace store: bounded, in-memory, content-addressed.
//!
//! `POST /v1/traces` decodes a binary `FTSPMTRC` body, derives its
//! content address ([`TraceId::of`] over the raw bytes), and stores the
//! decoded trace here; jobs then reference it as
//! `{"workload": {"trace": "<id>"}}` (replay) or `{"fit": "<id>"}`
//! (model-fitted regeneration). Because the id is content-addressed,
//! re-uploading the same bytes is idempotent — the table dedupes
//! instead of storing a second copy.
//!
//! The table is bounded like [`crate::jobs::JobTable`], with one
//! difference: every entry is always evictable (a stored trace has no
//! lifecycle — it is data at rest), so an upload never answers 503;
//! when full, the oldest trace is dropped. A job that references an
//! evicted trace gets the typed 422 (`unknown trace`), and re-uploading
//! restores it under the same id.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ftspm_trace::{Trace, TraceId, TraceResolver};

/// What [`TraceTable::insert`] did with an upload.
#[derive(Debug, PartialEq, Eq)]
pub enum Stored {
    /// Newly stored; `evicted` reports whether the oldest trace was
    /// dropped to make room (the `trace.evicted` counter).
    Added {
        /// An old trace was evicted to make room.
        evicted: bool,
    },
    /// The id is already in the table (idempotent re-upload).
    Existing,
}

/// The bounded trace store; one per server, behind a mutex.
pub struct TraceTable {
    entries: HashMap<TraceId, Arc<Trace>>,
    /// Insertion order — the eviction queue.
    order: VecDeque<TraceId>,
    capacity: usize,
}

impl TraceTable {
    /// An empty store holding at most `capacity` traces (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Stores a decoded trace under its content address. Idempotent on
    /// re-upload; evicts the oldest stored trace when full.
    pub fn insert(&mut self, id: TraceId, trace: Arc<Trace>) -> Stored {
        if self.entries.contains_key(&id) {
            return Stored::Existing;
        }
        let mut evicted = false;
        while self.entries.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
            evicted = true;
        }
        self.entries.insert(id, trace);
        self.order.push_back(id);
        Stored::Added { evicted }
    }

    /// The trace stored under `id`, if any.
    #[must_use]
    pub fn get(&self, id: TraceId) -> Option<Arc<Trace>> {
        self.entries.get(&id).cloned()
    }

    /// Stored trace count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl TraceResolver for TraceTable {
    fn resolve(&self, id: TraceId) -> Option<Arc<Trace>> {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspm_trace::record;
    use ftspm_workloads::{Synthetic, SyntheticConfig};

    fn sample(seed: u64) -> (TraceId, Arc<Trace>) {
        let trace = record(&mut Synthetic::new(SyntheticConfig {
            accesses: 50,
            buffer_words: 16,
            seed,
            ..SyntheticConfig::default()
        }))
        .expect("records");
        let id = TraceId::of(&trace.encode());
        (id, Arc::new(trace))
    }

    #[test]
    fn stores_dedupes_and_resolves() {
        let mut table = TraceTable::new(4);
        let (id, trace) = sample(1);
        assert_eq!(
            table.insert(id, Arc::clone(&trace)),
            Stored::Added { evicted: false }
        );
        assert_eq!(table.insert(id, Arc::clone(&trace)), Stored::Existing);
        assert_eq!(table.len(), 1);
        assert_eq!(table.resolve(id).as_deref(), Some(&*trace));
        assert!(table.resolve(TraceId::of(b"other")).is_none());
    }

    #[test]
    fn full_table_evicts_oldest() {
        let mut table = TraceTable::new(2);
        let (id1, t1) = sample(1);
        let (id2, t2) = sample(2);
        let (id3, t3) = sample(3);
        assert_eq!(table.insert(id1, t1), Stored::Added { evicted: false });
        assert_eq!(table.insert(id2, t2), Stored::Added { evicted: false });
        assert_eq!(table.insert(id3, t3), Stored::Added { evicted: true });
        assert_eq!(table.len(), 2);
        assert!(table.get(id1).is_none(), "oldest evicted");
        assert!(table.get(id2).is_some());
        assert!(table.get(id3).is_some());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut table = TraceTable::new(0);
        let (id, trace) = sample(9);
        assert_eq!(table.insert(id, trace), Stored::Added { evicted: false });
        assert!(table.get(id).is_some());
    }
}
