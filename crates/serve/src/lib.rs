//! # ftspm-serve — batched FTSPM evaluation over TCP
//!
//! A zero-dependency HTTP/1.1 service on `std::net` that accepts
//! evaluation jobs as JSON, runs them through the harness front door
//! ([`RunBuilder`]), and streams the report back. Connections are
//! keep-alive: a client may pipeline many requests down one socket
//! (bounded per-connection and by an idle window), and long campaigns
//! go through the async job API instead of pinning a socket. The
//! endpoints:
//!
//! | endpoint | does |
//! |---|---|
//! | `POST /v1/run` | one job → one report |
//! | `POST /v1/batch` | array of jobs → array of reports, fanned out over the worker pool, merged in input order |
//! | `POST /v1/jobs` | submit a job asynchronously → `202` + deterministic content-addressed job id |
//! | `GET /v1/jobs/{id}` | poll a job: state while pending, the terminal report once finished |
//! | `DELETE /v1/jobs/{id}` | cancel a queued job (running/finished → `409`) |
//! | `POST /v1/traces` | upload a binary `FTSPMTRC` access trace → content-addressed trace id for `{"workload": {"trace"\|"fit": id}}` jobs |
//! | `GET`/`HEAD` `/healthz` | liveness probe |
//! | `GET`/`HEAD` `/metrics` | CSV snapshot of the service's metrics registry |
//!
//! Every execution path is fronted by a content-addressed result cache
//! ([`cache`]): identical jobs (by decoded spec, not raw bytes) replay
//! byte-identical responses without re-simulating — provably safe
//! because responses are a pure function of the spec.
//!
//! Contracts (pinned by `tests/differential.rs` and the CI smoke
//! stage):
//!
//! - **Determinism.** The same job body and seed produce byte-identical
//!   response bytes at any worker-pool size, and identical to running
//!   the same spec in-process through [`JobSpec::run`]. Nothing
//!   wall-clock-dependent goes on the wire (no `Date` header); batch
//!   fan-out rides `ftspm_testkit::par`'s ordered executor.
//! - **Backpressure.** The connection queue is bounded; when full, the
//!   accept thread answers `503` with `retry-after` instead of letting
//!   the queue grow.
//! - **Typed failure.** Malformed requests — truncated frames, bad
//!   framing, junk JSON, out-of-range job dials — get a typed 4xx/5xx
//!   with a JSON error body; they never panic a worker or hang a
//!   connection (socket timeouts bound every read).
//! - **Panic isolation.** Every job runs under `catch_unwind`; a
//!   panicking job answers `500` with `{"kind":"panic"}`, a job that
//!   exhausts its `deadline_cycles` budget answers `504` with
//!   `{"kind":"deadline"}`, and in both cases the pool, queue, and
//!   `/metrics` keep working (all locks recover from poisoning).
//! - **Graceful shutdown.** [`Server::shutdown`] drains everything
//!   already queued and joins all service threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod job;
pub mod jobs;
pub mod json;
pub mod server;
pub mod traces;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use ftspm_harness::{RunBuilder, RunError};
pub use ftspm_trace::{TraceId, WorkloadSource};
pub use job::{
    render_multi_report, render_report, structure_token, JobError, JobOutput, JobRunError, JobSpec,
    WorkloadSpec,
};
pub use jobs::{JobState, JobTable};
pub use server::{ServeConfig, ServeError, Server, MAX_BATCH_JOBS};
pub use traces::{Stored, TraceTable};
