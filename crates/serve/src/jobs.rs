//! The async job table: bounded, in-memory, journal-style eviction.
//!
//! `POST /v1/jobs` decouples submitting a campaign from holding a
//! socket for its whole runtime: the server answers `202 Accepted`
//! with a deterministic job id (the result cache's content address,
//! [`crate::cache::CacheKey::hex`]), a dedicated runner pool drains the
//! queue, and clients poll `GET /v1/jobs/{id}` until the terminal
//! report appears. Because the id is content-addressed, resubmitting
//! the same job is idempotent — the table dedupes instead of enqueuing
//! a second run.
//!
//! The table is bounded the same way the harness journal bounds its
//! log: entries live in insertion order, and when the table is full a
//! new submission evicts the **oldest terminal** entry (finished or
//! cancelled — its report has been pollable since it finished, and a
//! re-poll after eviction re-submits and usually lands in the result
//! cache). Queued and running jobs are never evicted; if every entry is
//! still live the submission is refused and the server answers 503,
//! mirroring the connection queue's explicit backpressure.
//!
//! Every job reaches a terminal state: a panicking job finishes as the
//! typed 500 body, a deadline kill as the typed 504 body — the same
//! bodies `/v1/run` would have answered, so polling a finished job is
//! byte-identical to having run it synchronously.

use std::collections::{HashMap, VecDeque};

use crate::job::JobSpec;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner.
    Queued,
    /// Claimed by a runner; no longer cancellable.
    Running,
    /// Cancelled while queued; it never ran.
    Cancelled,
    /// Ran to a terminal outcome: the exact status and body `/v1/run`
    /// would have answered (200 report, 504 deadline, 500 panic).
    Finished {
        /// The HTTP status of the terminal outcome.
        status: u16,
        /// The response body of the terminal outcome.
        body: String,
    },
}

impl JobState {
    /// The wire token for this state (the `"state"` field in job-API
    /// bodies).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Cancelled => "cancelled",
            Self::Finished { .. } => "finished",
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, Self::Cancelled | Self::Finished { .. })
    }
}

/// What [`JobTable::submit`] did with a submission.
#[derive(Debug, PartialEq, Eq)]
pub enum Submitted {
    /// Newly enqueued; `evicted` reports whether an old terminal entry
    /// was dropped to make room (the `serve.jobs.evicted` counter).
    Queued {
        /// An old terminal entry was evicted to make room.
        evicted: bool,
    },
    /// The id is already in the table (idempotent resubmit); carries
    /// the existing entry's state label.
    Existing(&'static str),
    /// The table is full of queued/running jobs; the caller answers
    /// 503.
    Full,
}

/// What [`JobTable::cancel`] did.
#[derive(Debug, PartialEq, Eq)]
pub enum Cancelled {
    /// The job was queued (or already cancelled) and is now cancelled.
    Done,
    /// The job is running or finished; carries its state label for the
    /// 409 body.
    Conflict(&'static str),
    /// No such job.
    Unknown,
}

struct Entry {
    spec: JobSpec,
    state: JobState,
}

/// The bounded job table; one per server, behind a mutex.
pub struct JobTable {
    entries: HashMap<String, Entry>,
    /// Insertion order — the journal the eviction scan walks.
    order: VecDeque<String>,
    /// Ids waiting for a runner, FIFO.
    pending: VecDeque<String>,
    capacity: usize,
    shutdown: bool,
}

impl JobTable {
    /// An empty table holding at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            pending: VecDeque::new(),
            capacity: capacity.max(1),
            shutdown: false,
        }
    }

    /// Number of entries currently tracked (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no jobs are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Submits a job under its content-addressed `id`; see [`Submitted`].
    pub fn submit(&mut self, id: String, spec: JobSpec) -> Submitted {
        if let Some(entry) = self.entries.get(&id) {
            return Submitted::Existing(entry.state.label());
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            let Some(pos) = self
                .order
                .iter()
                .position(|id| self.entries[id].state.terminal())
            else {
                return Submitted::Full;
            };
            let victim = self.order.remove(pos).expect("position is in range");
            self.entries.remove(&victim);
            evicted = true;
        }
        self.entries.insert(
            id.clone(),
            Entry {
                spec,
                state: JobState::Queued,
            },
        );
        self.order.push_back(id.clone());
        self.pending.push_back(id);
        Submitted::Queued { evicted }
    }

    /// Claims the next queued job for a runner, marking it running.
    /// Skips ids whose jobs were cancelled while waiting.
    pub fn claim_next(&mut self) -> Option<(String, JobSpec)> {
        while let Some(id) = self.pending.pop_front() {
            if let Some(entry) = self.entries.get_mut(&id) {
                if entry.state == JobState::Queued {
                    entry.state = JobState::Running;
                    return Some((id, entry.spec.clone()));
                }
            }
        }
        None
    }

    /// Records a claimed job's terminal outcome. A finish for an id
    /// that is not running (evicted meanwhile is impossible — running
    /// jobs are never evicted — so this only guards misuse) is ignored.
    pub fn finish(&mut self, id: &str, status: u16, body: String) {
        if let Some(entry) = self.entries.get_mut(id) {
            if entry.state == JobState::Running {
                entry.state = JobState::Finished { status, body };
            }
        }
    }

    /// The current state of a job, if tracked.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&JobState> {
        self.entries.get(id).map(|e| &e.state)
    }

    /// Cancels a queued job; see [`Cancelled`]. Idempotent on an
    /// already-cancelled job.
    pub fn cancel(&mut self, id: &str) -> Cancelled {
        match self.entries.get_mut(id) {
            None => Cancelled::Unknown,
            Some(entry) => match entry.state {
                JobState::Queued => {
                    entry.state = JobState::Cancelled;
                    // The pending queue still holds the id; claim_next
                    // skips non-queued entries, so no scan is needed.
                    Cancelled::Done
                }
                JobState::Cancelled => Cancelled::Done,
                JobState::Running | JobState::Finished { .. } => {
                    Cancelled::Conflict(entry.state.label())
                }
            },
        }
    }

    /// Flags shutdown: runners drain what is claimed-or-claimable and
    /// exit; see [`JobTable::shutting_down`].
    pub fn begin_shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Whether [`JobTable::begin_shutdown`] has been called.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::parse(br#"{"workload": "crc32"}"#).expect("spec")
    }

    #[test]
    fn the_job_lifecycle_queued_running_finished() {
        let mut table = JobTable::new(4);
        assert_eq!(
            table.submit("a".into(), spec()),
            Submitted::Queued { evicted: false }
        );
        assert_eq!(table.get("a"), Some(&JobState::Queued));
        // Resubmitting the same id dedupes at every stage.
        assert_eq!(
            table.submit("a".into(), spec()),
            Submitted::Existing("queued")
        );
        let (id, _) = table.claim_next().expect("claimable");
        assert_eq!(id, "a");
        assert_eq!(table.get("a"), Some(&JobState::Running));
        assert_eq!(
            table.submit("a".into(), spec()),
            Submitted::Existing("running")
        );
        table.finish("a", 200, "report".into());
        assert_eq!(
            table.get("a"),
            Some(&JobState::Finished {
                status: 200,
                body: "report".into()
            })
        );
        assert_eq!(
            table.submit("a".into(), spec()),
            Submitted::Existing("finished")
        );
        assert!(table.claim_next().is_none());
    }

    #[test]
    fn cancel_only_reaches_queued_jobs() {
        let mut table = JobTable::new(4);
        assert_eq!(table.cancel("ghost"), Cancelled::Unknown);
        table.submit("a".into(), spec());
        table.submit("b".into(), spec());
        assert_eq!(table.cancel("a"), Cancelled::Done);
        assert_eq!(table.cancel("a"), Cancelled::Done, "idempotent");
        assert_eq!(table.get("a"), Some(&JobState::Cancelled));
        // The cancelled job is skipped; `b` is claimed instead.
        let (id, _) = table.claim_next().expect("b claimable");
        assert_eq!(id, "b");
        assert_eq!(table.cancel("b"), Cancelled::Conflict("running"));
        table.finish("b", 200, "report".into());
        assert_eq!(table.cancel("b"), Cancelled::Conflict("finished"));
    }

    #[test]
    fn eviction_drops_the_oldest_terminal_entry_only() {
        let mut table = JobTable::new(2);
        table.submit("a".into(), spec());
        table.submit("b".into(), spec());
        // Both live: a third submission is refused outright.
        assert_eq!(table.submit("c".into(), spec()), Submitted::Full);
        // Finish `a`; now `c` fits by evicting it — even though `b`
        // (still queued) is also ahead of `c` in insertion order.
        let (id, _) = table.claim_next().expect("a");
        assert_eq!(id, "a");
        table.finish(&id, 200, "report".into());
        assert_eq!(
            table.submit("c".into(), spec()),
            Submitted::Queued { evicted: true }
        );
        assert!(table.get("a").is_none(), "a evicted");
        assert_eq!(table.get("b"), Some(&JobState::Queued));
        assert_eq!(table.get("c"), Some(&JobState::Queued));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn finish_for_an_unclaimed_id_is_ignored() {
        let mut table = JobTable::new(2);
        table.submit("a".into(), spec());
        table.finish("a", 200, "report".into());
        assert_eq!(table.get("a"), Some(&JobState::Queued), "not running yet");
        table.finish("ghost", 200, "report".into());
        assert!(table.get("ghost").is_none());
    }
}
