//! Property tests of model extraction: a workload fitted from a trace
//! must regenerate behaviour that *re-fits to the same model* — same
//! block table, write fraction within two points, same phase count.
//! Failures shrink and persist their seeds next to this file.

use ftspm_sim::{Cpu, Dram, Program, SimError};
use ftspm_testkit::prop::{check, int_range, Config};
use ftspm_trace::{fit, record, FittedWorkload};
use ftspm_workloads::{Synthetic, SyntheticConfig, Workload};

fn cfg() -> Config {
    Config::with_cases(32).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fit_props.regressions"
    ))
}

/// Fit → regenerate → re-record → re-fit: the regenerated workload's
/// model matches the source's where the issue's acceptance bar draws
/// the line — block count exactly, R/W mix within ±2%, phase count
/// equal.
#[test]
fn refit_matches_source_model() {
    check(
        &cfg(),
        &(
            int_range(0u32..61),
            int_range(400u32..1600),
            int_range(32u32..96),
            int_range(1u32..6),
            int_range(0u32..10_000),
        ),
        |&(wf_pct, accesses, buffer_words, run_length, seed)| {
            let mut source = Synthetic::new(SyntheticConfig {
                write_fraction: f64::from(wf_pct) / 100.0,
                buffer_words,
                accesses,
                run_length,
                seed: u64::from(seed) | 0x5EED_0000,
            });
            let trace = record(&mut source).expect("synthetic records");
            let model = fit(&trace);
            let mut fitted = FittedWorkload::from_model(&trace, &model);
            let regenerated = record(&mut fitted).expect("fitted workload records");
            // Block count: exact — the fitted workload carries the
            // source program block-for-block.
            assert_eq!(regenerated.program, trace.program);
            let refit = fit(&regenerated);
            assert_eq!(refit.blocks.len(), model.blocks.len());
            // R/W mix: within two percentage points.
            let drift = (refit.write_fraction() - model.write_fraction()).abs();
            assert!(
                drift <= 0.02,
                "write fraction drifted {drift:.4}: {} -> {}",
                model.write_fraction(),
                refit.write_fraction()
            );
            // Phase structure: the regenerated density curve segments
            // into the same number of phases.
            assert_eq!(
                refit.phases.len(),
                model.phases.len(),
                "phase structure not preserved: {:?} -> {:?}",
                model.phases,
                refit.phases
            );
        },
    );
}

/// A two-density workload for the phase detector: a burst phase and a
/// sparse phase an order of magnitude apart.
#[derive(Debug)]
struct TwoPhase {
    program: Program,
}

impl TwoPhase {
    fn new() -> Self {
        let mut b = Program::builder("two_phase");
        b.code("Kernel", 1024, 32);
        b.data("Buf", 2048);
        b.stack(512);
        Self { program: b.build() }
    }
}

impl Workload for TwoPhase {
    fn name(&self) -> &str {
        "two_phase"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn init(&mut self, _dram: &mut Dram) {}

    fn run(&mut self, cpu: &mut Cpu<'_, '_>) -> Result<u64, SimError> {
        let code = self.program.code_blocks()[0];
        let buf = self.program.find("Buf").expect("declared above");
        cpu.call(code)?;
        let mut acc = 0u64;
        for i in 0..600u32 {
            acc = acc.wrapping_add(u64::from(cpu.read_u32(buf, (i % 512) * 4)?));
            cpu.execute(2)?;
        }
        for i in 0..600u32 {
            cpu.write_u32(buf, (i % 512) * 4, i)?;
            cpu.execute(24)?;
        }
        cpu.ret()?;
        Ok(acc)
    }

    fn expected_checksum(&self) -> u64 {
        0
    }
}

/// The detector finds both phases of a two-density workload, and the
/// fitted regeneration preserves them — including their very different
/// write fractions.
#[test]
fn two_phase_structure_survives_refit() {
    let trace = record(&mut TwoPhase::new()).expect("records");
    let model = fit(&trace);
    assert_eq!(model.phases.len(), 2, "detector missed a phase: {model:#?}");
    assert!(model.phases[0].write_fraction() < 0.1);
    assert!(model.phases[1].write_fraction() > 0.9);
    let mut fitted = FittedWorkload::from_model(&trace, &model);
    let regenerated = record(&mut fitted).expect("fitted records");
    let refit = fit(&regenerated);
    assert_eq!(
        refit.phases.len(),
        2,
        "refit lost the phase split: {refit:#?}"
    );
    assert!(refit.phases[0].write_fraction() < 0.1);
    assert!(refit.phases[1].write_fraction() > 0.9);
}

/// The gap histogram and run-length summary are populated and sane.
#[test]
fn model_summaries_are_sane() {
    let trace = record(&mut Synthetic::new(SyntheticConfig {
        accesses: 500,
        ..SyntheticConfig::default()
    }))
    .expect("records");
    let model = fit(&trace);
    assert!(model.accesses >= 500);
    assert!(model.gap_histogram.iter().sum::<u64>() >= model.accesses - 1);
    assert!(model.mean_run_length >= 1.0);
    assert!(model.synthetic.run_length >= 1);
    assert_eq!(model.blocks.len(), trace.program.len());
    // Block stats partition the totals.
    let reads: u64 = model.blocks.iter().map(|b| b.reads).sum();
    let writes: u64 = model.blocks.iter().map(|b| b.writes).sum();
    assert_eq!(reads + writes, model.accesses);
    assert_eq!(writes, model.writes);
}
