//! Property tests of the trace codec: round-trips are identity, and —
//! mirroring the crash journal's discipline — arbitrary bytes,
//! truncations, and single-bit flips must never panic, never fabricate
//! ops, and must classify damage as typed errors rather than silently
//! replaying it. Failures shrink and persist their seeds next to this
//! file.

use ftspm_testkit::prop::{any_int, check, int_range, vec_of, Config};
use ftspm_trace::{record, Tail, Trace, TraceError};
use ftspm_workloads::{Synthetic, SyntheticConfig};

fn cfg() -> Config {
    Config::default().persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/trace_props.regressions"
    ))
}

/// A small, quick-to-record trace shaped by a handful of dials.
fn sample_trace(wf_pct: u32, accesses: u32, buffer_words: u32, seed: u32) -> Trace {
    let mut workload = Synthetic::new(SyntheticConfig {
        write_fraction: f64::from(wf_pct.min(100)) / 100.0,
        buffer_words,
        accesses,
        run_length: 4,
        seed: u64::from(seed),
    });
    record(&mut workload).expect("synthetic workloads always record")
}

/// Encode → decode is identity: clean tail, complete, equal trace.
#[test]
fn round_trip_is_identity() {
    check(
        &Config::with_cases(64).persisting(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/trace_props.regressions"
        )),
        &(
            int_range(0u32..101),
            int_range(1u32..300),
            int_range(16u32..128),
            any_int::<u32>(),
        ),
        |&(wf, accesses, buffer, seed)| {
            let trace = sample_trace(wf, accesses, buffer, seed);
            let bytes = trace.encode();
            let (decoded, tail) = Trace::decode(&bytes).expect("round trip decodes");
            assert_eq!(tail, Tail::Clean);
            assert!(decoded.complete());
            assert_eq!(decoded, trace);
        },
    );
}

/// Arbitrary bytes decode to a value or a typed error — never a panic
/// — and anything that does decode re-encodes to itself.
#[test]
fn decoder_never_panics_on_junk() {
    check(
        &cfg(),
        &vec_of(any_int::<u8>(), 0..600),
        |bytes: &Vec<u8>| {
            if let Ok((trace, _tail)) = Trace::decode(bytes) {
                let reencoded = trace.encode();
                let (again, _) = Trace::decode(&reencoded).expect("re-encode decodes");
                assert_eq!(again.records, trace.records);
            }
        },
    );
}

/// Every truncation of a valid trace is either a torn tail holding a
/// clean prefix of the ops, or — when the cut lands before the header
/// chunk completes — a typed [`TraceError::Truncated`]. Never
/// `Corrupt`, never `Malformed`, never a panic, never invented ops.
#[test]
fn truncations_yield_a_clean_prefix_or_truncated() {
    let trace = sample_trace(30, 220, 64, 0xA11CE);
    let full = trace.encode();
    check(&cfg(), &any_int::<u32>(), |&cut_seed| {
        let cut = cut_seed as usize % (full.len() + 1);
        match Trace::decode(&full[..cut]) {
            Err(TraceError::Truncated) | Err(TraceError::BadHeader) => {}
            Err(e) => panic!("truncation must never classify as damage: {e}"),
            Ok((prefix, tail)) => {
                assert_eq!(prefix.name, trace.name);
                assert_eq!(prefix.program, trace.program);
                assert_eq!(prefix.init, trace.init);
                assert_eq!(prefix.op_count, trace.op_count);
                assert!(
                    prefix.records.len() <= trace.records.len()
                        && prefix.records == trace.records[..prefix.records.len()],
                    "decoded ops must be a prefix of the originals"
                );
                if cut == full.len() {
                    assert_eq!(tail, Tail::Clean);
                    assert!(prefix.complete());
                } else {
                    assert_eq!(tail, Tail::Torn);
                }
            }
        }
    });
}

/// A single flipped bit never panics and never fabricates ops: either a
/// typed error, or a decode whose ops are a prefix of the originals.
#[test]
fn bit_flips_never_fabricate_ops() {
    let trace = sample_trace(50, 180, 48, 0xB0B);
    let full = trace.encode();
    check(&cfg(), &any_int::<u32>(), |&flip_seed| {
        let mut bytes = full.clone();
        let bit = flip_seed as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match Trace::decode(&bytes) {
            Err(_) => {}
            Ok((decoded, _)) => {
                assert!(
                    decoded.records.len() <= trace.records.len()
                        && decoded.records == trace.records[..decoded.records.len()],
                    "a bit flip must not fabricate or reorder ops"
                );
            }
        }
    });
}

/// Replay is a fixed point of recording: re-recording a trace's replay
/// reproduces the *identical* trace — same name, program, init, op
/// stream, and checksum. This is the in-process half of the
/// byte-identical-replay guarantee.
#[test]
fn replay_re_records_to_the_identical_trace() {
    let trace = sample_trace(25, 240, 96, 0x5EED);
    let shared = std::sync::Arc::new(trace.clone());
    let mut replay = ftspm_trace::TraceWorkload::new(shared);
    let again = record(&mut replay).expect("replay records");
    assert_eq!(again, trace);
}

/// Named regression: a trace cut mid-chunk-header (inside the 8-byte
/// len+CRC frame of an op chunk) is a torn tail with the header and
/// earlier chunks intact — the crash signature of an interrupted
/// upload or copy.
#[test]
fn cut_mid_chunk_header_is_a_torn_tail() {
    let trace = sample_trace(40, 200, 64, 7);
    let full = trace.encode();
    // The header chunk starts at byte 10 (magic + version); walk its
    // frame to find where the first op chunk begins.
    let header_len = u32::from_le_bytes(full[10..14].try_into().unwrap()) as usize;
    let second_chunk = 10 + 8 + header_len;
    assert!(second_chunk + 8 < full.len(), "trace has op chunks");
    for cut in second_chunk + 1..second_chunk + 8 {
        let (prefix, tail) = Trace::decode(&full[..cut]).expect("mid-frame cut is torn, not bad");
        assert_eq!(tail, Tail::Torn);
        assert_eq!(prefix.program, trace.program);
        assert!(prefix.records.is_empty());
    }
}
