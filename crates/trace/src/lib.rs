//! External access traces: record, encode, replay, and fit.
//!
//! This crate gives the evaluation pipeline a fourth kind of workload
//! input — *recorded behaviour* — alongside the built-in kernels and
//! parametric synthetics:
//!
//! - [`record()`] runs any [`Workload`](ftspm_workloads::Workload) on a
//!   private ideal machine with the CPU's op tap armed and captures the
//!   full public op sequence, the program shape, and the initial-memory
//!   snapshot.
//! - [`Trace::encode`] / [`Trace::decode`] round the capture through
//!   the `FTSPMTRC` binary format: a versioned header plus
//!   varint-delta-encoded record chunks, each framed with the length +
//!   CRC32 discipline the crash journal uses, so a torn tail degrades
//!   to a clean prefix instead of an error.
//! - [`TraceWorkload`] replays a decoded trace as an ordinary workload:
//!   the evaluation pipeline cannot tell replay from the original run,
//!   and the rendered report is byte-identical.
//! - [`fit`] extracts a compact behavioural model (per-block lifetimes,
//!   R/W mix, phase structure, gap histogram), and [`FittedWorkload`]
//!   regenerates a synthetic workload from it that preserves the
//!   source's block count, write fraction, and phase structure.
//! - [`WorkloadSource`] is the redesigned naming seam: jobs and tools
//!   describe any of the four workload forms with one value and build
//!   it through one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod format;
pub mod record;
pub mod replay;
pub mod source;

pub use extract::{fit, fitted, BlockUse, FittedWorkload, PhaseModel, TraceModel};
pub use format::{
    BlockInit, Tail, Trace, TraceError, TraceId, TraceOp, TraceRecord, MAGIC, MAX_CODE_BYTES,
    MAX_DATA_BYTES, MAX_OPS, VERSION,
};
pub use record::{record, RecordError};
pub use replay::TraceWorkload;
pub use source::{NoTraces, SourceError, TraceResolver, WorkloadSource};
