//! Recording: run a workload once on a private ideal machine with the
//! CPU op tap armed, and capture everything a replay needs.
//!
//! The recording machine mirrors the harness's profiling structure —
//! two 256 KiB unprotected-SRAM regions, code in one, data in the other
//! — because recording must not disturb the op stream, and that
//! structure never faults, never remaps, and holds every replayable
//! program whole. The op stream a workload issues through the public
//! [`Cpu`] API is *machine-independent* (kernels
//! compute over values, and all values are exact on every structure),
//! so a trace recorded here replays identically on FTSPM and both
//! baselines.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    BlockKind, Cpu, CpuOp, Machine, MachineConfig, NullObserver, PlacementMap, RegionId, SimError,
    SpmRegionSpec,
};
use ftspm_workloads::{Checksum, Workload};

use crate::format::{
    BlockInit, Trace, TraceOp, TraceRecord, MAX_CODE_BYTES, MAX_DATA_BYTES, MAX_OPS,
};

/// Why a workload could not be recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The program's code or data footprint exceeds what a trace may
    /// declare ([`MAX_CODE_BYTES`] / [`MAX_DATA_BYTES`]): it could
    /// never replay through the profiling structure.
    TooLarge {
        /// Total code bytes declared.
        code_bytes: u64,
        /// Total data bytes declared (stack included).
        data_bytes: u64,
    },
    /// The workload issued more ops than a trace may carry.
    TooManyOps,
    /// The workload itself failed on the recording machine.
    Sim(SimError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooLarge {
                code_bytes,
                data_bytes,
            } => write!(
                f,
                "program too large to trace: {code_bytes} code / {data_bytes} data bytes \
                 (caps {MAX_CODE_BYTES} / {MAX_DATA_BYTES})"
            ),
            Self::TooManyOps => write!(f, "workload issued more than {MAX_OPS} ops"),
            Self::Sim(e) => write!(f, "workload failed while recording: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<SimError> for RecordError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

fn recording_regions() -> Vec<SpmRegionSpec> {
    vec![
        SpmRegionSpec::new(
            "TraceCode",
            Technology::SramUnprotected,
            ProtectionScheme::None,
            RegionGeometry::from_kib(256),
        ),
        SpmRegionSpec::new(
            "TraceData",
            Technology::SramUnprotected,
            ProtectionScheme::None,
            RegionGeometry::from_kib(256),
        ),
    ]
}

/// Records one full run of `workload` into a [`Trace`].
///
/// # Errors
///
/// [`RecordError::TooLarge`] when the program cannot fit a trace's
/// replayable footprint, [`RecordError::TooManyOps`] when the run
/// overflows the op cap, [`RecordError::Sim`] when the workload itself
/// errors.
pub fn record(workload: &mut dyn Workload) -> Result<Trace, RecordError> {
    let program = workload.program().clone();
    let code_bytes: u64 = program
        .iter()
        .filter(|(_, s)| s.kind() == BlockKind::Code)
        .map(|(_, s)| u64::from(s.size_bytes()))
        .sum();
    let data_bytes: u64 = program
        .iter()
        .filter(|(_, s)| s.kind() == BlockKind::Data)
        .map(|(_, s)| u64::from(s.size_bytes()))
        .sum();
    if code_bytes > u64::from(MAX_CODE_BYTES) || data_bytes > u64::from(MAX_DATA_BYTES) {
        return Err(RecordError::TooLarge {
            code_bytes,
            data_bytes,
        });
    }
    let regions = recording_regions();
    let mut placement = PlacementMap::new(&program, &regions);
    for (id, spec) in program.iter() {
        let region = match spec.kind() {
            BlockKind::Code => RegionId::new(0),
            BlockKind::Data => RegionId::new(1),
        };
        placement
            .place(&program, id, region)
            .expect("footprint checked against the region capacity above");
    }
    let mut machine = Machine::new(
        MachineConfig::with_regions(regions),
        program.clone(),
        placement,
    )?;
    workload.init(machine.dram_mut());
    // Snapshot what init wrote: DRAM is zero-initialised, so the
    // nonzero words of each data block are the whole picture.
    let mut init = Vec::new();
    for (id, spec) in program.iter() {
        if spec.kind() != BlockKind::Data {
            continue;
        }
        let words: Vec<(u32, u32)> = (0..spec.size_bytes() / 4)
            .filter_map(|w| {
                let value = machine.dram().peek_word(id, w * 4);
                (value != 0).then_some((w, value))
            })
            .collect();
        if !words.is_empty() {
            init.push(BlockInit { block: id, words });
        }
    }
    let mut observer = NullObserver;
    let mut cpu = Cpu::new(&mut machine, &mut observer);
    cpu.start_op_tap();
    workload.run(&mut cpu)?;
    let tapped = cpu.take_op_tap();
    if tapped.len() as u64 > MAX_OPS {
        return Err(RecordError::TooManyOps);
    }
    // The replay checksum folds every value the run's loads observed,
    // in op order; a replay recomputes the same fold from its own
    // loads, so it only matches when replay reproduced the run.
    let mut fold = Checksum::new();
    let records = tapped
        .into_iter()
        .map(|t| {
            let op = match t.op {
                CpuOp::Call { block } => TraceOp::Call { block },
                CpuOp::Ret => TraceOp::Ret,
                CpuOp::Execute { count } => TraceOp::Execute { count },
                CpuOp::Read {
                    block,
                    offset,
                    value,
                } => {
                    fold.push(value);
                    TraceOp::Read { block, offset }
                }
                CpuOp::Write {
                    block,
                    offset,
                    value,
                } => TraceOp::Write {
                    block,
                    offset,
                    value,
                },
                CpuOp::StackRead { offset, value } => {
                    fold.push(value);
                    TraceOp::StackRead { offset }
                }
                CpuOp::StackWrite { offset, value } => TraceOp::StackWrite { offset, value },
            };
            TraceRecord { cycle: t.cycle, op }
        })
        .collect::<Vec<_>>();
    Ok(Trace {
        name: workload.name().to_string(),
        program,
        init,
        expected_checksum: fold.value(),
        op_count: records.len() as u64,
        records,
    })
}
