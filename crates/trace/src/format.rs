//! The `FTSPMTRC` binary access-trace format: writer, streaming reader,
//! and the content-addressed trace id.
//!
//! ## Layout
//!
//! A trace file is a 10-byte header — the [`MAGIC`] `FTSPMTRC` plus a
//! little-endian u16 [`VERSION`] — followed by *chunks*, each framed
//! exactly like a `harness::journal` record: `len: u32 LE | crc: u32 LE
//! | payload`, with the CRC32 ([`ftspm_harness::journal::crc32`], the
//! bitwise IEEE polynomial) taken over the payload. Chunk 0 is the
//! *header chunk* (program shape, initial-memory snapshot, replay
//! checksum, op count); every later chunk carries a run of op records,
//! so readers stream chunk by chunk instead of slurping one giant
//! record.
//!
//! Op records are varint-encoded (LEB128) with *cycle deltas*: each
//! record stores a tag byte, the cycle distance from the previous op,
//! and the tag's operands. Initial-memory snapshots are sparse
//! (index-delta + value pairs over the zero-initialised DRAM image), so
//! a kernel with a large mostly-zero matrix stays compact.
//!
//! ## Torn tails
//!
//! The reader tolerates torn tails with the journal's exact semantics:
//! complete, CRC-valid chunks decode; a trailing partial chunk is
//! dropped and reported as [`Tail::Torn`]; a CRC mismatch on a
//! *complete* chunk is [`TraceError::Corrupt`] (real corruption, not a
//! torn write, which can only shorten the tail). A tail torn before the
//! header chunk completed leaves nothing to replay and decodes to
//! [`TraceError::Truncated`].

use ftspm_harness::journal::crc32;
pub use ftspm_harness::journal::Tail;
use ftspm_sim::{BlockId, BlockKind, Program};

/// Leading magic: identifies a byte stream as an FTSPM access trace.
pub const MAGIC: [u8; 8] = *b"FTSPMTRC";

/// Format version, bumped on any incompatible layout change.
pub const VERSION: u16 = 1;

/// Cap on declared code bytes: the replay pipeline's ideal profiling
/// regions are 256 KiB per side, and profiling maps *everything*, so a
/// trace whose program cannot fit would only ever fail later.
pub const MAX_CODE_BYTES: u32 = 256 * 1024;

/// Cap on declared data bytes (stack included); same rationale as
/// [`MAX_CODE_BYTES`].
pub const MAX_DATA_BYTES: u32 = 256 * 1024;

/// Cap on declared program blocks.
pub const MAX_BLOCKS: usize = 64;

/// Cap on total op records in one trace.
pub const MAX_OPS: u64 = 4_000_000;

/// Cap on a single `Execute` record's instruction count — bounds how
/// much simulation one record can order.
pub const MAX_EXECUTE_COUNT: u32 = 1 << 16;

/// Target payload size per op chunk (the writer flushes past this).
const CHUNK_TARGET_BYTES: usize = 32 * 1024;

/// One replayable CPU operation (the value-free mirror of
/// `ftspm_sim::CpuOp`: read values are *recomputed* at replay, not
/// stored, which is what makes the replay-checksum comparison
/// meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Call into code block `block`.
    Call {
        /// Callee block index.
        block: BlockId,
    },
    /// Return from the current frame.
    Ret,
    /// Fetch `count` straight-line instructions.
    Execute {
        /// Instructions fetched.
        count: u32,
    },
    /// Word load; the loaded value feeds the replay checksum.
    Read {
        /// Source block.
        block: BlockId,
        /// Byte offset of the word.
        offset: u32,
    },
    /// Word store of `value`.
    Write {
        /// Destination block.
        block: BlockId,
        /// Byte offset of the word.
        offset: u32,
        /// Stored value.
        value: u32,
    },
    /// Frame-relative stack load; feeds the replay checksum.
    StackRead {
        /// Frame-relative byte offset.
        offset: u32,
    },
    /// Frame-relative stack store.
    StackWrite {
        /// Frame-relative byte offset.
        offset: u32,
        /// Stored value.
        value: u32,
    },
}

/// A trace op stamped with the machine cycle at which it was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issue cycle (nondecreasing across a trace).
    pub cycle: u64,
    /// The operation.
    pub op: TraceOp,
}

/// Sparse initial-memory snapshot of one data block: `(word index,
/// value)` pairs in increasing index order, zeros omitted (DRAM is
/// zero-initialised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInit {
    /// The data block.
    pub block: BlockId,
    /// Nonzero words, by increasing word index.
    pub words: Vec<(u32, u32)>,
}

/// A decoded (or recorded) access trace: everything needed to replay
/// the source workload's exact memory event stream on a fresh machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The recorded workload's name (reported by replays).
    pub name: String,
    /// The program shape, rebuilt block-for-block.
    pub program: Program,
    /// Sparse initial-memory snapshots, one per data block with any
    /// nonzero words.
    pub init: Vec<BlockInit>,
    /// The replay checksum: an FNV fold over every value the recorded
    /// run's loads observed, in op order. A replay recomputes it.
    pub expected_checksum: u64,
    /// Declared op count; `records.len()` equals this unless the tail
    /// was torn.
    pub op_count: u64,
    /// The ops, in issue order (a clean prefix when torn).
    pub records: Vec<TraceRecord>,
}

/// Why a byte stream failed to decode as a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The stream does not start with [`MAGIC`] + [`VERSION`].
    BadHeader,
    /// The tail tore before the header chunk completed: nothing
    /// replayable survives.
    Truncated,
    /// A complete chunk's CRC does not match its payload — corruption,
    /// not a torn write.
    Corrupt {
        /// Zero-based index of the corrupt chunk.
        chunk: usize,
    },
    /// The chunks decoded but their contents violate the format or its
    /// caps; the message names the violation.
    Malformed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader => write!(f, "not an FTSPM trace (bad magic or version)"),
            Self::Truncated => write!(f, "trace truncated before the header chunk completed"),
            Self::Corrupt { chunk } => write!(f, "chunk {chunk} failed its CRC check"),
            Self::Malformed(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn malformed(msg: impl Into<String>) -> TraceError {
    TraceError::Malformed(msg.into())
}

// ---------------------------------------------------------------------
// Varints (LEB128).

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| malformed("varint runs off the chunk end"))?;
        *pos += 1;
        let payload = u64::from(byte & 0x7F);
        if shift == 9 && payload > 1 {
            return Err(malformed("varint overflows u64"));
        }
        v |= payload << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(malformed("varint longer than 10 bytes"))
}

fn get_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, TraceError> {
    u32::try_from(get_varint(bytes, pos)?).map_err(|_| malformed(format!("{what} exceeds u32")))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize, what: &str) -> Result<String, TraceError> {
    let len = get_varint(bytes, pos)? as usize;
    if len > 64 {
        return Err(malformed(format!("{what} name longer than 64 bytes")));
    }
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| malformed(format!("{what} name runs off the chunk end")))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| malformed(format!("{what} name is not UTF-8")))?
        .to_string();
    *pos = end;
    Ok(s)
}

// ---------------------------------------------------------------------
// Chunk framing (the journal's discipline, under the trace magic).

fn frame_chunk(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Splits `bytes` into CRC-checked chunk payloads, tolerating a torn
/// tail with `harness::journal`'s exact semantics.
fn decode_chunks(bytes: &[u8]) -> Result<(Vec<&[u8]>, Tail), TraceError> {
    let mut header = [0u8; 10];
    header[..8].copy_from_slice(&MAGIC);
    header[8..].copy_from_slice(&VERSION.to_le_bytes());
    if bytes.len() < header.len() {
        return if header.starts_with(bytes) {
            Ok((Vec::new(), Tail::Torn))
        } else {
            Err(TraceError::BadHeader)
        };
    }
    if bytes[..header.len()] != header {
        return Err(TraceError::BadHeader);
    }
    let mut rest = &bytes[header.len()..];
    let mut chunks = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 8 {
            return Ok((chunks, Tail::Torn));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            return Ok((chunks, Tail::Torn));
        };
        if crc32(payload) != crc {
            return Err(TraceError::Corrupt {
                chunk: chunks.len(),
            });
        }
        chunks.push(payload);
        rest = &rest[8 + len..];
    }
    Ok((chunks, Tail::Clean))
}

// ---------------------------------------------------------------------
// Header chunk.

fn encode_header(t: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_str(&mut buf, &t.name);
    put_str(&mut buf, t.program.name());
    put_varint(&mut buf, t.program.len() as u64);
    for (_, spec) in t.program.iter() {
        buf.push(match spec.kind() {
            BlockKind::Code => 1,
            BlockKind::Data => 0,
        });
        put_str(&mut buf, spec.name());
        put_varint(&mut buf, u64::from(spec.size_bytes()));
        put_varint(&mut buf, u64::from(spec.frame_bytes()));
    }
    put_varint(
        &mut buf,
        t.program.stack_block().map_or(0, |b| b.index() as u64 + 1),
    );
    put_varint(&mut buf, t.init.len() as u64);
    for init in &t.init {
        put_varint(&mut buf, init.block.index() as u64);
        put_varint(&mut buf, init.words.len() as u64);
        let mut prev = 0u32;
        for &(idx, value) in &init.words {
            put_varint(&mut buf, u64::from(idx - prev));
            put_varint(&mut buf, u64::from(value));
            prev = idx + 1;
        }
    }
    buf.extend_from_slice(&t.expected_checksum.to_le_bytes());
    put_varint(&mut buf, t.op_count);
    buf
}

struct Header {
    name: String,
    program: Program,
    init: Vec<BlockInit>,
    expected_checksum: u64,
    op_count: u64,
}

fn decode_header(bytes: &[u8]) -> Result<Header, TraceError> {
    let pos = &mut 0usize;
    let name = get_str(bytes, pos, "workload")?;
    let program_name = get_str(bytes, pos, "program")?;
    let block_count = get_varint(bytes, pos)? as usize;
    if block_count == 0 || block_count > MAX_BLOCKS {
        return Err(malformed(format!("block count must be 1..={MAX_BLOCKS}")));
    }
    struct RawBlock {
        kind: BlockKind,
        name: String,
        size_bytes: u32,
        frame_bytes: u32,
    }
    let mut raw = Vec::with_capacity(block_count);
    let (mut code_bytes, mut data_bytes) = (0u64, 0u64);
    for _ in 0..block_count {
        let kind = match bytes.get(*pos) {
            Some(0) => BlockKind::Data,
            Some(1) => BlockKind::Code,
            _ => return Err(malformed("bad block kind tag")),
        };
        *pos += 1;
        let block_name = get_str(bytes, pos, "block")?;
        let size_bytes = get_u32(bytes, pos, "block size")?;
        let frame_bytes = get_u32(bytes, pos, "frame size")?;
        if size_bytes == 0 || size_bytes % 4 != 0 {
            return Err(malformed("block sizes must be nonzero multiples of 4"));
        }
        if frame_bytes % 4 != 0 || (kind == BlockKind::Data && frame_bytes != 0) {
            return Err(malformed("bad frame size"));
        }
        if block_name.is_empty() || raw.iter().any(|b: &RawBlock| b.name == block_name) {
            return Err(malformed("block names must be unique and non-empty"));
        }
        match kind {
            BlockKind::Code => code_bytes += u64::from(size_bytes),
            BlockKind::Data => data_bytes += u64::from(size_bytes),
        }
        raw.push(RawBlock {
            kind,
            name: block_name,
            size_bytes,
            frame_bytes,
        });
    }
    if code_bytes > u64::from(MAX_CODE_BYTES) || data_bytes > u64::from(MAX_DATA_BYTES) {
        return Err(malformed(format!(
            "program exceeds the replayable footprint \
             ({MAX_CODE_BYTES} code / {MAX_DATA_BYTES} data bytes)"
        )));
    }
    let stack = match get_varint(bytes, pos)? {
        0 => None,
        idx_plus_one => {
            let idx = (idx_plus_one - 1) as usize;
            let spec = raw.get(idx).ok_or_else(|| malformed("stack index"))?;
            if spec.kind != BlockKind::Data || spec.name != "Stack" {
                return Err(malformed(
                    "stack block must be a data block named \"Stack\"",
                ));
            }
            Some(idx)
        }
    };
    // Rebuild through the builder so derived fields (spill words, DRAM
    // bases) match the original construction exactly. Everything the
    // builder asserts has been validated above.
    let mut b = Program::builder(program_name);
    for (idx, spec) in raw.iter().enumerate() {
        match spec.kind {
            BlockKind::Code => {
                b.code(spec.name.clone(), spec.size_bytes, spec.frame_bytes);
            }
            BlockKind::Data if stack == Some(idx) => {
                b.stack(spec.size_bytes);
            }
            BlockKind::Data => {
                b.data(spec.name.clone(), spec.size_bytes);
            }
        }
    }
    let program = b.build();
    let init_blocks = get_varint(bytes, pos)? as usize;
    if init_blocks > block_count {
        return Err(malformed("more init snapshots than blocks"));
    }
    let mut init = Vec::with_capacity(init_blocks);
    for _ in 0..init_blocks {
        let block_idx = get_varint(bytes, pos)? as usize;
        if block_idx >= block_count || raw[block_idx].kind != BlockKind::Data {
            return Err(malformed("init snapshot targets a non-data block"));
        }
        let words_in_block = raw[block_idx].size_bytes / 4;
        let pairs = get_varint(bytes, pos)? as usize;
        if pairs > words_in_block as usize {
            return Err(malformed("init snapshot larger than its block"));
        }
        let mut words = Vec::with_capacity(pairs);
        let mut next = 0u32;
        for _ in 0..pairs {
            let delta = get_u32(bytes, pos, "init index delta")?;
            let idx = next
                .checked_add(delta)
                .filter(|&i| i < words_in_block)
                .ok_or_else(|| malformed("init word index out of bounds"))?;
            let value = get_u32(bytes, pos, "init value")?;
            words.push((idx, value));
            next = idx + 1;
        }
        init.push(BlockInit {
            block: BlockId::new(block_idx),
            words,
        });
    }
    let checksum_end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| malformed("header chunk ends before the checksum"))?;
    let expected_checksum =
        u64::from_le_bytes(bytes[*pos..checksum_end].try_into().expect("8 bytes"));
    *pos = checksum_end;
    let op_count = get_varint(bytes, pos)?;
    if op_count > MAX_OPS {
        return Err(malformed(format!("op count exceeds {MAX_OPS}")));
    }
    if *pos != bytes.len() {
        return Err(malformed("trailing bytes in the header chunk"));
    }
    Ok(Header {
        name,
        program,
        init,
        expected_checksum,
        op_count,
    })
}

// ---------------------------------------------------------------------
// Op records.

const TAG_CALL: u8 = 0;
const TAG_RET: u8 = 1;
const TAG_EXECUTE: u8 = 2;
const TAG_READ: u8 = 3;
const TAG_WRITE: u8 = 4;
const TAG_STACK_READ: u8 = 5;
const TAG_STACK_WRITE: u8 = 6;

fn encode_record(buf: &mut Vec<u8>, rec: &TraceRecord, prev_cycle: u64) {
    let delta = rec.cycle - prev_cycle;
    match rec.op {
        TraceOp::Call { block } => {
            buf.push(TAG_CALL);
            put_varint(buf, delta);
            put_varint(buf, block.index() as u64);
        }
        TraceOp::Ret => {
            buf.push(TAG_RET);
            put_varint(buf, delta);
        }
        TraceOp::Execute { count } => {
            buf.push(TAG_EXECUTE);
            put_varint(buf, delta);
            put_varint(buf, u64::from(count));
        }
        TraceOp::Read { block, offset } => {
            buf.push(TAG_READ);
            put_varint(buf, delta);
            put_varint(buf, block.index() as u64);
            put_varint(buf, u64::from(offset));
        }
        TraceOp::Write {
            block,
            offset,
            value,
        } => {
            buf.push(TAG_WRITE);
            put_varint(buf, delta);
            put_varint(buf, block.index() as u64);
            put_varint(buf, u64::from(offset));
            put_varint(buf, u64::from(value));
        }
        TraceOp::StackRead { offset } => {
            buf.push(TAG_STACK_READ);
            put_varint(buf, delta);
            put_varint(buf, u64::from(offset));
        }
        TraceOp::StackWrite { offset, value } => {
            buf.push(TAG_STACK_WRITE);
            put_varint(buf, delta);
            put_varint(buf, u64::from(offset));
            put_varint(buf, u64::from(value));
        }
    }
}

fn decode_block_ref(
    bytes: &[u8],
    pos: &mut usize,
    program: &Program,
) -> Result<BlockId, TraceError> {
    let idx = get_varint(bytes, pos)? as usize;
    if idx >= program.len() {
        return Err(malformed("op references a block out of range"));
    }
    Ok(BlockId::new(idx))
}

fn check_word(program: &Program, block: BlockId, offset: u32) -> Result<(), TraceError> {
    let size = program.block(block).size_bytes();
    if !offset.is_multiple_of(4) || offset >= size {
        return Err(malformed("op offset is unaligned or out of bounds"));
    }
    Ok(())
}

fn decode_ops(
    chunk: &[u8],
    program: &Program,
    prev_cycle: &mut u64,
    out: &mut Vec<TraceRecord>,
) -> Result<(), TraceError> {
    let pos = &mut 0usize;
    while *pos < chunk.len() {
        let tag = chunk[*pos];
        *pos += 1;
        let delta = get_varint(chunk, pos)?;
        let cycle = prev_cycle
            .checked_add(delta)
            .ok_or_else(|| malformed("cycle counter overflows"))?;
        let op = match tag {
            TAG_CALL => {
                let block = decode_block_ref(chunk, pos, program)?;
                if program.block(block).kind() != BlockKind::Code {
                    return Err(malformed("call target is not a code block"));
                }
                TraceOp::Call { block }
            }
            TAG_RET => TraceOp::Ret,
            TAG_EXECUTE => {
                let count = get_u32(chunk, pos, "execute count")?;
                if count == 0 || count > MAX_EXECUTE_COUNT {
                    return Err(malformed(format!(
                        "execute count must be 1..={MAX_EXECUTE_COUNT}"
                    )));
                }
                TraceOp::Execute { count }
            }
            TAG_READ => {
                let block = decode_block_ref(chunk, pos, program)?;
                let offset = get_u32(chunk, pos, "offset")?;
                check_word(program, block, offset)?;
                TraceOp::Read { block, offset }
            }
            TAG_WRITE => {
                let block = decode_block_ref(chunk, pos, program)?;
                let offset = get_u32(chunk, pos, "offset")?;
                check_word(program, block, offset)?;
                let value = get_u32(chunk, pos, "value")?;
                TraceOp::Write {
                    block,
                    offset,
                    value,
                }
            }
            TAG_STACK_READ => {
                let offset = get_u32(chunk, pos, "offset")?;
                TraceOp::StackRead { offset }
            }
            TAG_STACK_WRITE => {
                let offset = get_u32(chunk, pos, "offset")?;
                let value = get_u32(chunk, pos, "value")?;
                TraceOp::StackWrite { offset, value }
            }
            other => return Err(malformed(format!("unknown op tag {other}"))),
        };
        out.push(TraceRecord { cycle, op });
        if out.len() as u64 > MAX_OPS {
            return Err(malformed(format!("more than {MAX_OPS} ops")));
        }
        *prev_cycle = cycle;
    }
    Ok(())
}

impl Trace {
    /// Serialises the trace to its on-disk/on-wire byte form. Encoding
    /// is deterministic: equal traces produce equal bytes (and thus
    /// equal [`TraceId`]s).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        frame_chunk(&mut out, &encode_header(self));
        let mut chunk = Vec::with_capacity(CHUNK_TARGET_BYTES + 64);
        let mut prev_cycle = 0u64;
        for rec in &self.records {
            encode_record(&mut chunk, rec, prev_cycle);
            prev_cycle = rec.cycle;
            if chunk.len() >= CHUNK_TARGET_BYTES {
                frame_chunk(&mut out, &chunk);
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            frame_chunk(&mut out, &chunk);
        }
        out
    }

    /// Decodes a trace, streaming chunk by chunk and tolerating a torn
    /// tail: complete chunks replay, the partial tail is dropped and
    /// reported as [`Tail::Torn`] (`records` is then a clean prefix of
    /// the declared `op_count`).
    ///
    /// # Errors
    ///
    /// [`TraceError::BadHeader`] for foreign bytes,
    /// [`TraceError::Truncated`] when the header chunk never completed,
    /// [`TraceError::Corrupt`] on a complete chunk failing its CRC, and
    /// [`TraceError::Malformed`] for contents violating the format or
    /// its caps. Never panics, whatever the input.
    pub fn decode(bytes: &[u8]) -> Result<(Self, Tail), TraceError> {
        let (chunks, tail) = decode_chunks(bytes)?;
        let Some((header_chunk, op_chunks)) = chunks.split_first() else {
            return Err(TraceError::Truncated);
        };
        let header = decode_header(header_chunk)?;
        let mut records = Vec::new();
        let mut prev_cycle = 0u64;
        for chunk in op_chunks {
            decode_ops(chunk, &header.program, &mut prev_cycle, &mut records)?;
        }
        let decoded = records.len() as u64;
        if decoded > header.op_count {
            return Err(malformed(format!(
                "header declares {} ops, stream carries {decoded}",
                header.op_count
            )));
        }
        // A byte-level cut exactly on a chunk boundary looks clean to
        // the framing layer; the declared op count catches it. Missing
        // ops are a torn tail, not damage — same crash signature.
        let tail = if decoded < header.op_count {
            Tail::Torn
        } else {
            tail
        };
        Ok((
            Self {
                name: header.name,
                program: header.program,
                init: header.init,
                expected_checksum: header.expected_checksum,
                op_count: header.op_count,
                records,
            },
            tail,
        ))
    }

    /// Whether every declared op survived (always true for
    /// [`Tail::Clean`] decodes).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.records.len() as u64 == self.op_count
    }
}

// ---------------------------------------------------------------------
// Content-addressed trace ids.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A content-addressed trace id: two independent FNV-1a-64 streams over
/// the encoded trace bytes, rendered as 32 hex chars. The same idiom as
/// the serve result cache's key — and the reason resubmitting the same
/// trace is idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    hi: u64,
    lo: u64,
}

impl TraceId {
    /// Hashes encoded trace bytes into their id.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        let mut hi = FNV_OFFSET;
        let mut lo = FNV_OFFSET.wrapping_mul(FNV_PRIME) ^ 0x5bd1_e995;
        for &b in bytes {
            hi = (hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            lo = (lo ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
        }
        Self { hi, lo }
    }

    /// The 32-char lowercase hex form (the wire id).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-char hex form back into an id.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { hi, lo })
    }

    /// One 64-bit fold of the id — a deterministic seed for fitted
    /// workloads.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}
