//! [`WorkloadSource`]: the one way a job, builder, or tool names a
//! workload.
//!
//! Before this type existed, every entry point hand-rolled its own
//! two-variant naming scheme (a kernel name or a synthetic config).
//! `WorkloadSource` unifies those with the two trace-backed forms —
//! replay an uploaded trace, or regenerate a synthetic fitted to one —
//! behind a single buildable, canonicalisable value. HTTP job specs,
//! the CLI, and the harness all parse *into* this type and build *out*
//! of it, so a new workload form lands everywhere by adding one
//! variant here.

use std::sync::Arc;

use ftspm_workloads::{registry, Synthetic, SyntheticConfig, Workload};

use crate::extract::FittedWorkload;
use crate::format::{Trace, TraceId};
use crate::replay::TraceWorkload;

/// Where a workload comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// A registry kernel by stable name, optionally reseeded.
    Named {
        /// Registry name (see [`registry::kernel_names`]).
        name: String,
        /// Seed override; `None` means the registry default.
        seed: Option<u64>,
    },
    /// The standard synthetic workload with explicit dials.
    Synthetic(SyntheticConfig),
    /// Replay an uploaded trace, byte-identically.
    Trace(TraceId),
    /// A synthetic workload fitted to an uploaded trace's model.
    Fitted(TraceId),
}

/// Resolves trace ids to decoded traces — the seam between
/// [`WorkloadSource`] and whatever store holds uploaded traces.
pub trait TraceResolver {
    /// The trace behind `id`, if the store holds it.
    fn resolve(&self, id: TraceId) -> Option<Arc<Trace>>;
}

/// A resolver that holds nothing: for contexts (CLI defaults, tests)
/// where trace-backed sources are out of scope.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTraces;

impl TraceResolver for NoTraces {
    fn resolve(&self, _id: TraceId) -> Option<Arc<Trace>> {
        None
    }
}

/// Why a [`WorkloadSource`] could not produce a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The name matches no registry kernel.
    UnknownWorkload {
        /// The rejected name.
        name: String,
    },
    /// A seed was supplied for a seedless kernel.
    SeededSeedless {
        /// The seedless kernel's name.
        name: String,
    },
    /// The resolver holds no trace under this id.
    UnknownTrace(TraceId),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownWorkload { name } => {
                write!(f, "unknown workload `{name}`; valid names: ")?;
                for (i, n) in registry::kernel_names().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(n)?;
                }
                Ok(())
            }
            Self::SeededSeedless { name } => {
                write!(f, "`{name}` is seedless; omit `seed`")
            }
            Self::UnknownTrace(id) => write!(f, "unknown trace `{id}`"),
        }
    }
}

impl std::error::Error for SourceError {}

impl WorkloadSource {
    /// A named source, unvalidated; [`WorkloadSource::build`] validates.
    #[must_use]
    pub fn named(name: impl Into<String>, seed: Option<u64>) -> Self {
        Self::Named {
            name: name.into(),
            seed,
        }
    }

    /// Validates the source against the registry without building: the
    /// cheap check entry points run at decode time.
    ///
    /// # Errors
    ///
    /// [`SourceError::UnknownWorkload`] or
    /// [`SourceError::SeededSeedless`]; trace existence is *not*
    /// checked (that needs a resolver).
    pub fn validate(&self) -> Result<(), SourceError> {
        match self {
            Self::Named { name, seed } => match registry::find(name) {
                None => Err(SourceError::UnknownWorkload { name: name.clone() }),
                Some(entry) if entry.seedless() && seed.is_some() => {
                    Err(SourceError::SeededSeedless { name: name.clone() })
                }
                Some(_) => Ok(()),
            },
            Self::Synthetic(_) | Self::Trace(_) | Self::Fitted(_) => Ok(()),
        }
    }

    /// Builds the workload, resolving trace-backed sources through
    /// `resolver`.
    ///
    /// # Errors
    ///
    /// Everything [`WorkloadSource::validate`] rejects, plus
    /// [`SourceError::UnknownTrace`] when the resolver cannot produce a
    /// referenced trace.
    pub fn build(&self, resolver: &dyn TraceResolver) -> Result<Box<dyn Workload>, SourceError> {
        self.validate()?;
        match self {
            Self::Named { name, seed } => {
                let entry = registry::find(name).expect("validated above");
                Ok(entry.build(*seed))
            }
            Self::Synthetic(config) => Ok(Box::new(Synthetic::new(*config))),
            Self::Trace(id) => {
                let trace = resolver
                    .resolve(*id)
                    .ok_or(SourceError::UnknownTrace(*id))?;
                Ok(Box::new(TraceWorkload::new(trace)))
            }
            Self::Fitted(id) => {
                let trace = resolver
                    .resolve(*id)
                    .ok_or(SourceError::UnknownTrace(*id))?;
                Ok(Box::new(FittedWorkload::new(&trace)))
            }
        }
    }

    /// The trace this source depends on, if any — what a job store must
    /// pin before accepting the job.
    #[must_use]
    pub fn trace_dependency(&self) -> Option<TraceId> {
        match self {
            Self::Trace(id) | Self::Fitted(id) => Some(*id),
            Self::Named { .. } | Self::Synthetic(_) => None,
        }
    }

    /// Renders the source's canonical fragment — the `w=...` prefix of
    /// a job's content address. Byte-compatible with the historical
    /// two-variant rendering for `Named` and `Synthetic`, so existing
    /// cache lines and goldens stay valid.
    #[must_use]
    pub fn canonical_fragment(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(48);
        match self {
            Self::Named { name, seed } => {
                let default = registry::find(name).and_then(|e| e.default_seed());
                match seed.or(default) {
                    Some(seed) => {
                        let _ = write!(s, "w=named:{name}:{seed}");
                    }
                    None => {
                        let _ = write!(s, "w=named:{name}:-");
                    }
                }
            }
            Self::Synthetic(c) => {
                let _ = write!(
                    s,
                    "w=synthetic:{:?}:{}:{}:{}:{}",
                    c.write_fraction, c.buffer_words, c.accesses, c.run_length, c.seed
                );
            }
            Self::Trace(id) => {
                let _ = write!(s, "w=trace:{id}");
            }
            Self::Fitted(id) => {
                let _ = write!(s, "w=fitted:{id}");
            }
        }
        s
    }
}
