//! Model extraction: fit a compact behavioural model to a trace, and
//! regenerate a synthetic workload from the model.
//!
//! [`fit`] makes a single pass over a trace's records and produces a
//! [`TraceModel`]: per-block lifetimes and read/write mixes, the
//! overall write fraction, phase segmentation (change-points in the
//! access-density curve), a log2 inter-access gap histogram, and the
//! mean sequential run length — plus a [`SyntheticConfig`] projection
//! of the whole model onto the standard synthetic workload's dials.
//!
//! [`FittedWorkload`] regenerates a runnable workload from the model:
//! it mirrors the source program block-for-block (so block count
//! matches *exactly*), draws accesses from the per-block empirical mix
//! with the per-phase write fraction applied error-diffusion style (so
//! the R/W ratio matches to within one access per phase), and paces
//! each phase with instruction padding proportional to the source
//! phase's inverse access density (so re-fitting the regenerated
//! workload finds the same phase structure).

use std::sync::Arc;

use ftspm_sim::{BlockId, BlockKind, Cpu, Dram, Program, SimError};
use ftspm_workloads::{Checksum, SyntheticConfig, Workload};

use crate::format::{BlockInit, Trace, TraceOp};

/// Number of fixed cycle windows the change-point detector buckets
/// accesses into.
const WINDOWS: usize = 48;

/// Adjacent-window density ratio that opens a new phase.
const PHASE_RATIO: f64 = 2.0;

/// Cap on accesses a fitted workload regenerates (phases are scaled
/// proportionally past it).
const MAX_FIT_ACCESSES: u64 = 2_000_000;

/// Per-block usage statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockUse {
    /// The block.
    pub block: BlockId,
    /// Block name (from the program).
    pub name: String,
    /// Loads targeting the block (stack loads count toward the stack
    /// block).
    pub reads: u64,
    /// Stores targeting the block.
    pub writes: u64,
    /// Cycle of the block's first data access, if any.
    pub first_use: Option<u64>,
    /// Cycle of the block's last data access, if any.
    pub last_use: Option<u64>,
}

/// One detected phase: a maximal cycle span of roughly constant access
/// density.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseModel {
    /// First cycle of the phase (inclusive).
    pub start_cycle: u64,
    /// Last cycle of the phase (exclusive).
    pub end_cycle: u64,
    /// Data accesses inside the phase.
    pub accesses: u64,
    /// Stores inside the phase.
    pub writes: u64,
}

impl PhaseModel {
    /// The phase's write fraction (0 when it holds no accesses).
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses as f64
        }
    }

    /// The phase's cycle span.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle).max(1)
    }
}

/// The fitted behavioural model of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceModel {
    /// Per-block usage, in block order.
    pub blocks: Vec<BlockUse>,
    /// Total data accesses (loads + stores, stack ops included).
    pub accesses: u64,
    /// Total stores.
    pub writes: u64,
    /// Detected phases, in time order; at least one when the trace has
    /// any data access.
    pub phases: Vec<PhaseModel>,
    /// Histogram of inter-access cycle gaps, log2-bucketed: bucket `i`
    /// holds gaps of bit length `i` (bucket 0 = back-to-back).
    pub gap_histogram: [u64; 32],
    /// Mean length of consecutive same-block access runs.
    pub mean_run_length: f64,
    /// The model projected onto the standard synthetic workload's
    /// dials.
    pub synthetic: SyntheticConfig,
}

impl TraceModel {
    /// Overall write fraction.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses as f64
        }
    }
}

/// The `(block, is_write)` view of one record's data access, if it is
/// one.
fn data_access(op: &TraceOp, stack: Option<BlockId>) -> Option<(BlockId, bool)> {
    match *op {
        TraceOp::Read { block, .. } => Some((block, false)),
        TraceOp::Write { block, .. } => Some((block, true)),
        TraceOp::StackRead { .. } => stack.map(|b| (b, false)),
        TraceOp::StackWrite { .. } => stack.map(|b| (b, true)),
        TraceOp::Call { .. } | TraceOp::Ret | TraceOp::Execute { .. } => None,
    }
}

/// Fits a [`TraceModel`] to `trace` in a single pass over its records.
#[must_use]
pub fn fit(trace: &Trace) -> TraceModel {
    let program = &trace.program;
    let stack = program.stack_block();
    let mut blocks: Vec<BlockUse> = program
        .iter()
        .map(|(id, spec)| BlockUse {
            block: id,
            name: spec.name().to_string(),
            reads: 0,
            writes: 0,
            first_use: None,
            last_use: None,
        })
        .collect();
    let end_cycle = trace.records.last().map_or(1, |r| r.cycle + 1);
    let mut window_accesses = [0u64; WINDOWS];
    let mut window_writes = [0u64; WINDOWS];
    let mut gap_histogram = [0u64; 32];
    let (mut accesses, mut writes) = (0u64, 0u64);
    let mut prev_access_cycle: Option<u64> = None;
    let (mut runs, mut prev_block): (u64, Option<BlockId>) = (0, None);
    for rec in &trace.records {
        let Some((block, is_write)) = data_access(&rec.op, stack) else {
            continue;
        };
        accesses += 1;
        writes += u64::from(is_write);
        let stats = &mut blocks[block.index()];
        stats.first_use.get_or_insert(rec.cycle);
        stats.last_use = Some(rec.cycle);
        if is_write {
            stats.writes += 1;
        } else {
            stats.reads += 1;
        }
        let window = ((rec.cycle as u128 * WINDOWS as u128) / end_cycle as u128) as usize;
        let window = window.min(WINDOWS - 1);
        window_accesses[window] += 1;
        window_writes[window] += u64::from(is_write);
        if let Some(prev) = prev_access_cycle {
            let gap = rec.cycle - prev;
            let bucket = (64 - gap.leading_zeros()) as usize;
            gap_histogram[bucket.min(31)] += 1;
        }
        prev_access_cycle = Some(rec.cycle);
        if prev_block != Some(block) {
            runs += 1;
            prev_block = Some(block);
        }
    }
    let phases = segment_phases(&window_accesses, &window_writes, end_cycle);
    let mean_run_length = if runs == 0 {
        0.0
    } else {
        accesses as f64 / runs as f64
    };
    let buffer_words = program
        .iter()
        .filter(|(id, spec)| spec.kind() == BlockKind::Data && Some(*id) != stack)
        .map(|(_, spec)| spec.size_bytes() / 4)
        .max()
        .unwrap_or(1);
    let synthetic = SyntheticConfig {
        write_fraction: if accesses == 0 {
            0.0
        } else {
            writes as f64 / accesses as f64
        },
        buffer_words: buffer_words.max(1),
        accesses: u32::try_from(accesses.clamp(1, 10_000_000)).expect("clamped"),
        run_length: (mean_run_length.round() as u32).max(1),
        seed: trace.expected_checksum,
    };
    TraceModel {
        blocks,
        accesses,
        writes,
        phases,
        gap_histogram,
        mean_run_length,
        synthetic,
    }
}

/// Change-point segmentation over the access-density windows: a new
/// phase opens where adjacent window densities differ by more than
/// [`PHASE_RATIO`] (with additive smoothing so empty-vs-tiny windows do
/// not oscillate), then single-window segments — the artifact a density
/// step leaves when it lands mid-window — are merged into whichever
/// neighbour is closer in density.
fn segment_phases(
    window_accesses: &[u64; WINDOWS],
    window_writes: &[u64; WINDOWS],
    end_cycle: u64,
) -> Vec<PhaseModel> {
    let total: u64 = window_accesses.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    // Smoothing floor: fluctuations below ~a quarter of the uniform
    // level are noise, not phase structure.
    let eps = (total as f64 / WINDOWS as f64) * 0.25 + 1.0;
    // Segments as window ranges first: (start, end) half-open. A
    // boundary opens where a window's density deviates from the
    // *running mean of the current segment* by more than the ratio —
    // comparing against the segment mean (not just the previous
    // window) keeps a transition window that straddles a density step
    // from splitting the step into two sub-threshold half-steps.
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut sum = window_accesses[0];
    for (i, &count) in window_accesses.iter().enumerate().skip(1) {
        let mean = sum as f64 / (i - start) as f64 + eps;
        let w = count as f64 + eps;
        if (mean / w).max(w / mean) > PHASE_RATIO {
            segments.push((start, i));
            start = i;
            sum = 0;
        }
        sum += count;
    }
    segments.push((start, WINDOWS));
    // A step landing mid-window leaves a one-window segment of
    // intermediate density with both edges over the ratio; it is a
    // transition artifact, not a phase. Merge each into the neighbour
    // whose density is nearer.
    let density = |seg: &(usize, usize)| {
        let sum: u64 = window_accesses[seg.0..seg.1].iter().sum();
        sum as f64 / (seg.1 - seg.0) as f64 + eps
    };
    while segments.len() > 1 {
        let Some(idx) = segments.iter().position(|s| s.1 - s.0 == 1) else {
            break;
        };
        let d = density(&segments[idx]);
        let ratio = |other: f64| (d / other).max(other / d);
        let left = idx.checked_sub(1).map(|i| ratio(density(&segments[i])));
        let right = (idx + 1 < segments.len()).then(|| ratio(density(&segments[idx + 1])));
        let into_left = match (left, right) {
            (Some(l), Some(r)) => l <= r,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if into_left {
            segments[idx - 1].1 = segments[idx].1;
        } else {
            segments[idx + 1].0 = segments[idx].0;
        }
        segments.remove(idx);
    }
    let window_span = |i: usize| (end_cycle * i as u64) / WINDOWS as u64;
    let phase = |(s, e): (usize, usize)| PhaseModel {
        start_cycle: window_span(s),
        end_cycle: window_span(e),
        accesses: window_accesses[s..e].iter().sum(),
        writes: window_writes[s..e].iter().sum(),
    };
    // Segments below 5% of the run's accesses are warm-up and straggler
    // noise (e.g. the quiet lead-in while the first touched blocks DMA
    // in), not phases — and crucially they are *machine* artifacts a
    // regenerated workload reproduces differently, so keeping them
    // would make phase structure unstable under refitting.
    let phases: Vec<PhaseModel> = segments
        .iter()
        .map(|&seg| phase(seg))
        .filter(|p| p.accesses * 20 >= total)
        .collect();
    if phases.is_empty() {
        // Pathologically fragmented traffic: model it as one phase.
        return vec![phase((0, WINDOWS))];
    }
    phases
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `true` when access `i` of a phase with write fraction `wf` is a
/// store — error-diffusion, so a phase of `n` accesses carries exactly
/// `floor(n * wf)` stores.
fn is_write(i: u64, wf: f64) -> bool {
    (((i + 1) as f64) * wf).floor() > ((i as f64) * wf).floor()
}

#[derive(Debug, Clone)]
struct FitPhase {
    accesses: u64,
    write_fraction: f64,
    /// Instruction padding per access — pacing that preserves the
    /// source phase's relative access density, so refitting finds the
    /// same change-points.
    pad: u32,
}

#[derive(Debug, Clone)]
struct FitTarget {
    block: BlockId,
    words: u32,
    cumulative_weight: u64,
}

/// A synthetic workload regenerated from a [`TraceModel`]: same program
/// shape as the source trace, empirical per-block access mix, per-phase
/// write fractions, density-matched pacing.
#[derive(Debug, Clone)]
pub struct FittedWorkload {
    name: String,
    program: Program,
    init: Vec<BlockInit>,
    code: Option<BlockId>,
    targets: Vec<FitTarget>,
    total_weight: u64,
    phases: Vec<FitPhase>,
    sample_blocks: Vec<(BlockId, u32)>,
    seed: u64,
    expected: u64,
}

impl FittedWorkload {
    /// Fits `trace` and builds the regenerated workload.
    #[must_use]
    pub fn new(trace: &Trace) -> Self {
        let model = fit(trace);
        Self::from_model(trace, &model)
    }

    /// Builds the regenerated workload from an already-fitted model.
    ///
    /// # Panics
    ///
    /// Panics if `model` was fitted from a different trace (block table
    /// mismatch).
    #[must_use]
    pub fn from_model(trace: &Trace, model: &TraceModel) -> Self {
        assert_eq!(
            model.blocks.len(),
            trace.program.len(),
            "model does not match the trace"
        );
        let program = trace.program.clone();
        let stack = program.stack_block();
        let code = program.code_blocks().first().copied();
        // Weight data-block targets by their observed access counts;
        // the stack block is excluded (its traffic is frame-shaped, and
        // call-frame spills would clash with raw stores to it).
        let mut targets = Vec::new();
        let mut total_weight = 0u64;
        for (id, spec) in program.iter() {
            if spec.kind() != BlockKind::Data || Some(id) == stack {
                continue;
            }
            let used = &model.blocks[id.index()];
            let weight = used.reads + used.writes;
            if weight == 0 {
                continue;
            }
            total_weight += weight;
            targets.push(FitTarget {
                block: id,
                words: spec.size_bytes() / 4,
                cumulative_weight: total_weight,
            });
        }
        let scale = if model.accesses > MAX_FIT_ACCESSES {
            MAX_FIT_ACCESSES as f64 / model.accesses as f64
        } else {
            1.0
        };
        let max_rate = model
            .phases
            .iter()
            .map(|p| p.accesses as f64 / p.span() as f64)
            .fold(0.0f64, f64::max);
        let phases: Vec<FitPhase> = model
            .phases
            .iter()
            .filter(|p| p.accesses > 0)
            .map(|p| {
                let rate = p.accesses as f64 / p.span() as f64;
                let pad = if rate > 0.0 && max_rate > 0.0 {
                    ((2.0 * max_rate / rate).round() as u32).clamp(2, 64)
                } else {
                    2
                };
                FitPhase {
                    accesses: ((p.accesses as f64 * scale) as u64).max(1),
                    write_fraction: p.write_fraction(),
                    pad,
                }
            })
            .collect();
        let sample_blocks: Vec<(BlockId, u32)> =
            targets.iter().map(|t| (t.block, t.words)).collect();
        let mut fitted = Self {
            name: format!("fitted:{}", trace.name),
            program,
            init: trace.init.clone(),
            code,
            targets,
            total_weight,
            phases,
            sample_blocks,
            seed: model.synthetic.seed,
            expected: 0,
        };
        fitted.expected = fitted.host_reference();
        fitted
    }

    /// The phase pacing/mix this workload will regenerate (for the
    /// `repro trace` diff display).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    fn pick(&self, global_index: u64) -> (BlockId, u32, u32) {
        let h = splitmix(self.seed ^ global_index.wrapping_mul(0xD129_0F1E_DCBA_9871));
        let r = h % self.total_weight;
        let t = self
            .targets
            .iter()
            .find(|t| r < t.cumulative_weight)
            .expect("cumulative weights cover the range");
        let word = ((h >> 32) % u64::from(t.words)) as u32;
        (t.block, word, t.words)
    }

    /// The access script, computed natively: mirrors [`Workload::run`]
    /// word for word over host arrays.
    fn host_reference(&self) -> u64 {
        let mut arrays: Vec<Vec<u32>> = self
            .program
            .iter()
            .map(|(_, spec)| vec![0u32; (spec.size_bytes() / 4) as usize])
            .collect();
        for block in &self.init {
            for &(word, value) in &block.words {
                arrays[block.block.index()][word as usize] = value;
            }
        }
        let mut acc = 0u32;
        if self.total_weight > 0 {
            let mut global = 0u64;
            for phase in &self.phases {
                for i in 0..phase.accesses {
                    let (block, word, _) = self.pick(global);
                    if is_write(i, phase.write_fraction) {
                        arrays[block.index()][word as usize] = acc.wrapping_add(global as u32);
                    } else {
                        acc = acc
                            .wrapping_add(arrays[block.index()][word as usize])
                            .rotate_left(1);
                    }
                    global += 1;
                }
            }
        }
        let mut c = Checksum::new();
        c.push(acc);
        for &(block, words) in &self.sample_blocks {
            let mut w = 0;
            while w < words {
                c.push(arrays[block.index()][w as usize]);
                w += 64;
            }
        }
        c.value()
    }
}

impl Workload for FittedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn init(&mut self, dram: &mut Dram) {
        for block in &self.init {
            for &(word, value) in &block.words {
                dram.poke_word(block.block, word * 4, value);
            }
        }
    }

    fn run(&mut self, cpu: &mut Cpu<'_, '_>) -> Result<u64, SimError> {
        let mut acc = 0u32;
        if let Some(code) = self.code {
            cpu.call(code)?;
        }
        if self.total_weight > 0 {
            let mut global = 0u64;
            for phase in &self.phases {
                for i in 0..phase.accesses {
                    let (block, word, _) = self.pick(global);
                    if is_write(i, phase.write_fraction) {
                        cpu.write_u32(block, word * 4, acc.wrapping_add(global as u32))?;
                    } else {
                        acc = acc
                            .wrapping_add(cpu.read_u32(block, word * 4)?)
                            .rotate_left(1);
                    }
                    if self.code.is_some() {
                        cpu.execute(phase.pad)?;
                    }
                    global += 1;
                }
            }
        }
        let mut c = Checksum::new();
        c.push(acc);
        for &(block, words) in &self.sample_blocks {
            let mut w = 0;
            while w < words {
                c.push(cpu.read_u32(block, w * 4)?);
                w += 64;
            }
        }
        if self.code.is_some() {
            cpu.ret()?;
        }
        Ok(c.value())
    }

    fn expected_checksum(&self) -> u64 {
        self.expected
    }
}

/// Builds a fitted workload behind an `Arc`'d trace (the serve path).
#[must_use]
pub fn fitted(trace: &Arc<Trace>) -> FittedWorkload {
    FittedWorkload::new(trace)
}
