//! Replay: a decoded [`Trace`] as a [`Workload`], so traces flow
//! through profile/MDA/sim — and the whole serve pipeline — unchanged.
//!
//! ## Why replay is byte-identical
//!
//! A trace stores the *public op sequence* a workload issued, the
//! program shape, and the initial-memory snapshot. The `Cpu` derives
//! every other memory event (spill/reload on call/ret, the implicit
//! fetch per data op, cache/DMA traffic) from those ops and machine
//! state alone, so re-issuing the ops against an identically
//! initialised machine reproduces the exact event stream — hence the
//! same profile, the same MDA mapping, the same cycle/energy totals,
//! and a byte-identical rendered report.
//!
//! The replay checksum closes the loop on *values*: the recorded run
//! folded every loaded value into [`Trace::expected_checksum`]; the
//! replay recomputes the fold from its own loads. `checksum_ok` in a
//! replay's report therefore asserts the replay observed the exact
//! values the original run did.

use std::sync::Arc;

use ftspm_sim::{Cpu, Dram, Program, SimError};
use ftspm_workloads::{Checksum, Workload};

use crate::format::{Trace, TraceOp};

/// A trace replaying as a workload. Cheap to clone (the trace is
/// shared) and re-runnable: the evaluation pipeline runs every workload
/// once per structure plus once for profiling.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    trace: Arc<Trace>,
}

impl TraceWorkload {
    /// Wraps a decoded trace for replay.
    #[must_use]
    pub fn new(trace: Arc<Trace>) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        // The recorded source's name: a replayed crc32 trace reports as
        // crc32, which is what makes replay reports byte-identical to
        // in-process runs.
        &self.trace.name
    }

    fn program(&self) -> &Program {
        &self.trace.program
    }

    fn init(&mut self, dram: &mut Dram) {
        for block in &self.trace.init {
            for &(word, value) in &block.words {
                dram.poke_word(block.block, word * 4, value);
            }
        }
    }

    fn run(&mut self, cpu: &mut Cpu<'_, '_>) -> Result<u64, SimError> {
        let mut fold = Checksum::new();
        for rec in &self.trace.records {
            match rec.op {
                TraceOp::Call { block } => cpu.call(block)?,
                TraceOp::Ret => cpu.ret()?,
                TraceOp::Execute { count } => cpu.execute(count)?,
                TraceOp::Read { block, offset } => fold.push(cpu.read_u32(block, offset)?),
                TraceOp::Write {
                    block,
                    offset,
                    value,
                } => cpu.write_u32(block, offset, value)?,
                TraceOp::StackRead { offset } => fold.push(cpu.stack_read_u32(offset)?),
                TraceOp::StackWrite { offset, value } => cpu.stack_write_u32(offset, value)?,
            }
        }
        Ok(fold.value())
    }

    fn expected_checksum(&self) -> u64 {
        self.trace.expected_checksum
    }
}
