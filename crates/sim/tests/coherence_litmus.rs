//! Coherence litmus battery: random multi-core op interleavings that
//! must uphold the MESI invariants, plus the two classic litmus shapes
//! (message passing, store buffering) as named regressions.
//!
//! Invariants checked after **every** operation:
//!
//! * **SWMR** — at most one Modified copy of any line across cores, and
//!   a Modified or Exclusive copy excludes every other copy;
//! * **data-value** — every read returns the last value written to that
//!   word by *any* core (shadow-memory model);
//! * **no lost invalidations** — immediately after a write, no remote
//!   core holds a valid copy of the written line;
//! * instruction caches never hold Modified lines (code is read-only).
//!
//! Counterexamples shrink and persist in
//! `coherence_litmus.regressions` (replay one with `FTSPM_PROP_SEED`).

use std::collections::HashMap;

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{Clock, RegionGeometry, Technology};
use ftspm_sim::{
    CacheConfig, CoherenceState, DramConfig, MachineConfig, MultiMachine, NullObserver,
    PlacementMap, Program, SpmRegionSpec,
};
use ftspm_testkit::prop::{any_int, check, int_range, vec_of, Config, Strategy, StrategyExt};

/// Words per shared data block the ops index into.
const WORDS: u32 = 64;

fn cfg() -> Config {
    Config::with_cases(128).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/coherence_litmus.regressions"
    ))
}

fn setup(cores: usize) -> MultiMachine {
    let mut b = Program::builder("litmus");
    let code = b.code("code", 256, 16);
    let d0 = b.data("d0", WORDS * 4);
    let d1 = b.data("d1", WORDS * 4);
    b.stack(256 * cores as u32);
    let program = b.build();
    let regions = vec![SpmRegionSpec::new(
        "spm",
        Technology::SramSecDed,
        ProtectionScheme::SecDed,
        RegionGeometry::from_kib(1),
    )];
    let mut placement = PlacementMap::new(&program, &regions);
    // Everything off-chip: all sharing flows through the coherent L1s.
    placement.place_off_chip(code);
    placement.place_off_chip(d0);
    placement.place_off_chip(d1);
    let config = MachineConfig {
        clock: Clock::default(),
        icache: CacheConfig::default(),
        dcache: CacheConfig::default(),
        dram: DramConfig::default(),
        regions,
        faults: None,
        deadline_cycles: None,
    };
    MultiMachine::new(config, program, placement, cores).unwrap()
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read {
        core: usize,
        block: usize,
        word: u32,
    },
    Write {
        core: usize,
        block: usize,
        word: u32,
        value: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        int_range(0u8..2),
        int_range(0usize..4),
        int_range(0usize..2),
        int_range(0u32..WORDS),
        any_int::<u32>(),
    )
        .map(|(kind, core, block, word, value)| match kind {
            0 => Op::Read { core, block, word },
            _ => Op::Write {
                core,
                block,
                word,
                value,
            },
        })
}

/// SWMR + exclusivity sweep over every core's caches.
fn check_mesi_invariants(mm: &MultiMachine, cores: usize) {
    let mut lines: HashMap<u32, Vec<(usize, CoherenceState)>> = HashMap::new();
    for c in 0..cores {
        let (icache, dcache) = mm.core_caches(c);
        for (_, state) in icache.valid_lines() {
            assert_ne!(
                state,
                CoherenceState::Modified,
                "icache line Modified on core {c} (code is read-only)"
            );
        }
        for (addr, state) in dcache.valid_lines() {
            lines.entry(addr).or_default().push((c, state));
        }
    }
    for (addr, owners) in lines {
        let modified = owners
            .iter()
            .filter(|(_, s)| *s == CoherenceState::Modified)
            .count();
        assert!(modified <= 1, "SWMR violated at line {addr:#x}: {owners:?}");
        let exclusive = owners
            .iter()
            .any(|(_, s)| matches!(s, CoherenceState::Modified | CoherenceState::Exclusive));
        if exclusive {
            assert_eq!(
                owners.len(),
                1,
                "Modified/Exclusive copy must be the only copy of line {addr:#x}: {owners:?}"
            );
        }
    }
}

/// Shared body so persisted counterexamples stay covered as named tests.
fn check_litmus(cores: usize, ops: &[Op]) {
    let mut mm = setup(cores);
    let blocks = [
        mm.machine().program().find("d0").unwrap(),
        mm.machine().program().find("d1").unwrap(),
    ];
    let bases = [
        mm.machine().program().block(blocks[0]).dram_base(),
        mm.machine().program().block(blocks[1]).dram_base(),
    ];
    let mut obs = NullObserver;
    // Shadow memory: the last value written to each word (DRAM zeroed).
    let mut model: HashMap<(usize, u32), u32> = HashMap::new();
    for op in ops {
        match *op {
            Op::Read { core, block, word } => {
                let core = core % cores;
                let got = mm
                    .with_core(core, &mut obs, |cpu| cpu.read_u32(blocks[block], word * 4))
                    .unwrap();
                let want = model.get(&(block, word)).copied().unwrap_or(0);
                assert_eq!(
                    got, want,
                    "data-value invariant: core {core} read d{block}[{word}]"
                );
            }
            Op::Write {
                core,
                block,
                word,
                value,
            } => {
                let core = core % cores;
                mm.with_core(core, &mut obs, |cpu| {
                    cpu.write_u32(blocks[block], word * 4, value)
                })
                .unwrap();
                model.insert((block, word), value);
                // No lost invalidations: remote copies of the written
                // line must be gone *now*, not at some later sync.
                let addr = bases[block] + word * 4;
                for other in (0..cores).filter(|&c| c != core) {
                    assert_eq!(
                        mm.dcache_state(other, addr),
                        CoherenceState::Invalid,
                        "core {other} kept a stale copy after core {core} wrote d{block}[{word}]"
                    );
                }
            }
        }
        check_mesi_invariants(&mm, cores);
    }
}

#[test]
fn random_interleavings_uphold_mesi_invariants() {
    let cases = (int_range(2usize..5), vec_of(op_strategy(), 1..60));
    check(&cfg(), &cases, |(cores, ops)| check_litmus(*cores, ops));
}

/// Message passing: the writer publishes a payload, then a flag; once a
/// reader observes the flag it must observe the payload. Sequential
/// interleaving makes the forbidden outcome (flag set, stale payload)
/// impossible — this pins that it stays impossible.
#[test]
fn message_passing_shape() {
    let mut mm = setup(2);
    let d0 = mm.machine().program().find("d0").unwrap();
    let mut obs = NullObserver;
    // Reader warms both lines so the writer must invalidate real copies.
    assert_eq!(
        mm.with_core(1, &mut obs, |cpu| cpu.read_u32(d0, 0))
            .unwrap(),
        0
    );
    assert_eq!(
        mm.with_core(1, &mut obs, |cpu| cpu.read_u32(d0, 32 * 4))
            .unwrap(),
        0
    );
    // Writer: payload at word 0, then flag at word 32 (a distinct line).
    mm.with_core(0, &mut obs, |cpu| {
        cpu.write_u32(d0, 0, 0xDA7A)?;
        cpu.write_u32(d0, 32 * 4, 1)
    })
    .unwrap();
    // Reader: flag observed set → payload must be the published value.
    let (flag, payload) = mm
        .with_core(1, &mut obs, |cpu| {
            let flag = cpu.read_u32(d0, 32 * 4)?;
            let payload = cpu.read_u32(d0, 0)?;
            Ok::<_, ftspm_sim::SimError>((flag, payload))
        })
        .unwrap();
    assert_eq!(flag, 1);
    assert_eq!(payload, 0xDA7A, "flag was visible but payload was stale");
    let stats = mm.coherence_stats();
    assert!(
        stats.invalidations >= 2,
        "both warmed reader lines must have been invalidated: {stats:?}"
    );
}

/// Store buffering: core 0 writes `x` then reads `y`; core 1 writes `y`
/// then reads `x`. Without store buffers (this machine is sequentially
/// consistent by construction) the relaxed outcome `r0 == 0 && r1 == 0`
/// is forbidden in **every** interleaving that respects per-core order —
/// enumerate all six and pin it.
#[test]
fn store_buffering_shape_forbids_relaxed_outcome() {
    // Per-core programs: (write own word, read other core's word).
    // x = d0[0], y = d0[32] — distinct lines of the same block.
    const X: u32 = 0;
    const Y: u32 = 32 * 4;
    // All interleavings of {W0, R0} × {W1, R1} preserving program order.
    let interleavings: &[[(usize, bool); 4]] = &[
        [(0, true), (0, false), (1, true), (1, false)],
        [(0, true), (1, true), (0, false), (1, false)],
        [(0, true), (1, true), (1, false), (0, false)],
        [(1, true), (0, true), (0, false), (1, false)],
        [(1, true), (0, true), (1, false), (0, false)],
        [(1, true), (1, false), (0, true), (0, false)],
    ];
    for (i, order) in interleavings.iter().enumerate() {
        let mut mm = setup(2);
        let d0 = mm.machine().program().find("d0").unwrap();
        let mut obs = NullObserver;
        let mut reads = [None, None];
        for &(core, is_write) in order {
            let (own, other) = if core == 0 { (X, Y) } else { (Y, X) };
            if is_write {
                mm.with_core(core, &mut obs, |cpu| cpu.write_u32(d0, own, 1))
                    .unwrap();
            } else {
                let v = mm
                    .with_core(core, &mut obs, |cpu| cpu.read_u32(d0, other))
                    .unwrap();
                reads[core] = Some(v);
            }
        }
        let (r0, r1) = (reads[0].unwrap(), reads[1].unwrap());
        assert!(
            !(r0 == 0 && r1 == 0),
            "interleaving {i}: relaxed store-buffering outcome observed (r0={r0}, r1={r1})"
        );
        check_mesi_invariants(&mm, 2);
    }
}
