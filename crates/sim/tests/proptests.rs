//! Property tests: the simulator against a reference memory model.
//!
//! Whatever the placement — static SPM slots, dynamic multiplexing with
//! LRU eviction, or off-chip through the caches — the *values* a program
//! reads must match a plain array model, the cycle counter must be
//! strictly monotone over accesses, and `finish` must land every dirty
//! word in the DRAM home copy.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    BlockId, Cpu, CpuConfig, Machine, MachineConfig, NullObserver, PlacementMap, Program, RegionId,
    SpmRegionSpec,
};
use ftspm_testkit::prop::{
    any_int, check, int_range, vec_exact, vec_of, Config, Strategy, StrategyExt,
};

const N_BLOCKS: usize = 4;
const BLOCK_WORDS: u32 = 64;

fn cfg() -> Config {
    Config::with_cases(64).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proptests.regressions"
    ))
}

#[derive(Debug, Clone)]
enum Op {
    Write { block: usize, word: u32, value: u32 },
    Read { block: usize, word: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        int_range(0u8..2),
        int_range(0usize..N_BLOCKS),
        int_range(0u32..BLOCK_WORDS),
        any_int::<u32>(),
    )
        .map(|(kind, block, word, value)| {
            if kind == 0 {
                Op::Write { block, word, value }
            } else {
                Op::Read { block, word }
            }
        })
}

/// 0 = off-chip, 1 = static region slot, 2 = dynamic region pool.
fn placement_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec_exact(int_range(0u8..3), N_BLOCKS)
}

fn build(placements: &[u8]) -> (Machine, Vec<BlockId>) {
    let mut b = Program::builder("prop");
    let code = b.code("F", 256, 16);
    let blocks: Vec<BlockId> = (0..N_BLOCKS)
        .map(|i| b.data(format!("D{i}"), BLOCK_WORDS * 4))
        .collect();
    b.stack(256);
    let p = b.build();
    // One region that can hold two of the four blocks: static slots claim
    // space first, dynamic blocks multiplex the rest.
    let specs = vec![
        SpmRegionSpec::new(
            "I",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(1),
        ),
        SpmRegionSpec::new(
            "D",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_bytes(2 * BLOCK_WORDS * 4),
        ),
    ];
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, code, RegionId::new(0)).expect("code fits");
    // Statics reserve space first (best effort; a full region leaves the
    // block off-chip, a legal outcome to test too), then dynamics share
    // what remains.
    for (i, &kind) in placements.iter().enumerate() {
        if kind == 1 {
            let _ = map.place(&p, blocks[i], RegionId::new(1));
        }
    }
    for (i, &kind) in placements.iter().enumerate() {
        if kind == 2 {
            let _ = map.place_dynamic(&p, blocks[i], RegionId::new(1));
        }
    }
    let m = Machine::new(MachineConfig::with_regions(specs), p, map).expect("machine");
    (m, blocks)
}

/// The body of `values_match_reference_model`, shared with the named
/// regression tests so a persisted counterexample stays covered forever.
fn check_values_match_reference(placements: &[u8], ops: &[Op]) {
    let (mut m, blocks) = build(placements);
    let code = m.program().find("F").unwrap();
    let mut model = vec![vec![0u32; BLOCK_WORDS as usize]; N_BLOCKS];
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(
        &mut m,
        &mut o,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(code).unwrap();
    let mut last_cycle = cpu.cycle();
    for op in ops {
        match *op {
            Op::Write { block, word, value } => {
                cpu.write_u32(blocks[block], word * 4, value).unwrap();
                model[block][word as usize] = value;
            }
            Op::Read { block, word } => {
                let got = cpu.read_u32(blocks[block], word * 4).unwrap();
                assert_eq!(got, model[block][word as usize]);
            }
        }
        assert!(cpu.cycle() > last_cycle, "every access costs cycles");
        last_cycle = cpu.cycle();
    }
    cpu.ret().unwrap();
    drop(cpu);
    m.finish(&mut o);
    // After finish, the DRAM home copies hold the model state.
    for (i, content) in model.iter().enumerate() {
        for (w, &expected) in content.iter().enumerate() {
            assert_eq!(
                m.dram().peek_word(blocks[i], (w as u32) * 4),
                expected,
                "home copy of block {i} word {w}"
            );
        }
    }
}

#[test]
fn values_match_reference_model() {
    check(
        &cfg(),
        &(placement_strategy(), vec_of(op_strategy(), 1..200)),
        |(placements, ops)| check_values_match_reference(placements, ops),
    );
}

/// Ported `proptest` regression (formerly persisted as
/// `cc c5f4537c…` in `proptests.proptest-regressions`, shrunk to
/// `placements = [1, 2, 0, 1], ops = [Read { block: 1, word: 0 }]`):
/// reading an untouched word of a *dynamically pooled* block, while two
/// static slots fill the region, must still see the zero-initialised
/// home copy rather than stale region contents.
#[test]
fn regression_dynamic_block_read_sees_home_copy() {
    check_values_match_reference(&[1, 2, 0, 1], &[Op::Read { block: 1, word: 0 }]);
}

#[test]
fn energy_and_stats_accumulate_monotonically() {
    check(&cfg(), &vec_of(op_strategy(), 1..100), |ops| {
        let (mut m, blocks) = build(&[2, 2, 2, 2]);
        let code = m.program().find("F").unwrap();
        let mut o = NullObserver;
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig {
                fetch_per_data_op: false,
            },
        );
        cpu.call(code).unwrap();
        for op in ops {
            match *op {
                Op::Write { block, word, value } => {
                    cpu.write_u32(blocks[block], word * 4, value).unwrap()
                }
                Op::Read { block, word } => {
                    cpu.read_u32(blocks[block], word * 4).unwrap();
                }
            }
        }
        cpu.ret().unwrap();
        drop(cpu);
        let stats = m.finish(&mut o);
        let total_served: u64 = stats
            .regions
            .iter()
            .map(|r| r.program_reads + r.program_writes)
            .sum::<u64>()
            + stats.dcache.hits
            + stats.dcache.misses;
        // Data ops (not counting stack spills, DMA, fetches) must all be
        // served somewhere.
        assert!(total_served >= ops.len() as u64);
        let spm = stats.spm_energy();
        assert!(spm.dynamic_pj() > 0.0);
        assert!(spm.static_pj > 0.0, "finish charges leakage");
    });
}
