//! Property tests: the simulator against a reference memory model.
//!
//! Whatever the placement — static SPM slots, dynamic multiplexing with
//! LRU eviction, or off-chip through the caches — the *values* a program
//! reads must match a plain array model, the cycle counter must be
//! strictly monotone over accesses, and `finish` must land every dirty
//! word in the DRAM home copy.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    BlockId, Cpu, CpuConfig, Machine, MachineConfig, NullObserver, PlacementMap, Program,
    RegionId, SpmRegionSpec,
};
use proptest::prelude::*;

const N_BLOCKS: usize = 4;
const BLOCK_WORDS: u32 = 64;

#[derive(Debug, Clone)]
enum Op {
    Write { block: usize, word: u32, value: u32 },
    Read { block: usize, word: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_BLOCKS, 0..BLOCK_WORDS, any::<u32>())
            .prop_map(|(block, word, value)| Op::Write { block, word, value }),
        (0..N_BLOCKS, 0..BLOCK_WORDS).prop_map(|(block, word)| Op::Read { block, word }),
    ]
}

/// 0 = off-chip, 1 = static region slot, 2 = dynamic region pool.
fn placement_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, N_BLOCKS)
}

fn build(placements: &[u8]) -> (Machine, Vec<BlockId>) {
    let mut b = Program::builder("prop");
    let code = b.code("F", 256, 16);
    let blocks: Vec<BlockId> = (0..N_BLOCKS)
        .map(|i| b.data(format!("D{i}"), BLOCK_WORDS * 4))
        .collect();
    b.stack(256);
    let p = b.build();
    // One region that can hold two of the four blocks: static slots claim
    // space first, dynamic blocks multiplex the rest.
    let specs = vec![
        SpmRegionSpec::new(
            "I",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(1),
        ),
        SpmRegionSpec::new(
            "D",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_bytes(2 * BLOCK_WORDS * 4),
        ),
    ];
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, code, RegionId::new(0)).expect("code fits");
    // Statics reserve space first (best effort; a full region leaves the
    // block off-chip, a legal outcome to test too), then dynamics share
    // what remains.
    for (i, &kind) in placements.iter().enumerate() {
        if kind == 1 {
            let _ = map.place(&p, blocks[i], RegionId::new(1));
        }
    }
    for (i, &kind) in placements.iter().enumerate() {
        if kind == 2 {
            let _ = map.place_dynamic(&p, blocks[i], RegionId::new(1));
        }
    }
    let m = Machine::new(MachineConfig::with_regions(specs), p, map).expect("machine");
    (m, blocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_match_reference_model(
        placements in placement_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut m, blocks) = build(&placements);
        let code = m.program().find("F").unwrap();
        let mut model = vec![vec![0u32; BLOCK_WORDS as usize]; N_BLOCKS];
        let mut o = NullObserver;
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig { fetch_per_data_op: false },
        );
        cpu.call(code).unwrap();
        let mut last_cycle = cpu.cycle();
        for op in &ops {
            match *op {
                Op::Write { block, word, value } => {
                    cpu.write_u32(blocks[block], word * 4, value).unwrap();
                    model[block][word as usize] = value;
                }
                Op::Read { block, word } => {
                    let got = cpu.read_u32(blocks[block], word * 4).unwrap();
                    prop_assert_eq!(got, model[block][word as usize]);
                }
            }
            prop_assert!(cpu.cycle() > last_cycle, "every access costs cycles");
            last_cycle = cpu.cycle();
        }
        cpu.ret().unwrap();
        drop(cpu);
        m.finish(&mut o);
        // After finish, the DRAM home copies hold the model state.
        for (i, content) in model.iter().enumerate() {
            for (w, &expected) in content.iter().enumerate() {
                prop_assert_eq!(
                    m.dram().peek_word(blocks[i], (w as u32) * 4),
                    expected,
                    "home copy of block {} word {}", i, w
                );
            }
        }
    }

    #[test]
    fn energy_and_stats_accumulate_monotonically(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let (mut m, blocks) = build(&[2, 2, 2, 2]);
        let code = m.program().find("F").unwrap();
        let mut o = NullObserver;
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig { fetch_per_data_op: false },
        );
        cpu.call(code).unwrap();
        for op in &ops {
            match *op {
                Op::Write { block, word, value } => {
                    cpu.write_u32(blocks[block], word * 4, value).unwrap()
                }
                Op::Read { block, word } => {
                    cpu.read_u32(blocks[block], word * 4).unwrap();
                }
            }
        }
        cpu.ret().unwrap();
        drop(cpu);
        let stats = m.finish(&mut o);
        let total_served: u64 = stats
            .regions
            .iter()
            .map(|r| r.program_reads + r.program_writes)
            .sum::<u64>()
            + stats.dcache.hits
            + stats.dcache.misses;
        // Data ops (not counting stack spills, DMA, fetches) must all be
        // served somewhere.
        prop_assert!(total_served >= ops.len() as u64);
        let spm = stats.spm_energy();
        prop_assert!(spm.dynamic_pj() > 0.0);
        prop_assert!(spm.static_pj > 0.0, "finish charges leakage");
    }
}
