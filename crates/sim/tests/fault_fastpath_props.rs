//! Property tests for [`MarkTable`], the dirty-bitmap + epoch structure
//! behind the fault fast path.
//!
//! The table must be indistinguishable from the plain
//! `BTreeMap<u32, u64>` it replaced under *any* interleaving of strikes
//! (marks), accesses (removes/probes) and DMA fills (range clears):
//! never miss a marked word, never report a stale one, always batch-
//! collect in the map's ascending order. The epoch counter must change
//! exactly when the table changes — that is what lets the hot path cache
//! "nothing to do here" decisions.
//!
//! Counterexamples shrink and persist in
//! `fault_fastpath_props.regressions` (replay one with
//! `FTSPM_PROP_SEED`).

use std::collections::BTreeMap;

use ftspm_sim::MarkTable;
use ftspm_testkit::prop::{any_int, check, int_range, vec_of, Config, Strategy, StrategyExt};

const WORDS: u32 = 192; // three bitmap chunks, the last one partial

fn cfg() -> Config {
    Config::with_cases(256).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fault_fastpath_props.regressions"
    ))
}

#[derive(Debug, Clone)]
enum Op {
    /// A strike lands: OR a mask into a word.
    Mark { word: u32, mask: u64 },
    /// An access decodes a word, consuming its mark (if any).
    Remove { word: u32 },
    /// A DMA fill rewrites a span, clearing everything inside it.
    ClearRange { first: u32, count: u32 },
    /// A read-only probe (`get`/`is_marked`) — must never mutate.
    Probe { word: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        int_range(0u8..4),
        int_range(0u32..WORDS),
        int_range(0u32..80),
        any_int::<u64>(),
    )
        .map(|(kind, word, count, mask)| match kind {
            0 => Op::Mark {
                word,
                // Strike masks are never empty (a strike flips >= 1 bit).
                mask: mask | 1,
            },
            1 => Op::Remove { word },
            2 => Op::ClearRange { first: word, count },
            _ => Op::Probe { word },
        })
}

/// Shared body so persisted counterexamples stay covered as named tests.
fn check_table_matches_model(ops: &[Op]) {
    let mut table = MarkTable::new(WORDS);
    let mut model: BTreeMap<u32, u64> = BTreeMap::new();
    let mut collected = Vec::new();
    for op in ops {
        let before = table.epoch();
        let mutated = match *op {
            Op::Mark { word, mask } => {
                table.or_insert(word, mask);
                *model.entry(word).or_insert(0) |= mask;
                true
            }
            Op::Remove { word } => {
                let got = table.remove(word);
                let want = model.remove(&word);
                assert_eq!(got, want, "remove({word})");
                got.is_some()
            }
            Op::ClearRange { first, count } => {
                let end = first.saturating_add(count).min(WORDS);
                let cleared: Vec<u32> = model.range(first..end).map(|(&w, _)| w).collect();
                for w in &cleared {
                    model.remove(w);
                }
                table.clear_range(first, count);
                !cleared.is_empty()
            }
            Op::Probe { word } => {
                assert_eq!(table.get(word), model.get(&word).copied(), "get({word})");
                assert_eq!(
                    table.is_marked(word),
                    model.contains_key(&word),
                    "is_marked({word})"
                );
                false
            }
        };
        assert_eq!(
            table.epoch() != before,
            mutated,
            "epoch must change exactly when the table changes: {op:?}"
        );
        // Full-state agreement after every operation.
        assert_eq!(table.len(), model.len());
        assert_eq!(table.is_empty(), model.is_empty());
        table.collect_into(&mut collected);
        let want: Vec<u32> = model.keys().copied().collect();
        assert_eq!(collected, want, "collect_into order/content after {op:?}");
    }
}

#[test]
fn mark_table_matches_btreemap_model() {
    check(&cfg(), &vec_of(op_strategy(), 1..120), |ops| {
        check_table_matches_model(ops)
    });
}

/// The epoch keeps detecting change across wraparound: pin it just below
/// `u32::MAX` and push it over.
#[test]
fn epoch_wraparound_still_detects_mutation() {
    let mut t = MarkTable::new(WORDS);
    t.force_epoch(u32::MAX - 1);
    let e0 = t.epoch();
    t.or_insert(7, 0b11);
    assert_ne!(t.epoch(), e0, "mutation at u32::MAX - 1");
    let e1 = t.epoch();
    t.or_insert(9, 0b1);
    assert_ne!(t.epoch(), e1, "mutation at u32::MAX wraps to 0");
    assert_eq!(t.epoch(), 0, "wrapping_add(1) from u32::MAX");
    let e2 = t.epoch();
    assert_eq!(t.remove(7), Some(0b11));
    assert_ne!(t.epoch(), e2);
    // State survived the wrap intact.
    assert_eq!(t.get(9), Some(0b1));
    assert_eq!(t.len(), 1);
}

/// Ascending collect order is what makes scrub sweeps (and therefore
/// whole-run replays) deterministic; pin it on a descending insert order.
#[test]
fn collect_is_ascending_regardless_of_insert_order() {
    let mut t = MarkTable::new(WORDS);
    for w in [177, 64, 3, 100, 63, 0] {
        t.or_insert(w, 1);
    }
    let mut out = vec![99; 1]; // collect_into must clear stale content
    t.collect_into(&mut out);
    assert_eq!(out, vec![0, 3, 63, 64, 100, 177]);
}
