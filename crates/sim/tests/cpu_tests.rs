//! CPU execution-context edge cases and error paths.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    Cpu, CpuConfig, Machine, MachineConfig, NullObserver, PlacementMap, Program, SimError,
    SpmRegionSpec,
};

fn regions() -> Vec<SpmRegionSpec> {
    vec![SpmRegionSpec::new(
        "D",
        Technology::SramParity,
        ProtectionScheme::Parity,
        RegionGeometry::from_kib(8),
    )]
}

fn machine(program: Program) -> Machine {
    let map = PlacementMap::new(&program, &regions());
    Machine::new(MachineConfig::with_regions(regions()), program, map).expect("machine")
}

#[test]
fn calling_a_data_block_is_an_error() {
    let mut b = Program::builder("p");
    b.code("F", 64, 0);
    let d = b.data("D", 64);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    assert!(matches!(cpu.call(d), Err(SimError::WrongBlockKind { .. })));
}

#[test]
fn executing_without_an_active_block_is_an_error() {
    let mut b = Program::builder("p");
    b.code("F", 64, 0);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    assert!(matches!(cpu.execute(1), Err(SimError::CallStackUnderflow)));
    assert!(matches!(
        cpu.stack_read_u32(0),
        Err(SimError::CallStackUnderflow)
    ));
    assert!(matches!(
        cpu.stack_write_u32(0, 1),
        Err(SimError::CallStackUnderflow)
    ));
}

#[test]
fn frames_without_a_stack_block_are_an_error() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 16); // non-zero frame, but no stack declared
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    assert!(matches!(cpu.call(f), Err(SimError::NoStackBlock)));
}

#[test]
fn zero_frame_functions_work_without_a_stack() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 0);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    // Zero frame and zero spills: no stack traffic at all… except the
    // default spill_words=1 — so this must error without a stack.
    // The builder default spills one register per call.
    let r = cpu.call(f);
    assert!(matches!(r, Err(SimError::NoStackBlock)));
}

#[test]
fn execute_zero_is_free() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 0);
    b.stack(64);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(f).unwrap();
    let c = cpu.cycle();
    cpu.execute(0).unwrap();
    assert_eq!(cpu.cycle(), c);
}

#[test]
fn nested_calls_track_current_block_and_max_stack() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 32);
    let g = b.code("G", 64, 64);
    b.stack(256);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    assert_eq!(cpu.current_block(), None);
    cpu.call(f).unwrap();
    assert_eq!(cpu.current_block(), Some(f));
    cpu.call(g).unwrap();
    assert_eq!(cpu.current_block(), Some(g));
    cpu.ret().unwrap();
    assert_eq!(cpu.current_block(), Some(f));
    cpu.ret().unwrap();
    assert_eq!(cpu.current_block(), None);
    assert_eq!(cpu.max_stack_bytes(), 96, "32 + 64 at the deepest point");
}

#[test]
fn pc_wraps_within_the_code_block() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 0); // 16 instructions
    b.stack(64);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(
        &mut m,
        &mut o,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(f).unwrap();
    // 40 instructions in a 16-instruction block: wraps twice, no error.
    cpu.execute(40).unwrap();
    cpu.ret().unwrap();
    drop(cpu);
    assert_eq!(m.instructions(), 40);
}

#[test]
fn stack_frame_isolation_between_calls() {
    let mut b = Program::builder("p");
    let f = b.code("F", 64, 32);
    let g = b.code("G", 64, 32);
    b.stack(256);
    let mut m = machine(b.build());
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(f).unwrap();
    cpu.stack_write_u32(8, 111).unwrap();
    cpu.call(g).unwrap();
    cpu.stack_write_u32(8, 222).unwrap(); // G's frame, different slot
    assert_eq!(cpu.stack_read_u32(8).unwrap(), 222);
    cpu.ret().unwrap();
    assert_eq!(cpu.stack_read_u32(8).unwrap(), 111, "F's slot untouched");
    cpu.ret().unwrap();
}
