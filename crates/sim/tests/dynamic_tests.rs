//! Dynamic (time-multiplexed) SPM placement: allocation, LRU eviction,
//! writeback correctness, and accounting.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    Cpu, CpuConfig, Machine, MachineConfig, NullObserver, PlacementMap, Program, RegionId,
    SimError, SpmRegionSpec,
};

fn small_regions() -> Vec<SpmRegionSpec> {
    vec![
        SpmRegionSpec::new(
            "I",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(4),
        ),
        // A 2 KiB data region that three 1 KiB blocks must share.
        SpmRegionSpec::new(
            "D",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_kib(2),
        ),
    ]
}

fn program() -> Program {
    let mut b = Program::builder("dyn");
    b.code("F", 512, 16);
    b.data("A", 1024);
    b.data("B", 1024);
    b.data("C", 1024);
    b.stack(256);
    b.build()
}

fn machine_with_dynamic() -> Machine {
    let p = program();
    let specs = small_regions();
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, p.find("F").unwrap(), RegionId::new(0))
        .unwrap();
    for name in ["A", "B", "C"] {
        map.place_dynamic(&p, p.find(name).unwrap(), RegionId::new(1))
            .unwrap();
    }
    Machine::new(MachineConfig::with_regions(specs), p, map).unwrap()
}

fn no_fetch() -> CpuConfig {
    CpuConfig {
        fetch_per_data_op: false,
    }
}

#[test]
fn oversubscribed_region_evicts_lru_and_preserves_values() {
    let mut m = machine_with_dynamic();
    let (f, a, b_, c) = (
        m.program().find("F").unwrap(),
        m.program().find("A").unwrap(),
        m.program().find("B").unwrap(),
        m.program().find("C").unwrap(),
    );
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(&mut m, &mut o, no_fetch());
    cpu.call(f).unwrap();
    // Fill A and B (2 KiB pool exactly), write distinct values.
    cpu.write_u32(a, 0, 0xAAAA).unwrap();
    cpu.write_u32(b_, 0, 0xBBBB).unwrap();
    // Touch A so B is the LRU, then demand C: B must be evicted.
    cpu.read_u32(a, 0).unwrap();
    cpu.write_u32(c, 0, 0xCCCC).unwrap();
    // All three keep their values, wherever they live now.
    assert_eq!(cpu.read_u32(a, 0).unwrap(), 0xAAAA);
    assert_eq!(cpu.read_u32(c, 0).unwrap(), 0xCCCC);
    // Re-demanding B forces more eviction and a DMA re-fill; its dirty
    // value must have survived the round trip through DRAM.
    assert_eq!(cpu.read_u32(b_, 0).unwrap(), 0xBBBB);
    cpu.ret().unwrap();
    let stats = m.finish(&mut o);
    assert!(
        stats.regions[1].dyn_evictions >= 2,
        "evictions: {}",
        stats.regions[1].dyn_evictions
    );
}

#[test]
fn dirty_victims_write_back_before_eviction() {
    let mut m = machine_with_dynamic();
    let (f, a, b_, c) = (
        m.program().find("F").unwrap(),
        m.program().find("A").unwrap(),
        m.program().find("B").unwrap(),
        m.program().find("C").unwrap(),
    );
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(&mut m, &mut o, no_fetch());
    cpu.call(f).unwrap();
    cpu.write_u32(a, 40, 777).unwrap();
    cpu.read_u32(b_, 0).unwrap(); // B resident, clean
    cpu.read_u32(a, 0).unwrap(); // B is LRU
    cpu.read_u32(c, 0).unwrap(); // evicts B (clean: no writeback needed)
    cpu.read_u32(c, 4).unwrap();
    // Now evict A (dirty) by touching B again (A became LRU).
    cpu.read_u32(b_, 0).unwrap();
    cpu.ret().unwrap();
    drop(cpu);
    // A's dirty word must be in its DRAM home copy already (it was
    // evicted, not just unmapped at finish).
    assert_eq!(m.dram().peek_word(a, 40), 777);
}

#[test]
fn dynamic_block_larger_than_pool_is_rejected() {
    let specs = small_regions();
    // Statically occupy 1.5 KiB of the 2 KiB region, leaving a 0.5 KiB
    // pool; a 1 KiB dynamic block can then never fit.
    let mut b = Program::builder("dyn2");
    b.code("F", 512, 16);
    let big = b.data("Big", 1536);
    let a = b.data("A", 1024);
    b.stack(256);
    let p2 = b.build();
    let mut map2 = PlacementMap::new(&p2, &specs);
    map2.place(&p2, big, RegionId::new(1)).unwrap();
    let err = map2.place_dynamic(&p2, a, RegionId::new(1)).unwrap_err();
    assert!(matches!(err, SimError::RegionFull { .. }));
}

#[test]
fn dynamic_and_static_share_a_region() {
    let p = program();
    let specs = small_regions();
    let mut map = PlacementMap::new(&p, &specs);
    let a = p.find("A").unwrap();
    let b_ = p.find("B").unwrap();
    let c = p.find("C").unwrap();
    // A gets a static slot; B and C multiplex the remaining 1 KiB.
    map.place(&p, a, RegionId::new(1)).unwrap();
    map.place_dynamic(&p, b_, RegionId::new(1)).unwrap();
    map.place_dynamic(&p, c, RegionId::new(1)).unwrap();
    assert!(map.placement(b_).is_dynamic());
    assert_eq!(map.placement(a).region(), Some(RegionId::new(1)));
    let mut m = Machine::new(MachineConfig::with_regions(specs), p, map).unwrap();
    let f = m.program().find("F").unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(&mut m, &mut o, no_fetch());
    cpu.call(f).unwrap();
    cpu.write_u32(a, 0, 1).unwrap();
    cpu.write_u32(b_, 0, 2).unwrap();
    cpu.write_u32(c, 0, 3).unwrap(); // evicts B
    assert_eq!(cpu.read_u32(a, 0).unwrap(), 1, "static resident untouched");
    assert_eq!(cpu.read_u32(b_, 0).unwrap(), 2);
    assert_eq!(cpu.read_u32(c, 0).unwrap(), 3);
    cpu.ret().unwrap();
    let stats = m.finish(&mut o);
    assert!(stats.regions[1].dyn_evictions >= 1);
    // Everything dirty lands home at finish.
    assert_eq!(m.dram().peek_word(a, 0), 1);
    assert_eq!(m.dram().peek_word(b_, 0), 2);
    assert_eq!(m.dram().peek_word(c, 0), 3);
}

#[test]
fn thrashing_costs_dma_cycles() {
    // Ping-pong between two 1 KiB blocks sharing a 1 KiB pool: every
    // switch pays a full block DMA, visible in the cycle count.
    let specs = vec![
        SpmRegionSpec::new(
            "I",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(4),
        ),
        SpmRegionSpec::new(
            "D",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_bytes(1024),
        ),
    ];
    let mut b = Program::builder("thrash");
    let f = b.code("F", 512, 16);
    let x = b.data("X", 1024);
    let y = b.data("Y", 1024);
    b.stack(256);
    let p = b.build();
    let mut map = PlacementMap::new(&p, &specs);
    map.place_dynamic(&p, x, RegionId::new(1)).unwrap();
    map.place_dynamic(&p, y, RegionId::new(1)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(specs), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(&mut m, &mut o, no_fetch());
    cpu.call(f).unwrap();
    cpu.read_u32(x, 0).unwrap();
    let warm = cpu.cycle();
    cpu.read_u32(x, 4).unwrap();
    let hit_cost = cpu.cycle() - warm;
    let before = cpu.cycle();
    cpu.read_u32(y, 0).unwrap(); // evict X, fill Y
    let switch_cost = cpu.cycle() - before;
    assert_eq!(hit_cost, 1, "resident parity read is 1 cycle");
    assert!(
        switch_cost > 200,
        "a 256-word DMA fill must dominate ({switch_cost} cycles)"
    );
    cpu.ret().unwrap();
}
