//! Run-time strike injection: corruption really propagates into program
//! results when (and only when) the protection scheme lets it through.

use ftspm_ecc::{ErrorClass, ProtectionScheme};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    Cpu, CpuConfig, Machine, MachineConfig, NullObserver, PlacementMap, Program, RegionId,
    SpmRegionSpec,
};

fn regions() -> Vec<SpmRegionSpec> {
    vec![
        SpmRegionSpec::new(
            "stt",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(2),
        ),
        SpmRegionSpec::new(
            "ecc",
            Technology::SramSecDed,
            ProtectionScheme::SecDed,
            RegionGeometry::from_kib(2),
        ),
        SpmRegionSpec::new(
            "parity",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_kib(2),
        ),
    ]
}

/// Builds a machine with one data block resident in `region` holding a
/// known value at offset 0.
fn setup(region: usize) -> (Machine, ftspm_sim::BlockId, ftspm_sim::BlockId) {
    let mut b = Program::builder("inj");
    let f = b.code("F", 256, 0);
    let d = b.data("D", 256);
    b.stack(256);
    let p = b.build();
    let specs = regions();
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, d, RegionId::new(region)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(specs), p, map).unwrap();
    let mut o = NullObserver;
    {
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig {
                fetch_per_data_op: false,
            },
        );
        cpu.call(f).unwrap();
        cpu.write_u32(d, 0, 0x1234_5678).unwrap();
        cpu.ret().unwrap();
    }
    (m, f, d)
}

fn read_back(m: &mut Machine, f: ftspm_sim::BlockId, d: ftspm_sim::BlockId) -> u32 {
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(
        m,
        &mut o,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(f).unwrap();
    let v = cpu.read_u32(d, 0).unwrap();
    cpu.ret().unwrap();
    v
}

#[test]
fn stt_ram_masks_any_strike() {
    let (mut m, f, d) = setup(0);
    for flips in [1, 2, 5, 8] {
        assert_eq!(
            m.inject_strike(RegionId::new(0), 0, 3, flips).unwrap(),
            ErrorClass::Masked
        );
    }
    assert_eq!(read_back(&mut m, f, d), 0x1234_5678);
}

#[test]
fn secded_corrects_single_flips_but_leaks_triples() {
    let (mut m, f, d) = setup(1);
    assert_eq!(
        m.inject_strike(RegionId::new(1), 0, 7, 1).unwrap(),
        ErrorClass::Dre
    );
    assert_eq!(
        read_back(&mut m, f, d),
        0x1234_5678,
        "single flip corrected"
    );
    assert_eq!(
        m.inject_strike(RegionId::new(1), 0, 7, 2).unwrap(),
        ErrorClass::Due
    );
    assert_eq!(
        read_back(&mut m, f, d),
        0x1234_5678,
        "double flip detected, data intact"
    );
    assert_eq!(
        m.inject_strike(RegionId::new(1), 0, 7, 3).unwrap(),
        ErrorClass::Sdc
    );
    let corrupted = read_back(&mut m, f, d);
    assert_ne!(corrupted, 0x1234_5678, "triple flip silently corrupts");
    assert_eq!(
        corrupted,
        0x1234_5678 ^ (0b111 << 7),
        "exact flip mask applied"
    );
}

#[test]
fn parity_detects_singles_and_leaks_doubles() {
    let (mut m, f, d) = setup(2);
    assert_eq!(
        m.inject_strike(RegionId::new(2), 0, 0, 1).unwrap(),
        ErrorClass::Due
    );
    assert_eq!(read_back(&mut m, f, d), 0x1234_5678);
    assert_eq!(
        m.inject_strike(RegionId::new(2), 0, 0, 2).unwrap(),
        ErrorClass::Sdc
    );
    assert_ne!(read_back(&mut m, f, d), 0x1234_5678);
}

#[test]
fn malformed_strikes_are_rejected_not_panics() {
    use ftspm_sim::SimError;
    let (mut m, _f, _d) = setup(1);
    assert!(matches!(
        m.inject_strike(RegionId::new(9), 0, 0, 1),
        Err(SimError::UnknownRegion(_))
    ));
    assert!(matches!(
        m.inject_strike(RegionId::new(1), 2, 0, 1),
        Err(SimError::BadStrike { offset: 2, .. })
    ));
    assert!(matches!(
        m.inject_strike(RegionId::new(1), 0, 0, 0),
        Err(SimError::BadStrike {
            flipped_bits: 0,
            ..
        })
    ));
    assert!(matches!(
        m.inject_strike(RegionId::new(1), 4096, 0, 1),
        Err(SimError::StrikeOutOfRange { offset: 4096, .. })
    ));
}

#[test]
fn corruption_survives_writeback_to_dram() {
    // An undetected strike poisons the home copy at finish: the classic
    // silent-corruption propagation chain.
    let (mut m, _f, d) = setup(2);
    m.inject_strike(RegionId::new(2), 0, 4, 2).unwrap();
    let mut o = NullObserver;
    m.finish(&mut o);
    assert_eq!(
        m.dram().peek_word(d, 0),
        0x1234_5678 ^ (0b11 << 4),
        "corrupted data written back home"
    );
}
