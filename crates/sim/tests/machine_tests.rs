//! Cross-module tests of the simulator: machine + CPU + placement.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    AccessEvent, AccessKind, BlockId, Cpu, CpuConfig, Machine, MachineConfig, NullObserver,
    Observer, PlacementMap, Program, RegionId, SimError, SpmRegionSpec, Target,
};

fn regions() -> Vec<SpmRegionSpec> {
    vec![
        SpmRegionSpec::new(
            "I-SPM STT",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(16),
        ),
        SpmRegionSpec::new(
            "D-SPM STT",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(12),
        ),
        SpmRegionSpec::new(
            "D-SPM ECC",
            Technology::SramSecDed,
            ProtectionScheme::SecDed,
            RegionGeometry::from_kib(2),
        ),
        SpmRegionSpec::new(
            "D-SPM parity",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_kib(2),
        ),
    ]
}

fn program() -> Program {
    let mut b = Program::builder("t");
    b.code("Main", 1024, 16);
    b.data("A", 256);
    b.stack(512);
    b.build()
}

struct Recorder {
    events: Vec<AccessEvent>,
    enters: Vec<BlockId>,
    exits: Vec<BlockId>,
}

impl Observer for Recorder {
    fn on_access(&mut self, e: &AccessEvent) {
        self.events.push(*e);
    }
    fn on_block_enter(&mut self, b: BlockId, _c: u64) {
        self.enters.push(b);
    }
    fn on_block_exit(&mut self, b: BlockId, _c: u64) {
        self.exits.push(b);
    }
}

#[test]
fn values_roundtrip_through_spm() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, main, RegionId::new(0)).unwrap();
    map.place(&p, a, RegionId::new(1)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.write_u32(a, 0, 0xAABB_CCDD).unwrap();
    cpu.write_u32(a, 4, 17).unwrap();
    assert_eq!(cpu.read_u32(a, 0).unwrap(), 0xAABB_CCDD);
    assert_eq!(cpu.read_u32(a, 4).unwrap(), 17);
    cpu.ret().unwrap();
}

#[test]
fn values_roundtrip_off_chip_through_cache() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let map = PlacementMap::new(&p, &regions()); // everything off-chip
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.write_u32(a, 8, 123).unwrap();
    assert_eq!(cpu.read_u32(a, 8).unwrap(), 123);
    cpu.ret().unwrap();
    let stats = m.finish(&mut o);
    assert!(stats.dcache.accesses() > 0 || stats.dcache.hits + stats.dcache.misses > 0);
    assert_eq!(stats.spm_program_accesses(), 0);
}

#[test]
fn byte_access_merges_into_words() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, a, RegionId::new(2)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.write_u32(a, 0, 0x1122_3344).unwrap();
    cpu.write_u8(a, 1, 0xEE).unwrap();
    assert_eq!(cpu.read_u32(a, 0).unwrap(), 0x1122_EE44);
    assert_eq!(cpu.read_u8(a, 1).unwrap(), 0xEE);
    assert_eq!(cpu.read_u8(a, 3).unwrap(), 0x11);
}

#[test]
fn lazy_dma_charges_once_and_loads_home_copy() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, a, RegionId::new(1)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    // Initialise the home copy before execution.
    m.dram_mut().poke_word(a, 12, 777);
    let mut rec = Recorder {
        events: vec![],
        enters: vec![],
        exits: vec![],
    };
    let mut cpu = Cpu::with_config(
        &mut m,
        &mut rec,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(main).unwrap();
    assert_eq!(cpu.read_u32(a, 12).unwrap(), 777, "DMA must load home copy");
    cpu.read_u32(a, 16).unwrap();
    cpu.ret().unwrap();
    let dma_events: Vec<_> = rec.events.iter().filter(|e| e.dma).collect();
    // Stack spill maps the stack? Stack is off-chip here; only A is mapped.
    assert_eq!(
        dma_events
            .iter()
            .filter(|e| e.block == a && e.kind == AccessKind::Write)
            .count(),
        1,
        "exactly one map-in DMA for A"
    );
    // Non-DMA reads of A hit the STT region.
    let reads: Vec<_> = rec
        .events
        .iter()
        .filter(|e| !e.dma && e.block == a && e.kind == AccessKind::Read)
        .collect();
    assert_eq!(reads.len(), 2);
    assert_eq!(reads[0].target, Target::Region(RegionId::new(1)));
}

#[test]
fn dirty_blocks_write_back_on_finish() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, a, RegionId::new(1)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.write_u32(a, 20, 4242).unwrap();
    cpu.ret().unwrap();
    assert_eq!(
        m.dram().peek_word(a, 20),
        0,
        "home copy stale before finish"
    );
    m.finish(&mut o);
    assert_eq!(
        m.dram().peek_word(a, 20),
        4242,
        "writeback must update home"
    );
}

#[test]
fn stt_writes_cost_ten_cycles_each() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    // Place in STT vs parity and compare write costs.
    let run = |region: RegionId| {
        let p = program();
        let mut map = PlacementMap::new(&p, &regions());
        map.place(&p, p.find("A").unwrap(), region).unwrap();
        map.place(&p, p.find("Main").unwrap(), RegionId::new(0))
            .unwrap();
        let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
        let mut o = NullObserver;
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig {
                fetch_per_data_op: false,
            },
        );
        let (a, main) = (m_find(cpu.machine(), "A"), m_find(cpu.machine(), "Main"));
        let _ = main;
        let _ = a;
        cpu.call(m_find(cpu.machine(), "Main")).unwrap();
        let blk = m_find(cpu.machine(), "A");
        cpu.read_u32(blk, 0).unwrap(); // trigger DMA outside measurement
        let before = cpu.cycle();
        for i in 0..10 {
            cpu.write_u32(blk, i * 4, i).unwrap();
        }
        cpu.cycle() - before
    };
    let _ = (a, main);
    let stt = run(RegionId::new(1));
    let par = run(RegionId::new(3));
    assert_eq!(stt, 100, "10 STT writes at 10 cycles");
    assert_eq!(par, 10, "10 parity-SRAM writes at 1 cycle");
}

fn m_find(m: &Machine, name: &str) -> BlockId {
    m.program().find(name).unwrap()
}

#[test]
fn spm_fetch_is_one_cycle_per_instruction() {
    let p = program();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, main, RegionId::new(0)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.execute(1).unwrap(); // first fetch triggers the lazy map-in DMA
    let before = cpu.cycle();
    cpu.execute(100).unwrap();
    assert_eq!(cpu.cycle() - before, 100);
    cpu.ret().unwrap();
    let stats = m.finish(&mut o);
    assert_eq!(stats.instructions, 101);
}

#[test]
fn off_chip_fetch_misses_then_hits_lines() {
    let p = program();
    let main = p.find("Main").unwrap();
    let map = PlacementMap::new(&p, &regions());
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    cpu.execute(8).unwrap(); // exactly one 32-byte line
    cpu.ret().unwrap();
    let s = m.finish(&mut o);
    assert_eq!(s.icache.misses, 1);
    assert_eq!(s.icache.hits, 7);
}

#[test]
fn stack_overflow_detected() {
    let mut b = Program::builder("deep");
    let f = b.code("F", 64, 128);
    b.stack(256);
    let p = b.build();
    let map = PlacementMap::new(&p, &regions());
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(f).unwrap();
    cpu.call(f).unwrap();
    let err = cpu.call(f).unwrap_err();
    assert!(matches!(err, SimError::StackOverflow { .. }), "{err}");
}

#[test]
fn call_ret_events_balance() {
    let p = program();
    let main = p.find("Main").unwrap();
    let map = PlacementMap::new(&p, &regions());
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut rec = Recorder {
        events: vec![],
        enters: vec![],
        exits: vec![],
    };
    let mut cpu = Cpu::new(&mut m, &mut rec);
    for _ in 0..3 {
        cpu.call(main).unwrap();
        cpu.execute(2).unwrap();
        cpu.ret().unwrap();
    }
    assert!(matches!(cpu.ret(), Err(SimError::CallStackUnderflow)));
    drop(cpu);
    assert_eq!(rec.enters.len(), 3);
    assert_eq!(rec.exits.len(), 3);
}

#[test]
fn out_of_bounds_offset_rejected() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let map = PlacementMap::new(&p, &regions());
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::new(&mut m, &mut o);
    cpu.call(main).unwrap();
    assert!(matches!(
        cpu.read_u32(a, 256),
        Err(SimError::OffsetOutOfBounds { .. })
    ));
    assert!(matches!(
        cpu.read_u32(a, 254),
        Err(SimError::OffsetOutOfBounds { .. })
    ));
}

#[test]
fn wear_counters_reflect_program_writes() {
    let p = program();
    let a = p.find("A").unwrap();
    let main = p.find("Main").unwrap();
    let mut map = PlacementMap::new(&p, &regions());
    map.place(&p, a, RegionId::new(1)).unwrap();
    map.place(&p, main, RegionId::new(0)).unwrap();
    let mut m = Machine::new(MachineConfig::with_regions(regions()), p, map).unwrap();
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(
        &mut m,
        &mut o,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(main).unwrap();
    for _ in 0..50 {
        cpu.write_u32(a, 0, 1).unwrap();
    }
    cpu.write_u32(a, 4, 1).unwrap();
    cpu.ret().unwrap();
    let s = m.finish(&mut o);
    let stt = &s.regions[1];
    // 50 program writes to line 0 + 1 DMA fill write.
    assert_eq!(stt.max_line_writes, 51);
    assert_eq!(stt.program_writes, 51);
}
