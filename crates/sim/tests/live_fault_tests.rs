//! Live fault injection in the running machine: strikes land mid-run,
//! decodes correct/trap/escape per scheme, DUE recovery re-fetches from
//! DRAM, the scrub daemon sweeps, and graceful degradation quarantines
//! and remaps victims.

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    Cpu, CpuConfig, FaultConfig, Machine, MachineConfig, NullObserver, Placement, PlacementMap,
    Program, RegionId, SpmRegionSpec,
};

/// Strikes that flip exactly one bit (the distribution's singles bucket).
fn single_bit() -> MbuDistribution {
    MbuDistribution::new(1.0, 0.0, 0.0, 0.0)
}

fn regions() -> Vec<SpmRegionSpec> {
    vec![
        SpmRegionSpec::new(
            "stt",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(2),
        ),
        SpmRegionSpec::new(
            "ecc",
            Technology::SramSecDed,
            ProtectionScheme::SecDed,
            RegionGeometry::from_kib(2),
        ),
        SpmRegionSpec::new(
            "parity",
            Technology::SramParity,
            ProtectionScheme::Parity,
            RegionGeometry::from_kib(2),
        ),
    ]
}

/// A machine with data block `D` statically resident in `region`,
/// running under `faults`.
fn setup(region: usize, faults: FaultConfig) -> (Machine, ftspm_sim::BlockId, ftspm_sim::BlockId) {
    let mut b = Program::builder("live");
    let f = b.code("F", 256, 0);
    let d = b.data("D", 256);
    b.stack(256);
    let p = b.build();
    let specs = regions();
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, d, RegionId::new(region)).unwrap();
    let m = Machine::new(
        MachineConfig::with_regions(specs).with_faults(faults),
        p,
        map,
    )
    .unwrap();
    (m, f, d)
}

/// Writes then repeatedly reads back `words` words of `d`, checking every
/// value; returns the machine's final fault stats.
fn hammer(
    m: &mut Machine,
    f: ftspm_sim::BlockId,
    d: ftspm_sim::BlockId,
    words: u32,
    rounds: u32,
) -> ftspm_sim::FaultStats {
    let mut o = NullObserver;
    {
        let mut cpu = Cpu::with_config(
            m,
            &mut o,
            CpuConfig {
                fetch_per_data_op: false,
            },
        );
        cpu.call(f).unwrap();
        for w in 0..words {
            cpu.write_u32(d, w * 4, 0xA000_0000 | w).unwrap();
        }
        for _ in 0..rounds {
            for w in 0..words {
                assert_eq!(
                    cpu.read_u32(d, w * 4).unwrap(),
                    0xA000_0000 | w,
                    "word {w} must read back clean"
                );
            }
        }
        cpu.ret().unwrap();
    }
    m.fault_stats().expect("faulted machine has stats")
}

#[test]
fn clean_machine_reports_no_fault_stats() {
    let mut b = Program::builder("clean");
    b.code("F", 256, 0);
    b.data("D", 256);
    b.stack(256);
    let p = b.build();
    let specs = regions();
    let map = PlacementMap::new(&p, &specs);
    let m = Machine::new(MachineConfig::with_regions(specs), p, map).unwrap();
    assert!(m.fault_stats().is_none());
    assert!(m.stats().faults.is_none());
}

#[test]
fn fault_config_validates_region_ids() {
    let mut b = Program::builder("bad");
    b.code("F", 256, 0);
    b.stack(256);
    let p = b.build();
    let specs = regions();
    let map = PlacementMap::new(&p, &specs);
    let mut cfg = FaultConfig::new(1, 100.0);
    cfg.targets = Some(vec![RegionId::new(7)]);
    let err = match Machine::new(MachineConfig::with_regions(specs).with_faults(cfg), p, map) {
        Err(e) => e,
        Ok(_) => panic!("out-of-range target must be rejected"),
    };
    assert!(
        matches!(err, ftspm_sim::SimError::UnknownRegion(_)),
        "{err}"
    );
}

#[test]
fn single_bit_strikes_on_secded_are_corrected_with_zero_sdc() {
    let mut cfg = FaultConfig::new(0xDEC0DE, 40.0);
    cfg.mbu = single_bit();
    cfg.targets = Some(vec![RegionId::new(1)]);
    let (mut m, f, d) = setup(1, cfg);
    let stats = hammer(&mut m, f, d, 64, 60);
    assert!(stats.strikes > 50, "strikes landed: {}", stats.strikes);
    assert!(
        stats.corrections > 0,
        "some flips decoded as DRE: {stats:?}"
    );
    assert_eq!(stats.sdc_escapes, 0, "SEC-DED never leaks singles");
    assert_eq!(stats.masked, 0, "no immune region targeted");
    assert!(stats.recovery_cycles > 0, "corrections charge cycles");
}

#[test]
fn immune_stt_masks_every_strike() {
    let mut cfg = FaultConfig::new(0x57A7, 40.0);
    cfg.mbu = single_bit();
    cfg.targets = Some(vec![RegionId::new(0)]);
    let (mut m, f, d) = setup(0, cfg);
    let stats = hammer(&mut m, f, d, 64, 60);
    assert!(stats.strikes > 50);
    assert_eq!(stats.masked, stats.strikes, "STT-RAM absorbs everything");
    assert_eq!(stats.corrections, 0);
    assert_eq!(stats.due_traps, 0);
    assert_eq!(stats.sdc_escapes, 0);
}

#[test]
fn parity_single_flips_trap_and_recover_from_dram() {
    let mut cfg = FaultConfig::new(0x0DD, 60.0);
    cfg.mbu = single_bit();
    cfg.targets = Some(vec![RegionId::new(2)]);
    // Quarantine off: recovery alone must keep the data clean.
    cfg.quarantine_due_threshold = u32::MAX;
    let (mut m, f, d) = setup(2, cfg);
    let stats = hammer(&mut m, f, d, 64, 60);
    assert!(
        stats.due_traps > 0,
        "parity turns singles into DUEs: {stats:?}"
    );
    assert_eq!(stats.corrections, 0, "parity corrects nothing");
    assert!(
        stats.recovery_cycles >= 25 * stats.due_traps,
        "each trap re-fetches a DRAM burst"
    );
}

#[test]
fn repeated_due_traps_quarantine_and_remap_the_block() {
    let mut cfg = FaultConfig::new(0xBEEF, 25.0);
    cfg.mbu = single_bit();
    cfg.targets = Some(vec![RegionId::new(2)]);
    cfg.quarantine_due_threshold = 1; // first trap evicts the line
    cfg.demotion = vec![None, None, Some(RegionId::new(0))];
    let (mut m, f, d) = setup(2, cfg);
    let stats = hammer(&mut m, f, d, 64, 80);
    assert!(stats.due_traps > 0);
    assert!(stats.quarantined_lines > 0, "{stats:?}");
    assert!(stats.remapped_blocks > 0, "{stats:?}");
    assert_eq!(
        m.placement().placement(d),
        Placement::Dynamic {
            region: RegionId::new(0)
        },
        "victim demoted to the immune STT region"
    );
    // Demoted and immune: later reads stay clean (hammer asserted them).
    let final_stats = m.fault_stats().unwrap();
    assert_eq!(final_stats.sdc_escapes, 0);
}

#[test]
fn wear_budget_quarantines_hot_stt_lines() {
    let mut cfg = FaultConfig::new(1, 1e15);
    cfg.targets = Some(vec![]); // no strikes: wear only
    cfg.line_write_budget = Some(8);
    cfg.demotion = vec![Some(RegionId::new(1)), None, None];
    let (mut m, f, d) = setup(0, cfg);
    let mut o = NullObserver;
    {
        let mut cpu = Cpu::with_config(
            &mut m,
            &mut o,
            CpuConfig {
                fetch_per_data_op: false,
            },
        );
        cpu.call(f).unwrap();
        // Hammer one word past the 8-write budget (plus the DMA fill's
        // writes); the line wear-quarantines and D demotes to SEC-DED.
        for i in 0..32 {
            cpu.write_u32(d, 0, i).unwrap();
        }
        assert_eq!(cpu.read_u32(d, 0).unwrap(), 31);
        cpu.ret().unwrap();
    }
    let stats = m.fault_stats().unwrap();
    assert_eq!(stats.strikes, 0, "no strikes configured");
    assert!(stats.quarantined_lines >= 1, "{stats:?}");
    assert!(stats.remapped_blocks >= 1, "{stats:?}");
    assert_eq!(
        m.placement().placement(d),
        Placement::Dynamic {
            region: RegionId::new(1)
        },
        "worn STT victim moves to SRAM"
    );
}

#[test]
fn scrub_daemon_sweeps_protected_regions() {
    let mut cfg = FaultConfig::new(0x5C3B, 120.0);
    cfg.mbu = single_bit();
    cfg.targets = Some(vec![RegionId::new(1)]);
    cfg.scrub_interval = Some(1_000);
    let (mut m, f, d) = setup(1, cfg);
    let stats = hammer(&mut m, f, d, 64, 60);
    assert!(stats.scrub_passes > 0, "{stats:?}");
    assert!(
        stats.corrections + stats.scrub_corrections > 0,
        "flips get corrected on access or by the daemon: {stats:?}"
    );
    assert_eq!(stats.sdc_escapes, 0);
}

#[test]
fn faulted_runs_replay_bit_for_bit_per_seed() {
    let run = |seed: u64| {
        let mut cfg = FaultConfig::new(seed, 40.0);
        cfg.mbu = single_bit();
        cfg.targets = Some(vec![RegionId::new(1), RegionId::new(2)]);
        cfg.scrub_interval = Some(3_000);
        cfg.quarantine_due_threshold = 2;
        cfg.demotion = vec![None, Some(RegionId::new(0)), Some(RegionId::new(0))];
        let (mut m, f, d) = setup(1, cfg);
        let stats = hammer(&mut m, f, d, 64, 40);
        (stats, m.cycle())
    };
    let (s1, c1) = run(0xFEED);
    let (s2, c2) = run(0xFEED);
    assert_eq!(s1, s2, "same seed, same fault history");
    assert_eq!(c1, c2, "same seed, same final cycle count");
    let (s3, c3) = run(0xFEEE);
    assert!(
        s3 != s1 || c3 != c1,
        "a fresh seed is a fresh fault history"
    );
}
