//! Graceful-degradation edge cases under the fault fast path, pinned as
//! named regressions: a strike landing on an already-quarantined line, a
//! scrub pass racing a DUE re-fetch, and (in
//! `fault_fastpath_props.rs::epoch_wraparound_still_detects_mutation`)
//! epoch-counter wraparound. Each scenario also runs through the
//! reference path and must agree byte for byte.

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_sim::{
    Cpu, CpuConfig, FaultConfig, FaultStats, Machine, MachineConfig, NullObserver, Placement,
    PlacementMap, Program, RegionId, SpmRegionSpec,
};

/// Strikes that flip exactly two adjacent bits: on SEC-DED, every strike
/// decodes as a DUE — the trap machinery fires deterministically.
fn double_bit() -> MbuDistribution {
    MbuDistribution::new(0.0, 1.0, 0.0, 0.0)
}

/// A tiny 16-word SEC-DED region (so repeat strikes on one line are
/// certain), an immune STT demotion target, and one data block pinned in
/// the struck region.
fn setup(cfg: FaultConfig) -> (Machine, ftspm_sim::BlockId, ftspm_sim::BlockId) {
    let mut b = Program::builder("edges");
    let f = b.code("F", 256, 0);
    let d = b.data("D", 64);
    b.stack(256);
    let p = b.build();
    let specs = vec![
        SpmRegionSpec::new(
            "stt",
            Technology::SttRam,
            ProtectionScheme::Immune,
            RegionGeometry::from_kib(1),
        ),
        SpmRegionSpec::new(
            "ecc",
            Technology::SramSecDed,
            ProtectionScheme::SecDed,
            RegionGeometry::from_bytes(64),
        ),
    ];
    let mut map = PlacementMap::new(&p, &specs);
    map.place(&p, d, RegionId::new(1)).unwrap();
    let m = Machine::new(MachineConfig::with_regions(specs).with_faults(cfg), p, map).unwrap();
    (m, f, d)
}

/// Writes then re-reads the block for `rounds` rounds, tolerating
/// corrupted read-backs (strikes here are DUE-class, so values stay
/// clean, but the helper does not assert it — the tests pin stats).
fn hammer(m: &mut Machine, f: ftspm_sim::BlockId, d: ftspm_sim::BlockId, rounds: u32) {
    let mut o = NullObserver;
    let mut cpu = Cpu::with_config(
        m,
        &mut o,
        CpuConfig {
            fetch_per_data_op: false,
        },
    );
    cpu.call(f).unwrap();
    for w in 0..16 {
        cpu.write_u32(d, w * 4, 0xE000_0000 | w).unwrap();
    }
    for _ in 0..rounds {
        for w in 0..16 {
            cpu.read_u32(d, w * 4).unwrap();
        }
    }
    cpu.ret().unwrap();
}

/// One full scenario run; `reference` selects the oracle path.
fn run(
    cfg_mut: impl Fn(&mut FaultConfig),
    reference: bool,
) -> (FaultStats, u64, Vec<u32>, Vec<u32>) {
    let mut cfg = FaultConfig::new(0xED6E, 30.0);
    cfg.mbu = double_bit();
    cfg.targets = Some(vec![RegionId::new(1)]);
    cfg.quarantine_due_threshold = 1;
    cfg.demotion = vec![None, Some(RegionId::new(0))];
    cfg.reference_path = reference;
    cfg_mut(&mut cfg);
    let (mut m, f, d) = setup(cfg);
    hammer(&mut m, f, d, 60);
    let region = RegionId::new(1);
    (
        m.fault_stats().unwrap(),
        m.cycle(),
        m.pending_marks(region),
        m.quarantined_lines(region),
    )
}

/// Strikes keep landing on lines that are already quarantined (16 words,
/// dozens of strikes): the quarantine must count each line once, remap
/// its owner once, and never double-book.
#[test]
fn strikes_on_already_quarantined_lines_count_once() {
    let (stats, _, _, quarantined) = run(|_| {}, false);
    assert!(stats.due_traps > 0, "{stats:?}");
    assert!(
        stats.quarantined_lines >= 1,
        "first DUE quarantines: {stats:?}"
    );
    assert_eq!(
        stats.quarantined_lines,
        quarantined.len() as u64,
        "stats and machine state agree on the quarantine set"
    );
    assert!(
        stats.quarantined_lines <= 16,
        "a 16-word region cannot lose more than 16 lines: {stats:?}"
    );
    assert!(
        stats.strikes > stats.quarantined_lines,
        "repeat strikes on quarantined lines landed and were not \
         double-counted: {stats:?}"
    );
    assert_eq!(
        stats.remapped_blocks, 1,
        "the single resident block demotes exactly once: {stats:?}"
    );
}

/// The same scenario remaps the victim into the immune STT region and
/// stays byte-identical across the fast and reference paths.
#[test]
fn quarantine_scenario_agrees_with_reference_path() {
    let fast = run(|_| {}, false);
    let reference = run(|_| {}, true);
    assert_eq!(fast, reference, "fast vs reference diverged");
}

/// A strike re-marks the struck line *while its DUE recovery is still
/// re-fetching* (the injector keeps running mid-recovery), forcing a
/// retry; meanwhile the scrub daemon is sweeping the same region. The
/// interleaving must replay identically on both paths.
#[test]
fn scrub_racing_due_refetch_replays_identically() {
    let scenario = |reference| {
        run(
            |cfg| {
                cfg.seed = 0x5C3B_0001;
                cfg.mean_cycles_between_strikes = 8.0;
                cfg.scrub_interval = Some(400);
                cfg.quarantine_due_threshold = u32::MAX; // keep lines in play
            },
            reference,
        )
    };
    let fast = scenario(false);
    let reference = scenario(true);
    let (stats, _, _, _) = &fast;
    assert!(
        stats.due_retries > 0,
        "a mid-recovery strike forced at least one re-fetch retry: {stats:?}"
    );
    assert!(stats.scrub_passes > 0, "the daemon swept: {stats:?}");
    assert!(
        stats.scrub_corrections == 0,
        "2-bit flips are never DRE on SEC-DED: {stats:?}"
    );
    assert_eq!(fast, reference, "fast vs reference diverged");
}

/// Demotion lands the victim in the immune region after its first DUE.
#[test]
fn quarantined_victim_demotes_to_immune_region() {
    let mut cfg = FaultConfig::new(0xED6E, 30.0);
    cfg.mbu = double_bit();
    cfg.targets = Some(vec![RegionId::new(1)]);
    cfg.quarantine_due_threshold = 1;
    cfg.demotion = vec![None, Some(RegionId::new(0))];
    let (mut m, f, d) = setup(cfg);
    hammer(&mut m, f, d, 60);
    assert_eq!(
        m.placement().placement(d),
        Placement::Dynamic {
            region: RegionId::new(0)
        },
        "victim demoted to the immune STT region"
    );
    assert!(m.fault_stats().unwrap().sdc_escapes == 0);
}
