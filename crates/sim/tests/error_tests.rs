//! Error type behaviour: Display renders, Error is implemented, variants
//! carry their diagnostic payloads.

use ftspm_sim::{BlockId, RegionId, SimError};

#[test]
fn display_mentions_the_payload() {
    let e = SimError::RegionFull {
        region: RegionId::new(2),
        block: BlockId::new(5),
        requested: 4096,
        available: 1024,
    };
    let s = e.to_string();
    assert!(s.contains("4096"), "{s}");
    assert!(s.contains("1024"), "{s}");

    let e = SimError::OffsetOutOfBounds {
        block: BlockId::new(1),
        offset: 999,
        size: 256,
    };
    let s = e.to_string();
    assert!(s.contains("999") && s.contains("256"), "{s}");

    let e = SimError::StackOverflow {
        required: 600,
        capacity: 512,
    };
    assert!(e.to_string().contains("600"));

    assert!(!SimError::CallStackUnderflow.to_string().is_empty());
    assert!(!SimError::NoStackBlock.to_string().is_empty());
    assert!(SimError::UnknownRegion(RegionId::new(7))
        .to_string()
        .contains("7"));
}

#[test]
fn error_trait_is_implemented() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<SimError>();
    // …and it can be boxed as a dyn error (API guidelines C-GOOD-ERR).
    let boxed: Box<dyn std::error::Error> = Box::new(SimError::CallStackUnderflow);
    assert!(boxed.source().is_none());
}

#[test]
fn errors_are_comparable_for_tests() {
    assert_eq!(SimError::CallStackUnderflow, SimError::CallStackUnderflow);
    assert_ne!(SimError::CallStackUnderflow, SimError::NoStackBlock);
}
