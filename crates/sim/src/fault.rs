//! Runtime fault model: configuration and state of the live
//! fault-and-recovery subsystem threaded through [`crate::Machine`].
//!
//! The model separates the *physical* event (a particle strike latches a
//! cluster of flipped bits into an SPM word) from its *architectural*
//! outcome (what the region's protection scheme makes of those flips at
//! the next decode). Strikes are recorded as pending flip masks; every
//! program read or fetch of a marked word decodes it through the region's
//! [`ProtectionScheme`]:
//!
//! * **DRE** — the code corrects; the controller rewrites the word in
//!   place (a real write: latency, energy, wear) and execution continues;
//! * **DUE** — the code detects but cannot correct; the machine traps and
//!   re-fetches the clean copy from DRAM with bounded retries, charging
//!   the full recovery latency/energy;
//! * **SDC** — the flips alias to a valid codeword; the stored data is
//!   really corrupted and the error propagates into program results.
//!
//! A configurable scrub daemon periodically sweeps the protected SRAM
//! regions, rewriting correctable words before flips accumulate past the
//! code's strength. A graceful-degradation layer quarantines word lines
//! that trap repeatedly (or exceed an STT-RAM endurance budget) and
//! remaps the victim block to the next-safer region (the demotion map,
//! typically computed by the `ftspm-core` remap policy).
//!
//! ## The hot path
//!
//! Merely *arming* the injector must not tax a clean access stream: the
//! pending marks per region live in a [`MarkTable`] whose per-word dirty
//! bitmap answers "is anything marked here?" in O(1), and the subsystem
//! is event-driven — [`FaultState::next_event`] caches the cycle of the
//! next scheduled strike or scrub tick, so an access on a machine with no
//! event due pays exactly one comparison instead of re-deriving the
//! schedule. The pre-optimization per-access path is kept selectable
//! (`FaultConfig::reference_path`) as the oracle the fast-path
//! differential test battery diffs against, byte for byte.

use std::collections::{BTreeMap, BTreeSet};

use ftspm_ecc::{MbuDistribution, ParityWord, ProtectionScheme, HAMMING_32};
use ftspm_faults::LiveInjector;

use crate::RegionId;

/// Configuration of the live fault-and-recovery subsystem.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// MBU cluster-size distribution of injected strikes.
    pub mbu: MbuDistribution,
    /// Mean cycles between strikes (exponential inter-arrival).
    pub mean_cycles_between_strikes: f64,
    /// RNG seed; the whole injected run replays bit-for-bit per seed.
    pub seed: u64,
    /// Scrub-daemon period in cycles (`None` disables scrubbing).
    pub scrub_interval: Option<u64>,
    /// DUE recovery re-fetch attempts before the line is given up on and
    /// quarantined.
    pub due_retry_limit: u32,
    /// DUE traps on one word line before it is quarantined.
    pub quarantine_due_threshold: u32,
    /// Per-line write budget for STT-RAM regions; a line written more
    /// often is wear-quarantined (`None` disables the budget).
    pub line_write_budget: Option<u64>,
    /// Restrict strikes to these regions (`None` = every region).
    pub targets: Option<Vec<RegionId>>,
    /// Per-region demotion target for quarantined victims, indexed by
    /// region id; a missing or `None` entry demotes straight to off-chip.
    pub demotion: Vec<Option<RegionId>>,
    /// Route every access through the reference (pre-optimization)
    /// per-access tick-and-probe path instead of the event-gated fast
    /// path. The two paths are observably byte-identical — the
    /// fast-path differential suite enforces it — so this knob exists
    /// purely as the equivalence oracle and costs throughput.
    pub reference_path: bool,
}

impl FaultConfig {
    /// A configuration with the 40 nm MBU distribution, recovery enabled
    /// (3 retries, quarantine after 3 DUEs on a line), the fast path,
    /// and scrubbing, endurance budget and region restriction off.
    pub fn new(seed: u64, mean_cycles_between_strikes: f64) -> Self {
        Self {
            mbu: MbuDistribution::default(),
            mean_cycles_between_strikes,
            seed,
            scrub_interval: None,
            due_retry_limit: 3,
            quarantine_due_threshold: 3,
            line_write_budget: None,
            targets: None,
            demotion: Vec::new(),
            reference_path: false,
        }
    }
}

/// Counters of the live fault subsystem (returned in
/// [`crate::MachineStats::faults`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Strikes injected (including those masked by immune cells).
    pub strikes: u64,
    /// Strikes absorbed by soft-error-immune (STT-RAM) regions.
    pub masked: u64,
    /// Words corrected in place on access (DRE).
    pub corrections: u64,
    /// Detected-unrecoverable traps taken (DUE).
    pub due_traps: u64,
    /// Extra recovery re-fetch attempts beyond the first.
    pub due_retries: u64,
    /// Silent corruptions that escaped into stored data (SDC).
    pub sdc_escapes: u64,
    /// Scrub-daemon passes completed.
    pub scrub_passes: u64,
    /// Words the scrub daemon corrected before an access consumed them.
    pub scrub_corrections: u64,
    /// Word lines quarantined (repeated DUEs or endurance budget).
    pub quarantined_lines: u64,
    /// Blocks demoted to a safer region (or off-chip) after quarantine.
    pub remapped_blocks: u64,
    /// Cycles charged to correction rewrites, DUE re-fetches and scrub
    /// sweeps — the run's recovery overhead.
    pub recovery_cycles: u64,
}

/// Stored bits per codeword under `scheme` (the strike surface).
pub(crate) fn stored_bits(scheme: ProtectionScheme) -> u32 {
    match scheme {
        ProtectionScheme::None | ProtectionScheme::Immune => 32,
        ProtectionScheme::Parity => ParityWord::STORED_BITS,
        ProtectionScheme::SecDed => HAMMING_32.stored_bits(),
    }
}

/// Folds a codeword flip mask onto the 32 data-bit positions (the same
/// `bit % 32` clamp [`crate::Machine::inject_strike`] applies).
pub(crate) fn fold_data_mask(mask: u64) -> u32 {
    (mask & 0xFFFF_FFFF) as u32 | (mask >> 32) as u32
}

/// Pending flip masks of one region, indexed by word: a sorted map of
/// accumulated codeword masks shadowed by a per-word dirty bitmap and a
/// wrapping epoch counter.
///
/// The bitmap makes the hot-path question — *does this word (or this
/// region at all) carry a pending strike?* — a single load-and-test,
/// so a clean access through an armed fault subsystem costs one branch
/// instead of a map probe. The map keeps the masks themselves in
/// ascending word order, which is what makes scrub sweeps (and hence
/// replays) deterministic.
///
/// The epoch increments on every mutating operation that changes the
/// table (an insert/merge, a hit by [`remove`](Self::remove) or
/// [`clear_range`](Self::clear_range)); probes and no-op clears leave it
/// untouched. It wraps: compare epochs with `!=`, which only aliases if
/// exactly 2³² mutations land between two observations.
#[derive(Debug, Clone)]
pub struct MarkTable {
    words: u32,
    /// One bit per word; bit set ⇔ the word has an entry in `masks`.
    bitmap: Vec<u64>,
    /// Word index → accumulated flip mask over the stored codeword bits.
    masks: BTreeMap<u32, u64>,
    epoch: u32,
}

impl MarkTable {
    /// An empty table covering `words` codewords.
    pub fn new(words: u32) -> Self {
        Self {
            words,
            bitmap: vec![0; words.div_ceil(64) as usize],
            masks: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// Number of codewords the table covers.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Number of marked words.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no word is marked — the O(1) fast-path check.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The wrapping mutation counter; a changed (`!=`) epoch means the
    /// marked-word set or some mask changed since it was read.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether `word` carries a pending mask (O(1) via the bitmap).
    #[inline]
    pub fn is_marked(&self, word: u32) -> bool {
        let i = (word >> 6) as usize;
        self.bitmap
            .get(i)
            .is_some_and(|&b| b & (1 << (word & 63)) != 0)
    }

    /// The pending mask on `word`, if any, without consuming it.
    pub fn get(&self, word: u32) -> Option<u64> {
        if !self.is_marked(word) {
            return None;
        }
        self.masks.get(&word).copied()
    }

    /// ORs `mask` into `word`'s pending mask (a strike landing on a word
    /// that already carries flips accumulates).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn or_insert(&mut self, word: u32, mask: u64) {
        assert!(word < self.words, "mark {word} beyond {} words", self.words);
        self.bitmap[(word >> 6) as usize] |= 1 << (word & 63);
        *self.masks.entry(word).or_insert(0) |= mask;
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Removes and returns `word`'s pending mask. A miss costs one
    /// bitmap test and does not bump the epoch.
    #[inline]
    pub fn remove(&mut self, word: u32) -> Option<u64> {
        if !self.is_marked(word) {
            return None;
        }
        let mask = self.masks.remove(&word);
        debug_assert!(mask.is_some(), "bitmap bit set without a mask entry");
        self.bitmap[(word >> 6) as usize] &= !(1 << (word & 63));
        self.epoch = self.epoch.wrapping_add(1);
        mask
    }

    /// Clears every mark in `[first, first + count)` — what a DMA fill
    /// rewriting a whole slot does. O(1) when the table is clean;
    /// otherwise zero bitmap chunks are skipped wholesale.
    pub fn clear_range(&mut self, first: u32, count: u32) {
        if self.masks.is_empty() || count == 0 {
            return;
        }
        let end = first.saturating_add(count).min(self.words);
        let mut w = first.min(self.words);
        while w < end {
            if self.bitmap[(w >> 6) as usize] == 0 {
                // Nothing marked in this 64-word chunk: skip it whole.
                w = (w & !63) + 64;
                continue;
            }
            let chunk_end = end.min((w & !63) + 64);
            for b in w..chunk_end {
                self.remove(b);
            }
            w = chunk_end;
        }
    }

    /// Collects every marked word in ascending order into `out`
    /// (cleared first) — the batch-decode entry the scrub daemon uses
    /// instead of re-walking the map. Zero bitmap chunks cost one test.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (i, &chunk) in self.bitmap.iter().enumerate() {
            let mut c = chunk;
            while c != 0 {
                out.push((i as u32) * 64 + c.trailing_zeros());
                c &= c - 1;
            }
        }
    }

    /// Test hook: pins the epoch so wraparound behaviour can be pinned
    /// without 2³² mutations.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Live state of the fault subsystem inside a running machine.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) config: FaultConfig,
    pub(crate) injector: LiveInjector,
    /// Regions eligible for strikes, with their word counts as weights.
    pub(crate) eligible: Vec<usize>,
    pub(crate) weights: Vec<u64>,
    /// Whether any strike can ever land (some eligible region has a
    /// positive weight). Precomputed: the weights never change.
    pub(crate) armed: bool,
    /// Route accesses through the reference per-access path (the
    /// differential oracle) instead of the event-gated fast path.
    pub(crate) reference: bool,
    /// Pending flip masks per region.
    pub(crate) marks: Vec<MarkTable>,
    /// DUE traps observed per region word line.
    pub(crate) due_counts: Vec<BTreeMap<u32, u32>>,
    /// Quarantined word lines per region.
    pub(crate) quarantined: Vec<BTreeSet<u32>>,
    /// Cycle of the next scrub pass.
    pub(crate) next_scrub: u64,
    /// Cycle of the next scheduled event (strike arrival or scrub tick):
    /// the fast path's single-comparison gate. Recomputed whenever the
    /// injector advances or a scrub pass is (re)scheduled.
    pub(crate) next_event: u64,
    /// Reused batch-decode buffer for scrub sweeps (avoids a per-pass
    /// allocation on the critical path).
    pub(crate) scrub_scratch: Vec<u32>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Builds the runtime state for `config` over `region_words` (the
    /// machine's regions in id order, as word counts). Assumes region ids
    /// in the config were validated by the caller.
    pub(crate) fn new(config: FaultConfig, region_words: &[u32]) -> Self {
        let n = region_words.len();
        let eligible: Vec<usize> = match &config.targets {
            Some(t) => t.iter().map(|r| r.index()).collect(),
            None => (0..n).collect(),
        };
        let weights: Vec<u64> = eligible
            .iter()
            .map(|&i| u64::from(region_words[i]))
            .collect();
        let armed = weights.iter().any(|&w| w > 0);
        let injector =
            LiveInjector::new(config.mbu, config.mean_cycles_between_strikes, config.seed);
        let next_scrub = config.scrub_interval.unwrap_or(u64::MAX);
        let reference = config.reference_path;
        let mut state = Self {
            config,
            injector,
            eligible,
            weights,
            armed,
            reference,
            marks: region_words.iter().map(|&w| MarkTable::new(w)).collect(),
            due_counts: vec![BTreeMap::new(); n],
            quarantined: vec![BTreeSet::new(); n],
            next_scrub,
            next_event: 0,
            scrub_scratch: Vec::new(),
            stats: FaultStats::default(),
        };
        state.recompute_next_event();
        state
    }

    /// Re-derives [`next_event`](Self::next_event) from the injector's
    /// next arrival and the scrub schedule.
    pub(crate) fn recompute_next_event(&mut self) {
        let strike = if self.armed {
            self.injector.next_cycle()
        } else {
            u64::MAX
        };
        self.next_event = strike.min(self.next_scrub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_bits_match_the_codecs() {
        assert_eq!(stored_bits(ProtectionScheme::None), 32);
        assert_eq!(stored_bits(ProtectionScheme::Immune), 32);
        assert_eq!(stored_bits(ProtectionScheme::Parity), 33);
        assert_eq!(stored_bits(ProtectionScheme::SecDed), 39);
    }

    #[test]
    fn data_mask_folds_check_bit_positions_into_the_word() {
        assert_eq!(fold_data_mask(0b1), 0b1);
        assert_eq!(fold_data_mask(1 << 35), 1 << 3);
        assert_eq!(fold_data_mask((1 << 38) | (1 << 4)), (1 << 6) | (1 << 4));
        // Every non-empty mask stays non-empty after folding.
        assert_ne!(fold_data_mask(1 << 32), 0);
    }

    #[test]
    fn state_restricts_eligibility_to_targets() {
        let mut cfg = FaultConfig::new(1, 100.0);
        cfg.targets = Some(vec![RegionId::new(2)]);
        let s = FaultState::new(cfg, &[4096, 3072, 512, 512]);
        assert_eq!(s.eligible, vec![2]);
        assert_eq!(s.weights, vec![512]);
        assert!(s.armed);
    }

    #[test]
    fn disabled_scrub_never_schedules() {
        let s = FaultState::new(FaultConfig::new(1, 100.0), &[512]);
        assert_eq!(s.next_scrub, u64::MAX);
        // But strikes do: the event gate is the injector's first arrival.
        assert_eq!(s.next_event, s.injector.next_cycle());
    }

    #[test]
    fn zero_weight_state_is_disarmed_and_eventless_until_scrub() {
        let mut cfg = FaultConfig::new(1, 100.0);
        cfg.targets = Some(vec![]);
        let s = FaultState::new(cfg, &[512]);
        assert!(!s.armed);
        assert_eq!(s.next_event, u64::MAX);

        let mut cfg = FaultConfig::new(1, 100.0);
        cfg.targets = Some(vec![]);
        cfg.scrub_interval = Some(5_000);
        let s = FaultState::new(cfg, &[512]);
        assert!(!s.armed);
        assert_eq!(s.next_event, 5_000);
    }

    #[test]
    fn mark_table_roundtrips_and_accumulates() {
        let mut t = MarkTable::new(130);
        assert!(t.is_empty());
        assert_eq!(t.get(129), None);
        t.or_insert(129, 0b01);
        t.or_insert(129, 0b10);
        t.or_insert(0, 1 << 38);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        assert!(t.is_marked(129) && t.is_marked(0) && !t.is_marked(64));
        assert_eq!(t.get(129), Some(0b11));
        let mut out = Vec::new();
        t.collect_into(&mut out);
        assert_eq!(out, vec![0, 129]);
        assert_eq!(t.remove(129), Some(0b11));
        assert_eq!(t.remove(129), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mark_table_clear_range_skips_clean_chunks() {
        let mut t = MarkTable::new(256);
        t.or_insert(3, 1);
        t.or_insert(130, 2);
        t.or_insert(255, 4);
        t.clear_range(0, 131);
        let mut out = Vec::new();
        t.collect_into(&mut out);
        assert_eq!(out, vec![255]);
        // Clearing a clean table (or an empty span) is a no-op.
        let e = t.epoch();
        t.clear_range(0, 0);
        t.clear_range(0, 255);
        assert_eq!(t.get(255), Some(4));
        assert_eq!(t.epoch(), e);
        t.clear_range(255, 1_000_000);
        assert!(t.is_empty());
    }

    #[test]
    fn mark_table_epoch_bumps_only_on_mutation() {
        let mut t = MarkTable::new(64);
        let e0 = t.epoch();
        assert_eq!(t.remove(7), None);
        assert_eq!(t.get(7), None);
        t.clear_range(0, 64);
        assert_eq!(t.epoch(), e0, "misses and no-ops leave the epoch");
        t.or_insert(7, 1);
        assert_ne!(t.epoch(), e0);
        let e1 = t.epoch();
        t.remove(7);
        assert_ne!(t.epoch(), e1);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn mark_table_rejects_out_of_range_marks() {
        MarkTable::new(8).or_insert(8, 1);
    }
}
