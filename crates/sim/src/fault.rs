//! Runtime fault model: configuration and state of the live
//! fault-and-recovery subsystem threaded through [`crate::Machine`].
//!
//! The model separates the *physical* event (a particle strike latches a
//! cluster of flipped bits into an SPM word) from its *architectural*
//! outcome (what the region's protection scheme makes of those flips at
//! the next decode). Strikes are recorded as pending flip masks; every
//! program read or fetch of a marked word decodes it through the region's
//! [`ProtectionScheme`]:
//!
//! * **DRE** — the code corrects; the controller rewrites the word in
//!   place (a real write: latency, energy, wear) and execution continues;
//! * **DUE** — the code detects but cannot correct; the machine traps and
//!   re-fetches the clean copy from DRAM with bounded retries, charging
//!   the full recovery latency/energy;
//! * **SDC** — the flips alias to a valid codeword; the stored data is
//!   really corrupted and the error propagates into program results.
//!
//! A configurable scrub daemon periodically sweeps the protected SRAM
//! regions, rewriting correctable words before flips accumulate past the
//! code's strength. A graceful-degradation layer quarantines word lines
//! that trap repeatedly (or exceed an STT-RAM endurance budget) and
//! remaps the victim block to the next-safer region (the demotion map,
//! typically computed by the `ftspm-core` remap policy).

use std::collections::{BTreeMap, BTreeSet};

use ftspm_ecc::{MbuDistribution, ParityWord, ProtectionScheme, HAMMING_32};
use ftspm_faults::LiveInjector;

use crate::RegionId;

/// Configuration of the live fault-and-recovery subsystem.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// MBU cluster-size distribution of injected strikes.
    pub mbu: MbuDistribution,
    /// Mean cycles between strikes (exponential inter-arrival).
    pub mean_cycles_between_strikes: f64,
    /// RNG seed; the whole injected run replays bit-for-bit per seed.
    pub seed: u64,
    /// Scrub-daemon period in cycles (`None` disables scrubbing).
    pub scrub_interval: Option<u64>,
    /// DUE recovery re-fetch attempts before the line is given up on and
    /// quarantined.
    pub due_retry_limit: u32,
    /// DUE traps on one word line before it is quarantined.
    pub quarantine_due_threshold: u32,
    /// Per-line write budget for STT-RAM regions; a line written more
    /// often is wear-quarantined (`None` disables the budget).
    pub line_write_budget: Option<u64>,
    /// Restrict strikes to these regions (`None` = every region).
    pub targets: Option<Vec<RegionId>>,
    /// Per-region demotion target for quarantined victims, indexed by
    /// region id; a missing or `None` entry demotes straight to off-chip.
    pub demotion: Vec<Option<RegionId>>,
}

impl FaultConfig {
    /// A configuration with the 40 nm MBU distribution, recovery enabled
    /// (3 retries, quarantine after 3 DUEs on a line), and scrubbing,
    /// endurance budget and region restriction off.
    pub fn new(seed: u64, mean_cycles_between_strikes: f64) -> Self {
        Self {
            mbu: MbuDistribution::default(),
            mean_cycles_between_strikes,
            seed,
            scrub_interval: None,
            due_retry_limit: 3,
            quarantine_due_threshold: 3,
            line_write_budget: None,
            targets: None,
            demotion: Vec::new(),
        }
    }
}

/// Counters of the live fault subsystem (returned in
/// [`crate::MachineStats::faults`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Strikes injected (including those masked by immune cells).
    pub strikes: u64,
    /// Strikes absorbed by soft-error-immune (STT-RAM) regions.
    pub masked: u64,
    /// Words corrected in place on access (DRE).
    pub corrections: u64,
    /// Detected-unrecoverable traps taken (DUE).
    pub due_traps: u64,
    /// Extra recovery re-fetch attempts beyond the first.
    pub due_retries: u64,
    /// Silent corruptions that escaped into stored data (SDC).
    pub sdc_escapes: u64,
    /// Scrub-daemon passes completed.
    pub scrub_passes: u64,
    /// Words the scrub daemon corrected before an access consumed them.
    pub scrub_corrections: u64,
    /// Word lines quarantined (repeated DUEs or endurance budget).
    pub quarantined_lines: u64,
    /// Blocks demoted to a safer region (or off-chip) after quarantine.
    pub remapped_blocks: u64,
    /// Cycles charged to correction rewrites, DUE re-fetches and scrub
    /// sweeps — the run's recovery overhead.
    pub recovery_cycles: u64,
}

/// Stored bits per codeword under `scheme` (the strike surface).
pub(crate) fn stored_bits(scheme: ProtectionScheme) -> u32 {
    match scheme {
        ProtectionScheme::None | ProtectionScheme::Immune => 32,
        ProtectionScheme::Parity => ParityWord::STORED_BITS,
        ProtectionScheme::SecDed => HAMMING_32.stored_bits(),
    }
}

/// Folds a codeword flip mask onto the 32 data-bit positions (the same
/// `bit % 32` clamp [`crate::Machine::inject_strike`] applies).
pub(crate) fn fold_data_mask(mask: u64) -> u32 {
    (mask & 0xFFFF_FFFF) as u32 | (mask >> 32) as u32
}

/// Live state of the fault subsystem inside a running machine.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) config: FaultConfig,
    pub(crate) injector: LiveInjector,
    /// Regions eligible for strikes, with their word counts as weights.
    pub(crate) eligible: Vec<usize>,
    pub(crate) weights: Vec<u64>,
    /// Pending flip masks per region: word index → accumulated mask over
    /// the stored codeword bits. `BTreeMap` keeps iteration (and thus
    /// scrub order and replay) deterministic.
    pub(crate) marks: Vec<BTreeMap<u32, u64>>,
    /// DUE traps observed per region word line.
    pub(crate) due_counts: Vec<BTreeMap<u32, u32>>,
    /// Quarantined word lines per region.
    pub(crate) quarantined: Vec<BTreeSet<u32>>,
    /// Cycle of the next scrub pass.
    pub(crate) next_scrub: u64,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Builds the runtime state for `config` over `region_words` (the
    /// machine's regions in id order, as word counts). Assumes region ids
    /// in the config were validated by the caller.
    pub(crate) fn new(config: FaultConfig, region_words: &[u32]) -> Self {
        let n = region_words.len();
        let eligible: Vec<usize> = match &config.targets {
            Some(t) => t.iter().map(|r| r.index()).collect(),
            None => (0..n).collect(),
        };
        let weights: Vec<u64> = eligible
            .iter()
            .map(|&i| u64::from(region_words[i]))
            .collect();
        let injector =
            LiveInjector::new(config.mbu, config.mean_cycles_between_strikes, config.seed);
        let next_scrub = config.scrub_interval.unwrap_or(u64::MAX);
        Self {
            config,
            injector,
            eligible,
            weights,
            marks: vec![BTreeMap::new(); n],
            due_counts: vec![BTreeMap::new(); n],
            quarantined: vec![BTreeSet::new(); n],
            next_scrub,
            stats: FaultStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_bits_match_the_codecs() {
        assert_eq!(stored_bits(ProtectionScheme::None), 32);
        assert_eq!(stored_bits(ProtectionScheme::Immune), 32);
        assert_eq!(stored_bits(ProtectionScheme::Parity), 33);
        assert_eq!(stored_bits(ProtectionScheme::SecDed), 39);
    }

    #[test]
    fn data_mask_folds_check_bit_positions_into_the_word() {
        assert_eq!(fold_data_mask(0b1), 0b1);
        assert_eq!(fold_data_mask(1 << 35), 1 << 3);
        assert_eq!(fold_data_mask((1 << 38) | (1 << 4)), (1 << 6) | (1 << 4));
        // Every non-empty mask stays non-empty after folding.
        assert_ne!(fold_data_mask(1 << 32), 0);
    }

    #[test]
    fn state_restricts_eligibility_to_targets() {
        let mut cfg = FaultConfig::new(1, 100.0);
        cfg.targets = Some(vec![RegionId::new(2)]);
        let s = FaultState::new(cfg, &[4096, 3072, 512, 512]);
        assert_eq!(s.eligible, vec![2]);
        assert_eq!(s.weights, vec![512]);
    }

    #[test]
    fn disabled_scrub_never_schedules() {
        let s = FaultState::new(FaultConfig::new(1, 100.0), &[512]);
        assert_eq!(s.next_scrub, u64::MAX);
    }
}
