//! The CPU execution context workloads run against.
//!
//! [`Cpu`] models the software-visible behaviour of an in-order 32-bit
//! embedded core at block granularity: a real call stack with per-function
//! frames spilled to the program's stack block, instruction fetches
//! walking sequentially through the current code block, and word/byte
//! loads and stores against data blocks. All memory traffic is routed
//! through the [`Machine`] so every access is timed, metered, and visible
//! to the attached [`Observer`].

use crate::observer::Observer;
use crate::{BlockId, BlockKind, Machine, SimError};

/// Knobs for the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Charge one instruction fetch for each load/store issued (the
    /// `ldr`/`str` opcode itself). On by default; disable for pure
    /// trace-replay experiments.
    pub fetch_per_data_op: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_per_data_op: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    block: BlockId,
    pc: u32,
    frame_base: u32,
}

/// One architectural operation issued through the public [`Cpu`] op API.
///
/// This is the unit an access-trace recorder captures: re-issuing the
/// same op sequence against a freshly initialised machine reproduces the
/// exact memory event stream, because everything below this level
/// (spill/reload traffic on call/ret, the implicit instruction fetch
/// charged per data op, byte-merge reads) is *derived* by the `Cpu` from
/// these ops and the machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOp {
    /// [`Cpu::call`] into a code block.
    Call {
        /// The callee code block.
        block: BlockId,
    },
    /// [`Cpu::ret`] from the current frame.
    Ret,
    /// [`Cpu::execute`]: `count` straight-line instruction fetches.
    Execute {
        /// Instructions fetched.
        count: u32,
    },
    /// [`Cpu::read_u32`] (also issued by `read_u8`, which decomposes to
    /// a word read).
    Read {
        /// The data block read.
        block: BlockId,
        /// Byte offset of the word.
        offset: u32,
        /// The value the load observed.
        value: u32,
    },
    /// [`Cpu::write_u32`] (also issued by `write_u8` after the byte
    /// merge).
    Write {
        /// The data block written.
        block: BlockId,
        /// Byte offset of the word.
        offset: u32,
        /// The value stored.
        value: u32,
    },
    /// [`Cpu::stack_read_u32`]; `offset` is frame-relative.
    StackRead {
        /// Frame-relative byte offset.
        offset: u32,
        /// The value the load observed.
        value: u32,
    },
    /// [`Cpu::stack_write_u32`]; `offset` is frame-relative.
    StackWrite {
        /// Frame-relative byte offset.
        offset: u32,
        /// The value stored.
        value: u32,
    },
}

/// Detachable CPU execution state: the call stack and stack pointer of
/// one hardware thread.
///
/// A multi-core run interleaves bounded steps of several logical CPUs
/// over one shared [`Machine`], but only one [`Cpu`] (a mutable machine
/// borrow) can exist at a time. Each core therefore keeps its
/// architectural state in a `CpuState` and swaps it into a freshly
/// borrowed `Cpu` for the duration of its step
/// (see [`crate::MultiMachine::with_core`]).
#[derive(Debug, Clone, Default)]
pub struct CpuState {
    call_stack: Vec<Frame>,
    sp: u32,
    max_sp: u32,
}

impl CpuState {
    /// A fresh state with an empty call stack and `sp = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh state whose stack pointer starts at byte `base` of the
    /// program's stack block. Cores of a multi-core run partition the
    /// single stack block into disjoint per-core slices this way.
    pub fn with_stack_base(base: u32) -> Self {
        Self {
            call_stack: Vec::new(),
            sp: base,
            max_sp: base,
        }
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.call_stack.len()
    }

    /// Peak stack occupancy so far, bytes (from the block start, so a
    /// non-zero stack base is included).
    pub fn max_stack_bytes(&self) -> u32 {
        self.max_sp
    }
}

/// A tapped op plus the machine cycle at which it was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TappedOp {
    /// Machine cycle when the op was issued (before it ran).
    pub cycle: u64,
    /// The op itself.
    pub op: CpuOp,
}

/// Execution context: borrows the machine and an observer for the duration
/// of one workload run.
pub struct Cpu<'m, 'o> {
    machine: &'m mut Machine,
    observer: &'o mut dyn Observer,
    config: CpuConfig,
    call_stack: Vec<Frame>,
    sp: u32,
    max_sp: u32,
    op_tap: Option<Vec<TappedOp>>,
}

impl<'m, 'o> Cpu<'m, 'o> {
    /// Creates a CPU over `machine`, reporting to `observer`.
    pub fn new(machine: &'m mut Machine, observer: &'o mut dyn Observer) -> Self {
        Self::with_config(machine, observer, CpuConfig::default())
    }

    /// Creates a CPU with an explicit configuration.
    pub fn with_config(
        machine: &'m mut Machine,
        observer: &'o mut dyn Observer,
        config: CpuConfig,
    ) -> Self {
        Self {
            machine,
            observer,
            config,
            call_stack: Vec::new(),
            sp: 0,
            max_sp: 0,
            op_tap: None,
        }
    }

    /// Swaps this CPU's architectural state (call stack, stack pointer)
    /// with `state`. Swapping in before a bounded step and back out after
    /// lets several logical cores time-share one machine borrow without
    /// losing their call stacks between steps.
    pub fn swap_state(&mut self, state: &mut CpuState) {
        std::mem::swap(&mut self.call_stack, &mut state.call_stack);
        std::mem::swap(&mut self.sp, &mut state.sp);
        std::mem::swap(&mut self.max_sp, &mut state.max_sp);
    }

    /// Starts capturing every successful public op into an in-memory
    /// buffer (see [`CpuOp`]). Internal traffic — spill/reload on
    /// call/ret, the implicit fetch charged per data op — is *not*
    /// captured: replaying the tapped ops regenerates it.
    pub fn start_op_tap(&mut self) {
        self.op_tap = Some(Vec::new());
    }

    /// Stops the tap and returns the captured ops (empty if the tap was
    /// never started).
    pub fn take_op_tap(&mut self) -> Vec<TappedOp> {
        self.op_tap.take().unwrap_or_default()
    }

    fn tap(&mut self, cycle: u64, op: CpuOp) {
        if let Some(buf) = self.op_tap.as_mut() {
            buf.push(TappedOp { cycle, op });
        }
    }

    /// The machine being driven.
    pub fn machine(&self) -> &Machine {
        &*self.machine
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.machine.cycle()
    }

    /// The currently executing code block, if any.
    pub fn current_block(&self) -> Option<BlockId> {
        self.call_stack.last().map(|f| f.block)
    }

    /// Peak stack occupancy so far, bytes.
    pub fn max_stack_bytes(&self) -> u32 {
        self.max_sp
    }

    fn stack_block(&self) -> Result<BlockId, SimError> {
        self.machine
            .program()
            .stack_block()
            .ok_or(SimError::NoStackBlock)
    }

    /// Calls into code block `block`: pushes a stack frame, spills the
    /// callee-saved registers to the stack block, and fetches the
    /// function prologue.
    ///
    /// # Errors
    ///
    /// [`SimError::WrongBlockKind`] if `block` is not code,
    /// [`SimError::StackOverflow`] if the frame does not fit the stack
    /// block, [`SimError::NoStackBlock`] if frames are non-empty but the
    /// program declared no stack.
    pub fn call(&mut self, block: BlockId) -> Result<(), SimError> {
        let cycle = self.machine.cycle();
        let spec = self.machine.program().block(block);
        if spec.kind() != BlockKind::Code {
            return Err(SimError::WrongBlockKind { block });
        }
        let frame_bytes = spec.frame_bytes();
        let spill_words = spec.spill_words;
        let frame_base = self.sp;
        if frame_bytes > 0 || spill_words > 0 {
            let stack = self.stack_block()?;
            let capacity = self.machine.program().block(stack).size_bytes();
            let required = self.sp + frame_bytes.max(spill_words * 4);
            if required > capacity {
                return Err(SimError::StackOverflow { required, capacity });
            }
            self.sp += frame_bytes.max(spill_words * 4);
            self.max_sp = self.max_sp.max(self.sp);
            // Spill registers into the new frame.
            for w in 0..spill_words {
                self.machine
                    .write_word(stack, frame_base + w * 4, 0, self.observer)?;
            }
        }
        self.call_stack.push(Frame {
            block,
            pc: 0,
            frame_base,
        });
        self.observer.on_block_enter(block, self.machine.cycle());
        self.observer.on_stack_depth(block, self.sp);
        self.tap(cycle, CpuOp::Call { block });
        Ok(())
    }

    /// Returns from the current code block: reloads spilled registers and
    /// pops the frame.
    ///
    /// # Errors
    ///
    /// [`SimError::CallStackUnderflow`] if no call is active.
    pub fn ret(&mut self) -> Result<(), SimError> {
        let cycle = self.machine.cycle();
        let frame = self.call_stack.pop().ok_or(SimError::CallStackUnderflow)?;
        let spec = self.machine.program().block(frame.block);
        let spill_words = spec.spill_words;
        let frame_bytes = spec.frame_bytes().max(spill_words * 4);
        if frame_bytes > 0 {
            let stack = self.stack_block()?;
            for w in 0..spill_words {
                self.machine
                    .read_word(stack, frame.frame_base + w * 4, self.observer)?;
            }
            self.sp = self.sp.saturating_sub(frame_bytes);
        }
        self.observer
            .on_block_exit(frame.block, self.machine.cycle());
        self.tap(cycle, CpuOp::Ret);
        Ok(())
    }

    /// Executes `count` straight-line instructions of the current block
    /// (fetches walk sequentially, wrapping at the block end).
    ///
    /// # Errors
    ///
    /// [`SimError::CallStackUnderflow`] if no code block is active.
    pub fn execute(&mut self, count: u32) -> Result<(), SimError> {
        if count == 0 {
            return Ok(());
        }
        let cycle = self.machine.cycle();
        self.fetch_ops(count)?;
        self.tap(cycle, CpuOp::Execute { count });
        Ok(())
    }

    /// The untapped fetch path: also used for the implicit fetch charged
    /// per data op, which a tap must NOT capture — replaying the data op
    /// regenerates it.
    fn fetch_ops(&mut self, count: u32) -> Result<(), SimError> {
        if count == 0 {
            return Ok(());
        }
        let frame = *self.call_stack.last().ok_or(SimError::CallStackUnderflow)?;
        let new_pc = self
            .machine
            .fetch(frame.block, frame.pc, count, self.observer)?;
        if let Some(f) = self.call_stack.last_mut() {
            f.pc = new_pc;
        }
        Ok(())
    }

    fn data_op_fetch(&mut self) -> Result<(), SimError> {
        if self.config.fetch_per_data_op && !self.call_stack.is_empty() {
            self.fetch_ops(1)?;
        }
        Ok(())
    }

    /// Loads an aligned 32-bit word from `block` at byte `offset`.
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn read_u32(&mut self, block: BlockId, offset: u32) -> Result<u32, SimError> {
        let cycle = self.machine.cycle();
        self.data_op_fetch()?;
        let value = self.machine.read_word(block, offset, self.observer)?;
        self.tap(
            cycle,
            CpuOp::Read {
                block,
                offset,
                value,
            },
        );
        Ok(value)
    }

    /// Stores an aligned 32-bit word.
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn write_u32(&mut self, block: BlockId, offset: u32, value: u32) -> Result<(), SimError> {
        let cycle = self.machine.cycle();
        self.data_op_fetch()?;
        self.machine
            .write_word(block, offset, value, self.observer)?;
        self.tap(
            cycle,
            CpuOp::Write {
                block,
                offset,
                value,
            },
        );
        Ok(())
    }

    /// Loads one byte (the hardware reads the containing word).
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn read_u8(&mut self, block: BlockId, offset: u32) -> Result<u8, SimError> {
        let word_off = offset & !3;
        let word = self.read_u32(block, word_off)?;
        Ok((word >> ((offset & 3) * 8)) as u8)
    }

    /// Stores one byte (byte-enable write: one word write is charged).
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn write_u8(&mut self, block: BlockId, offset: u32, value: u8) -> Result<(), SimError> {
        let word_off = offset & !3;
        // Peek the current word without charging a second access: hardware
        // merges the byte via byte enables.
        let current = self.machine.peek_block_word(block, word_off)?;
        let shift = (offset & 3) * 8;
        let merged = (current & !(0xFFu32 << shift)) | (u32::from(value) << shift);
        self.write_u32(block, word_off, merged)
    }

    /// Reads a 32-bit word of the current stack frame (`offset` is
    /// frame-relative).
    ///
    /// # Errors
    ///
    /// Propagates bounds/underflow errors.
    pub fn stack_read_u32(&mut self, offset: u32) -> Result<u32, SimError> {
        let cycle = self.machine.cycle();
        let frame = *self.call_stack.last().ok_or(SimError::CallStackUnderflow)?;
        let stack = self.stack_block()?;
        self.data_op_fetch()?;
        let value = self
            .machine
            .read_word(stack, frame.frame_base + offset, self.observer)?;
        self.tap(cycle, CpuOp::StackRead { offset, value });
        Ok(value)
    }

    /// Writes a 32-bit word of the current stack frame.
    ///
    /// # Errors
    ///
    /// Propagates bounds/underflow errors.
    pub fn stack_write_u32(&mut self, offset: u32, value: u32) -> Result<(), SimError> {
        let cycle = self.machine.cycle();
        let frame = *self.call_stack.last().ok_or(SimError::CallStackUnderflow)?;
        let stack = self.stack_block()?;
        self.data_op_fetch()?;
        self.machine
            .write_word(stack, frame.frame_base + offset, value, self.observer)?;
        self.tap(cycle, CpuOp::StackWrite { offset, value });
        Ok(())
    }
}

impl std::fmt::Debug for Cpu<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("cycle", &self.machine.cycle())
            .field("depth", &self.call_stack.len())
            .field("sp", &self.sp)
            .finish()
    }
}
