//! Scratchpad regions: specification and runtime state.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{EnergyAccount, RegionGeometry, TechParams, Technology, WORD_BYTES};

use crate::stats::DeviceStats;

/// Static description of one scratchpad region (a row of the paper's
/// Table IV): its technology, protection code, and capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmRegionSpec {
    name: String,
    technology: Technology,
    scheme: ProtectionScheme,
    geometry: RegionGeometry,
}

impl SpmRegionSpec {
    /// Creates a region spec.
    pub fn new(
        name: impl Into<String>,
        technology: Technology,
        scheme: ProtectionScheme,
        geometry: RegionGeometry,
    ) -> Self {
        Self {
            name: name.into(),
            technology,
            scheme,
            geometry,
        }
    }

    /// Region name (e.g. `"D-SPM STT-RAM"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Protection code applied to the region.
    pub fn scheme(&self) -> ProtectionScheme {
        self.scheme
    }

    /// Capacity.
    pub fn geometry(&self) -> RegionGeometry {
        self.geometry
    }

    /// The 40 nm electrical/timing parameters of the region's technology.
    pub fn params(&self) -> TechParams {
        self.technology.params_40nm()
    }
}

/// Runtime state of one scratchpad region: backing storage, per-line
/// write counters (endurance), access statistics and energy account.
#[derive(Debug, Clone)]
pub struct SpmRegion {
    spec: SpmRegionSpec,
    params: TechParams,
    storage: Vec<u8>,
    line_writes: Vec<u64>,
    stats: DeviceStats,
    energy: EnergyAccount,
}

impl SpmRegion {
    /// Instantiates the runtime state for a spec.
    pub fn new(spec: SpmRegionSpec) -> Self {
        let bytes = spec.geometry().bytes() as usize;
        let params = spec.params();
        Self {
            spec,
            params,
            storage: vec![0; bytes],
            line_writes: vec![0; bytes / WORD_BYTES as usize],
            stats: DeviceStats::default(),
            energy: EnergyAccount::new(),
        }
    }

    /// The region's static description.
    pub fn spec(&self) -> &SpmRegionSpec {
        &self.spec
    }

    /// Reads one word; returns the cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of range (the machine
    /// validates block bounds before calling).
    pub fn read_word(&mut self, offset: u32) -> (u32, u32) {
        let i = offset as usize;
        let value = u32::from_le_bytes(self.storage[i..i + 4].try_into().expect("aligned word"));
        self.stats.reads += 1;
        let cycles = self.params.read_latency;
        self.stats.read_cycles += u64::from(cycles);
        self.energy
            .add_read(self.params.read_energy_pj(self.spec.geometry()));
        (value, cycles)
    }

    /// Charges `count` reads at `offset` without returning values (used
    /// for instruction fetches, which only need timing/energy/stats);
    /// returns the cycle cost.
    pub fn read_batch(&mut self, offset: u32, count: u32) -> u32 {
        debug_assert!((offset as usize) < self.storage.len());
        self.stats.reads += u64::from(count);
        let cycles = self.params.read_latency * count;
        self.stats.read_cycles += u64::from(cycles);
        let pj = self.params.read_energy_pj(self.spec.geometry());
        self.energy.add_reads(u64::from(count), pj);
        cycles
    }

    /// Writes one word; returns the cycle cost and bumps the line's wear
    /// counter.
    pub fn write_word(&mut self, offset: u32, value: u32) -> u32 {
        let i = offset as usize;
        self.storage[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.line_writes[i / WORD_BYTES as usize] += 1;
        self.stats.writes += 1;
        let cycles = self.params.write_latency;
        self.stats.write_cycles += u64::from(cycles);
        self.energy
            .add_write(self.params.write_energy_pj(self.spec.geometry()));
        cycles
    }

    /// XORs `mask` into the stored word at `offset` without touching
    /// timing, energy, or wear counters — the physical effect of a
    /// silent-data-corruption strike.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of range.
    pub fn corrupt_word(&mut self, offset: u32, mask: u32) {
        assert_eq!(offset % 4, 0, "strikes hit word lines");
        let i = offset as usize;
        let v = u32::from_le_bytes(self.storage[i..i + 4].try_into().expect("word"));
        self.storage[i..i + 4].copy_from_slice(&(v ^ mask).to_le_bytes());
    }

    /// Access statistics so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Energy account (mutable access is reserved for the machine, which
    /// charges leakage at the end of a run).
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    pub(crate) fn energy_mut(&mut self) -> &mut EnergyAccount {
        &mut self.energy
    }

    /// Leakage power of this region in milliwatts.
    pub fn leakage_mw(&self) -> f64 {
        self.params.leakage_mw(self.spec.geometry())
    }

    /// The most writes any single word line has absorbed (the endurance-
    /// critical quantity: Table III / Fig. 8 derive lifetime from it).
    pub fn max_line_writes(&self) -> u64 {
        self.line_writes.iter().copied().max().unwrap_or(0)
    }

    /// Total writes across all lines.
    pub fn total_writes(&self) -> u64 {
        self.line_writes.iter().sum()
    }

    /// Per-line write counters (one per 32-bit word).
    pub fn line_writes(&self) -> &[u64] {
        &self.line_writes
    }

    /// Raw storage snapshot (used by fault injection to build memory
    /// images).
    pub fn storage(&self) -> &[u8] {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(kib: u64, tech: Technology, scheme: ProtectionScheme) -> SpmRegion {
        SpmRegion::new(SpmRegionSpec::new(
            "r",
            tech,
            scheme,
            RegionGeometry::from_kib(kib),
        ))
    }

    #[test]
    fn storage_roundtrip() {
        let mut r = region(2, Technology::SramParity, ProtectionScheme::Parity);
        assert_eq!(r.write_word(8, 0xDEAD_BEEF), 1);
        let (v, cycles) = r.read_word(8);
        assert_eq!(v, 0xDEAD_BEEF);
        assert_eq!(cycles, 1);
    }

    #[test]
    fn stt_write_latency_is_ten_cycles() {
        let mut r = region(2, Technology::SttRam, ProtectionScheme::Immune);
        assert_eq!(r.write_word(0, 1), 10);
        assert_eq!(r.read_word(0).1, 1);
    }

    #[test]
    fn secded_access_is_two_cycles() {
        let mut r = region(2, Technology::SramSecDed, ProtectionScheme::SecDed);
        assert_eq!(r.write_word(0, 1), 2);
        assert_eq!(r.read_word(0).1, 2);
    }

    #[test]
    fn line_wear_tracks_hot_words() {
        let mut r = region(2, Technology::SttRam, ProtectionScheme::Immune);
        for _ in 0..5 {
            r.write_word(4, 0);
        }
        r.write_word(8, 0);
        assert_eq!(r.max_line_writes(), 5);
        assert_eq!(r.total_writes(), 6);
        assert_eq!(r.line_writes()[1], 5);
    }

    #[test]
    fn stats_and_energy_accumulate() {
        let mut r = region(2, Technology::SramSecDed, ProtectionScheme::SecDed);
        r.write_word(0, 7);
        r.read_word(0);
        r.read_word(0);
        let s = r.stats();
        assert_eq!((s.reads, s.writes), (2, 1));
        assert_eq!(s.read_cycles, 4);
        let e = r.energy().breakdown();
        assert_eq!(e.reads, 2);
        assert!(e.dynamic_pj() > 0.0);
    }
}
