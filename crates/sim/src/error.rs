//! Simulator error type.

use crate::{BlockId, RegionId};
use std::fmt;

/// Errors raised when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A block was placed into a region without enough free space.
    RegionFull {
        /// The region that overflowed.
        region: RegionId,
        /// The block that did not fit.
        block: BlockId,
        /// Bytes requested.
        requested: u32,
        /// Bytes still free.
        available: u32,
    },
    /// An access used an offset at or beyond the end of its block.
    OffsetOutOfBounds {
        /// The accessed block.
        block: BlockId,
        /// The offending offset.
        offset: u32,
        /// The block's size in bytes.
        size: u32,
    },
    /// A code-block operation was applied to a data block or vice versa.
    WrongBlockKind {
        /// The offending block.
        block: BlockId,
    },
    /// `ret` was called with no active call frame.
    CallStackUnderflow,
    /// The simulated call stack outgrew the program's stack block.
    StackOverflow {
        /// Stack bytes required.
        required: u32,
        /// Stack block capacity.
        capacity: u32,
    },
    /// A placement referenced a region that the machine does not have.
    UnknownRegion(RegionId),
    /// The program declares no stack block but a stack operation ran.
    NoStackBlock,
    /// A strike targeted a word offset outside its region.
    StrikeOutOfRange {
        /// The struck region.
        region: RegionId,
        /// The offending byte offset.
        offset: u32,
        /// The region's capacity in bytes.
        bytes: u32,
    },
    /// A strike was malformed: unaligned word offset or zero flipped bits.
    BadStrike {
        /// The strike's byte offset.
        offset: u32,
        /// The strike's flipped-bit count.
        flipped_bits: u32,
    },
    /// The machine's cycle budget ([`crate::MachineConfig::deadline_cycles`])
    /// was exhausted: the access that would have run at or past the
    /// deadline is refused instead of executed, so a runaway workload is
    /// cancelled at a deterministic cycle.
    DeadlineExceeded {
        /// The machine cycle at which the access was refused.
        cycle: u64,
        /// The configured budget that was exceeded.
        deadline_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegionFull {
                region,
                block,
                requested,
                available,
            } => write!(
                f,
                "region {region:?} full: block {block:?} needs {requested} B, {available} B free"
            ),
            SimError::OffsetOutOfBounds {
                block,
                offset,
                size,
            } => write!(
                f,
                "offset {offset} out of bounds for block {block:?} of {size} B"
            ),
            SimError::WrongBlockKind { block } => {
                write!(f, "operation not valid for block {block:?} of this kind")
            }
            SimError::CallStackUnderflow => write!(f, "ret with empty call stack"),
            SimError::StackOverflow { required, capacity } => write!(
                f,
                "simulated stack overflow: need {required} B, stack block holds {capacity} B"
            ),
            SimError::UnknownRegion(r) => write!(f, "placement references unknown region {r:?}"),
            SimError::NoStackBlock => write!(f, "program has no stack block"),
            SimError::StrikeOutOfRange {
                region,
                offset,
                bytes,
            } => write!(
                f,
                "strike offset {offset} outside region {region:?} of {bytes} B"
            ),
            SimError::BadStrike {
                offset,
                flipped_bits,
            } => write!(
                f,
                "malformed strike: offset {offset}, {flipped_bits} flipped bits"
            ),
            SimError::DeadlineExceeded {
                cycle,
                deadline_cycles,
            } => write!(
                f,
                "cycle budget exhausted: cycle {cycle} reached deadline of {deadline_cycles} cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}
