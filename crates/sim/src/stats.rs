//! Statistics snapshots.

use ftspm_mem::EnergyBreakdown;

use crate::fault::FaultStats;

/// Raw access counters of one memory device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
    /// Cycles spent in reads.
    pub read_cycles: u64,
    /// Cycles spent in writes.
    pub write_cycles: u64,
    /// Cache hits (caches only).
    pub hits: u64,
    /// Cache misses (caches only).
    pub misses: u64,
    /// Dirty-line writebacks (caches only).
    pub writebacks: u64,
}

impl DeviceStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Hit rate (caches only); 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-SPM-region statistics as exposed in [`MachineStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Region name (from its spec).
    pub name: String,
    /// Access counters, including DMA traffic.
    pub device: DeviceStats,
    /// Program (non-DMA) reads.
    pub program_reads: u64,
    /// Program (non-DMA) writes.
    pub program_writes: u64,
    /// Peak per-line write count (endurance-critical).
    pub max_line_writes: u64,
    /// Dynamic-placement evictions served by this region.
    pub dyn_evictions: u64,
    /// Total writes across lines.
    pub total_writes: u64,
    /// Region energy.
    pub energy: EnergyBreakdown,
    /// Region leakage power, mW.
    pub leakage_mw: f64,
}

/// Full statistics snapshot of a finished (or running) machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineStats {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Instructions executed (fetches issued).
    pub instructions: u64,
    /// Per-region statistics, in region-id order.
    pub regions: Vec<RegionStats>,
    /// L1 instruction cache counters.
    pub icache: DeviceStats,
    /// L1 data cache counters.
    pub dcache: DeviceStats,
    /// Off-chip DRAM counters.
    pub dram: DeviceStats,
    /// Energy of the instruction cache.
    pub icache_energy: EnergyBreakdown,
    /// Energy of the data cache.
    pub dcache_energy: EnergyBreakdown,
    /// Energy of the DRAM (off-chip; excluded from SPM comparisons).
    pub dram_energy: EnergyBreakdown,
    /// Live fault-injection and recovery counters (`None` when the run
    /// had no fault configuration).
    pub faults: Option<FaultStats>,
}

impl MachineStats {
    /// Summed energy of all SPM regions (the quantity Figs. 6–7 compare).
    pub fn spm_energy(&self) -> EnergyBreakdown {
        self.regions
            .iter()
            .fold(EnergyBreakdown::default(), |acc, r| acc.merged(&r.energy))
    }

    /// Summed SPM leakage power, mW.
    pub fn spm_leakage_mw(&self) -> f64 {
        self.regions.iter().map(|r| r.leakage_mw).sum()
    }

    /// Program (non-DMA) reads+writes served by SPM regions.
    pub fn spm_program_accesses(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.program_reads + r.program_writes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(DeviceStats::default().hit_rate(), 0.0);
        let s = DeviceStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.accesses(), 0);
    }
}
