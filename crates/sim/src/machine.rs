//! The machine: devices, routing, cycle and energy accounting.

use ftspm_mem::Clock;

use crate::cache::Cache;
use crate::observer::{AccessEvent, AccessKind, Observer, Target};
use crate::stats::{MachineStats, RegionStats};
use crate::{
    BlockId, BlockKind, CacheConfig, Dram, DramConfig, Placement, PlacementMap, Program, SimError,
    SpmRegion, SpmRegionSpec,
};

/// Static configuration of a simulated machine (the paper's Table IV).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// CPU clock (default 400 MHz).
    pub clock: Clock,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Off-chip memory parameters.
    pub dram: DramConfig,
    /// The scratchpad regions, in [`crate::RegionId`] order.
    pub regions: Vec<SpmRegionSpec>,
}

impl MachineConfig {
    /// A machine with the given SPM regions and default caches/DRAM/clock.
    pub fn with_regions(regions: Vec<SpmRegionSpec>) -> Self {
        Self {
            clock: Clock::default(),
            icache: CacheConfig::default(),
            dcache: CacheConfig::default(),
            dram: DramConfig::default(),
            regions,
        }
    }
}

/// A running simulation: one program, one placement, one set of devices.
///
/// Construct with [`Machine::new`], drive through [`crate::Cpu`], then call
/// [`Machine::finish`] to write back dirty blocks, charge leakage, and
/// freeze the statistics.
#[derive(Debug)]
pub struct Machine {
    clock: Clock,
    program: Program,
    placement: PlacementMap,
    regions: Vec<SpmRegion>,
    icache: Cache,
    dcache: Cache,
    dram: Dram,
    cycle: u64,
    instructions: u64,
    resident: Vec<bool>,
    dirty: Vec<bool>,
    /// Non-DMA (program) reads/writes per region.
    program_rw: Vec<(u64, u64)>,
    /// Run-time offset of each dynamically-placed resident block.
    dyn_offset: Vec<Option<u32>>,
    /// Cycle of the last access per block (dynamic-eviction LRU).
    last_access: Vec<u64>,
    /// Per-region free lists for the dynamic pools.
    dyn_free: Vec<FreeList>,
    /// Dynamic evictions performed per region.
    dyn_evictions: Vec<u64>,
    finished: bool,
}

/// A sorted, coalescing free-interval list for one region's dynamic pool.
#[derive(Debug, Clone, Default)]
struct FreeList {
    /// `(offset, len)` runs, sorted by offset, never adjacent.
    runs: Vec<(u32, u32)>,
}

impl FreeList {
    fn new(base: u32, capacity: u32) -> Self {
        let len = capacity - base;
        Self {
            runs: if len > 0 {
                vec![(base, len)]
            } else {
                Vec::new()
            },
        }
    }

    /// First-fit allocation.
    fn alloc(&mut self, size: u32) -> Option<u32> {
        let i = self.runs.iter().position(|&(_, len)| len >= size)?;
        let (off, len) = self.runs[i];
        if len == size {
            self.runs.remove(i);
        } else {
            self.runs[i] = (off + size, len - size);
        }
        Some(off)
    }

    /// Returns an interval, coalescing with neighbours.
    fn free(&mut self, offset: u32, size: u32) {
        let i = self.runs.partition_point(|&(o, _)| o < offset);
        debug_assert!(
            i == 0 || self.runs[i - 1].0 + self.runs[i - 1].1 <= offset,
            "double free below"
        );
        debug_assert!(
            i == self.runs.len() || offset + size <= self.runs[i].0,
            "double free above"
        );
        self.runs.insert(i, (offset, size));
        // Coalesce with the next run.
        if i + 1 < self.runs.len() && self.runs[i].0 + self.runs[i].1 == self.runs[i + 1].0 {
            self.runs[i].1 += self.runs[i + 1].1;
            self.runs.remove(i + 1);
        }
        // Coalesce with the previous run.
        if i > 0 && self.runs[i - 1].0 + self.runs[i - 1].1 == self.runs[i].0 {
            self.runs[i - 1].1 += self.runs[i].1;
            self.runs.remove(i);
        }
    }
}

impl Machine {
    /// Builds a machine for `program` under `placement`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegion`] if the placement references a region the
    /// config does not define.
    pub fn new(
        config: MachineConfig,
        program: Program,
        placement: PlacementMap,
    ) -> Result<Self, SimError> {
        for (b, p) in placement.iter() {
            if let Some(r) = p.region() {
                if r.index() >= config.regions.len() {
                    return Err(SimError::UnknownRegion(r));
                }
                // A static `place` issued *after* a `place_dynamic` can
                // shrink the pool below a block admitted earlier; catch
                // that here so it cannot panic mid-run.
                if p.is_dynamic() {
                    let pool = placement.capacity(r) - placement.dynamic_pool_base(r);
                    let size = program.block(b).size_bytes();
                    if size > pool {
                        return Err(SimError::RegionFull {
                            region: r,
                            block: b,
                            requested: size,
                            available: pool,
                        });
                    }
                }
            }
        }
        let regions: Vec<SpmRegion> = config.regions.into_iter().map(SpmRegion::new).collect();
        let n_regions = regions.len();
        let dram = Dram::new(config.dram, &program);
        let n = program.len();
        let dyn_free = (0..n_regions)
            .map(|i| {
                if i < placement.region_count() {
                    let r = crate::RegionId::new(i);
                    FreeList::new(placement.dynamic_pool_base(r), placement.capacity(r))
                } else {
                    FreeList::default()
                }
            })
            .collect();
        Ok(Self {
            clock: config.clock,
            program,
            placement,
            regions,
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            dram,
            cycle: 0,
            instructions: 0,
            resident: vec![false; n],
            dirty: vec![false; n],
            program_rw: vec![(0, 0); n_regions],
            dyn_offset: vec![None; n],
            last_access: vec![0; n],
            dyn_free,
            dyn_evictions: vec![0; n_regions],
            finished: false,
        })
    }

    /// The program under simulation.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The active placement.
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The machine clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Off-chip memory (e.g. to initialise workload inputs with
    /// [`Dram::poke_word`] before running).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable off-chip memory.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// The SPM regions in id order.
    pub fn regions(&self) -> &[SpmRegion] {
        &self.regions
    }

    fn check_bounds(&self, block: BlockId, offset: u32, width: u32) -> Result<(), SimError> {
        let size = self.program.block(block).size_bytes();
        if offset.checked_add(width).is_none_or(|end| end > size) {
            return Err(SimError::OffsetOutOfBounds {
                block,
                offset,
                size,
            });
        }
        Ok(())
    }

    /// Resolves `block` to its current SPM slot, performing the lazy
    /// map-in DMA (and, for dynamic blocks, allocation plus any LRU
    /// evictions) if needed. Returns `None` for off-chip blocks.
    fn ensure_resident(
        &mut self,
        block: BlockId,
        observer: &mut dyn Observer,
    ) -> Option<(crate::RegionId, u32)> {
        self.last_access[block.index()] = self.cycle;
        match self.placement.placement(block) {
            Placement::OffChip => None,
            Placement::Spm { region, offset } => {
                if !self.resident[block.index()] {
                    self.dma_fill(block, region, offset, observer);
                }
                Some((region, offset))
            }
            Placement::Dynamic { region } => {
                if self.resident[block.index()] {
                    return Some((region, self.dyn_offset[block.index()].expect("resident")));
                }
                let size = self.program.block(block).size_bytes();
                let offset = self.dyn_allocate(block, region, size, observer);
                self.dma_fill(block, region, offset, observer);
                self.dyn_offset[block.index()] = Some(offset);
                Some((region, offset))
            }
        }
    }

    /// DMA copy of a block's home copy into its SPM slot.
    fn dma_fill(
        &mut self,
        block: BlockId,
        region: crate::RegionId,
        offset: u32,
        observer: &mut dyn Observer,
    ) {
        let words = self.program.block(block).size_bytes() / 4;
        let mut buf = Vec::with_capacity(words as usize);
        let mut cycles = self.dram.read_burst(block, 0, words, &mut buf);
        let r = &mut self.regions[region.index()];
        for (i, v) in buf.iter().enumerate() {
            cycles += r.write_word(offset + (i as u32) * 4, *v);
        }
        self.cycle += u64::from(cycles);
        self.resident[block.index()] = true;
        self.dirty[block.index()] = false;
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Write,
            target: Target::Region(region),
            offset: 0,
            dma: true,
            count: words,
        });
    }

    /// Carves `size` bytes out of `region`'s dynamic pool, evicting
    /// least-recently-used dynamic residents until the allocation fits.
    ///
    /// # Panics
    ///
    /// Panics if the block can never fit (prevented by
    /// [`PlacementMap::place_dynamic`]'s capacity check).
    fn dyn_allocate(
        &mut self,
        for_block: BlockId,
        region: crate::RegionId,
        size: u32,
        observer: &mut dyn Observer,
    ) -> u32 {
        loop {
            if let Some(off) = self.dyn_free[region.index()].alloc(size) {
                return off;
            }
            let victim = self
                .program
                .iter()
                .map(|(id, _)| id)
                .filter(|&id| {
                    id != for_block
                        && self.resident[id.index()]
                        && self.placement.placement(id) == (Placement::Dynamic { region })
                })
                .min_by_key(|id| self.last_access[id.index()])
                .unwrap_or_else(|| {
                    panic!("dynamic pool of {region:?} cannot fit {size} B even after evictions")
                });
            self.evict(victim, observer);
            self.dyn_evictions[region.index()] += 1;
        }
    }

    /// Evicts a resident dynamic block: writes it back if dirty, frees its
    /// slot, and marks it non-resident.
    fn evict(&mut self, block: BlockId, observer: &mut dyn Observer) {
        let Placement::Dynamic { region } = self.placement.placement(block) else {
            unreachable!("only dynamic blocks are evicted");
        };
        let offset = self.dyn_offset[block.index()].expect("victim is resident");
        let size = self.program.block(block).size_bytes();
        if self.dirty[block.index()] {
            self.writeback(block, region, offset, observer);
        }
        self.resident[block.index()] = false;
        self.dyn_offset[block.index()] = None;
        self.dyn_free[region.index()].free(offset, size);
    }

    /// DMA copy of a (dirty) block from its SPM slot back to its home.
    fn writeback(
        &mut self,
        block: BlockId,
        region: crate::RegionId,
        offset: u32,
        observer: &mut dyn Observer,
    ) {
        let words = self.program.block(block).size_bytes() / 4;
        let mut buf = Vec::with_capacity(words as usize);
        let mut cycles = 0u32;
        for i in 0..words {
            let (v, c) = self.regions[region.index()].read_word(offset + i * 4);
            buf.push(v);
            cycles += c;
        }
        cycles += self.dram.write_burst(block, 0, &buf);
        self.cycle += u64::from(cycles);
        self.dirty[block.index()] = false;
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Read,
            target: Target::Region(region),
            offset: 0,
            dma: true,
            count: words,
        });
    }

    /// Executes `count` sequential instruction fetches of `block` starting
    /// at byte `pc_offset` (wrapping within the block), returning the new
    /// PC cursor.
    ///
    /// # Errors
    ///
    /// [`SimError::WrongBlockKind`] if `block` is not code.
    pub(crate) fn fetch(
        &mut self,
        block: BlockId,
        pc_offset: u32,
        count: u32,
        observer: &mut dyn Observer,
    ) -> Result<u32, SimError> {
        let spec = self.program.block(block);
        if spec.kind() != BlockKind::Code {
            return Err(SimError::WrongBlockKind { block });
        }
        let size = spec.size_bytes();
        let base = spec.dram_base();
        let slot = self.ensure_resident(block, observer);
        self.instructions += u64::from(count);
        let mut pc = pc_offset % size;
        match slot {
            Some((region, offset)) => {
                // Fetches need no values, so they are charged as a batch of
                // `count` reads at the region's read latency.
                let cycles = self.regions[region.index()].read_batch(offset + pc, count);
                self.program_rw[region.index()].0 += u64::from(count);
                self.cycle += u64::from(cycles);
                pc = (pc + 4 * count) % size;
                observer.on_access(&AccessEvent {
                    cycle: self.cycle,
                    block,
                    kind: AccessKind::Fetch,
                    target: Target::Region(region),
                    offset: pc,
                    dma: false,
                    count,
                });
            }
            None => {
                for _ in 0..count {
                    let acc = self.icache.access(base + pc, false);
                    let mut cycles = self.icache.hit_cycles();
                    if !acc.hit {
                        cycles += self.dram_charge_read(acc.fill_words);
                    }
                    if acc.writeback_words > 0 {
                        cycles += self.dram_charge_write(acc.writeback_words);
                    }
                    self.cycle += u64::from(cycles);
                    observer.on_access(&AccessEvent {
                        cycle: self.cycle,
                        block,
                        kind: AccessKind::Fetch,
                        target: Target::ICache { hit: acc.hit },
                        offset: pc,
                        dma: false,
                        count: 1,
                    });
                    pc = (pc + 4) % size;
                }
            }
        }
        Ok(pc)
    }

    fn dram_charge_read(&mut self, words: u32) -> u32 {
        self.dram.charge_burst_read(words)
    }

    fn dram_charge_write(&mut self, words: u32) -> u32 {
        self.dram.charge_burst_write(words)
    }

    /// Reads one aligned word of a data block.
    pub(crate) fn read_word(
        &mut self,
        block: BlockId,
        offset: u32,
        observer: &mut dyn Observer,
    ) -> Result<u32, SimError> {
        self.check_bounds(block, offset, 4)?;
        let slot = self.ensure_resident(block, observer);
        let (value, target, cycles) = match slot {
            Some((region, base)) => {
                let (v, c) = self.regions[region.index()].read_word(base + offset);
                self.program_rw[region.index()].0 += 1;
                (v, Target::Region(region), c)
            }
            None => {
                let addr = self.program.block(block).dram_base() + offset;
                let acc = self.dcache.access(addr, false);
                let mut cycles = self.dcache.hit_cycles();
                if !acc.hit {
                    cycles += self.dram_charge_read(acc.fill_words);
                }
                if acc.writeback_words > 0 {
                    cycles += self.dram_charge_write(acc.writeback_words);
                }
                (
                    self.dram.peek_word(block, offset & !3),
                    Target::DCache { hit: acc.hit },
                    cycles,
                )
            }
        };
        self.cycle += u64::from(cycles);
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Read,
            target,
            offset,
            dma: false,
            count: 1,
        });
        Ok(value)
    }

    /// Writes one aligned word of a data block.
    pub(crate) fn write_word(
        &mut self,
        block: BlockId,
        offset: u32,
        value: u32,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        self.check_bounds(block, offset, 4)?;
        let slot = self.ensure_resident(block, observer);
        let (target, cycles) = match slot {
            Some((region, base)) => {
                let c = self.regions[region.index()].write_word(base + offset, value);
                self.program_rw[region.index()].1 += 1;
                self.dirty[block.index()] = true;
                (Target::Region(region), c)
            }
            None => {
                let addr = self.program.block(block).dram_base() + offset;
                let acc = self.dcache.access(addr, true);
                let mut cycles = self.dcache.hit_cycles();
                if !acc.hit {
                    cycles += self.dram_charge_read(acc.fill_words);
                }
                if acc.writeback_words > 0 {
                    cycles += self.dram_charge_write(acc.writeback_words);
                }
                self.dram.poke_word(block, offset, value);
                (Target::DCache { hit: acc.hit }, cycles)
            }
        };
        self.cycle += u64::from(cycles);
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Write,
            target,
            offset,
            dma: false,
            count: 1,
        });
        Ok(())
    }

    /// Injects a particle strike of `flipped_bits` adjacent bit flips
    /// into `region` at word `offset`, mid-run.
    ///
    /// The region's protection scheme decides the outcome, mirroring the
    /// decode path a real controller would take on the next access:
    ///
    /// * immune cells ([`ftspm_ecc::ErrorClass::Masked`]) and corrected
    ///   errors ([`ftspm_ecc::ErrorClass::Dre`]) leave the data intact;
    /// * detected-unrecoverable errors ([`ftspm_ecc::ErrorClass::Due`])
    ///   leave the data intact but report the trap;
    /// * silent corruptions ([`ftspm_ecc::ErrorClass::Sdc`]) **really
    ///   flip the stored data bits**, so the corruption propagates into
    ///   subsequent program reads and, ultimately, its outputs.
    ///
    /// Returns the outcome so campaigns can count SDC/DUE/DRE.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range, `offset` is unaligned or out
    /// of the region, or `flipped_bits` is 0.
    pub fn inject_strike(
        &mut self,
        region: crate::RegionId,
        offset: u32,
        first_bit: u32,
        flipped_bits: u32,
    ) -> ftspm_ecc::ErrorClass {
        assert!(flipped_bits > 0, "a strike flips at least one bit");
        assert_eq!(offset % 4, 0, "strikes target word lines");
        let r = &mut self.regions[region.index()];
        let scheme = r.spec().scheme();
        let outcome = scheme.classify(flipped_bits);
        if outcome == ftspm_ecc::ErrorClass::Sdc {
            // Corrupt the data bits for real (clamped into the word).
            let mut mask: u32 = 0;
            for k in 0..flipped_bits.min(32) {
                mask |= 1 << ((first_bit + k) % 32);
            }
            r.corrupt_word(offset, mask);
        }
        outcome
    }

    /// Reads a word's current value without charging timing or energy
    /// (byte-merge support and test inspection). Reads the SPM copy when
    /// the block is resident, the DRAM home copy otherwise.
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn peek_block_word(&self, block: BlockId, offset: u32) -> Result<u32, SimError> {
        self.check_bounds(block, offset, 4)?;
        if self.resident[block.index()] {
            let slot = match self.placement.placement(block) {
                Placement::Spm {
                    region,
                    offset: base,
                } => Some((region, base)),
                Placement::Dynamic { region } => {
                    Some((region, self.dyn_offset[block.index()].expect("resident")))
                }
                Placement::OffChip => None,
            };
            if let Some((region, base)) = slot {
                let s = self.regions[region.index()].storage();
                let i = (base + offset) as usize;
                return Ok(u32::from_le_bytes(s[i..i + 4].try_into().expect("word")));
            }
        }
        Ok(self.dram.peek_word(block, offset))
    }

    /// Writes back dirty SPM-resident data blocks, charges leakage to every
    /// on-chip device for the elapsed cycles, and returns the final
    /// statistics. Idempotent after the first call.
    pub fn finish(&mut self, observer: &mut dyn Observer) -> MachineStats {
        if !self.finished {
            // Write back dirty data blocks (the unmapping commands).
            let ids: Vec<BlockId> = self.program.iter().map(|(id, _)| id).collect();
            for block in ids {
                if !self.resident[block.index()] || !self.dirty[block.index()] {
                    continue;
                }
                if self.program.block(block).kind() != BlockKind::Data {
                    continue;
                }
                let slot = match self.placement.placement(block) {
                    Placement::Spm { region, offset } => Some((region, offset)),
                    Placement::Dynamic { region } => {
                        Some((region, self.dyn_offset[block.index()].expect("resident")))
                    }
                    Placement::OffChip => None,
                };
                if let Some((region, offset)) = slot {
                    self.writeback(block, region, offset, observer);
                }
            }
            // Leakage over the whole run.
            let cycles = self.cycle;
            for r in &mut self.regions {
                let leak = r.leakage_mw();
                r.energy_mut().charge_static(self.clock, leak, cycles);
            }
            let il = self.icache.leakage_mw();
            self.icache
                .energy_mut()
                .charge_static(self.clock, il, cycles);
            let dl = self.dcache.leakage_mw();
            self.dcache
                .energy_mut()
                .charge_static(self.clock, dl, cycles);
            self.finished = true;
        }
        self.stats()
    }

    /// A statistics snapshot (leakage is only included after
    /// [`Machine::finish`]).
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.cycle,
            instructions: self.instructions,
            regions: self
                .regions
                .iter()
                .enumerate()
                .map(|(i, r)| RegionStats {
                    name: r.spec().name().to_string(),
                    device: r.stats(),
                    program_reads: self.program_rw[i].0,
                    program_writes: self.program_rw[i].1,
                    max_line_writes: r.max_line_writes(),
                    dyn_evictions: self.dyn_evictions[i],
                    total_writes: r.total_writes(),
                    energy: r.energy().breakdown(),
                    leakage_mw: r.leakage_mw(),
                })
                .collect(),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            dram: self.dram.stats(),
            icache_energy: self.icache.energy().breakdown(),
            dcache_energy: self.dcache.energy().breakdown(),
            dram_energy: self.dram.energy().breakdown(),
        }
    }
}
