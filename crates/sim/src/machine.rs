//! The machine: devices, routing, cycle and energy accounting.

use ftspm_ecc::{ErrorClass, ProtectionScheme};
use ftspm_mem::{Clock, Technology};

use crate::cache::{Cache, CoherenceState};
use crate::fault::{fold_data_mask, stored_bits, FaultConfig, FaultState, FaultStats};
use crate::observer::{
    AccessEvent, AccessKind, Observer, QuarantineCause, QuarantineEvent, RemapEvent, Target,
};
use crate::stats::{MachineStats, RegionStats};
use crate::{
    BlockId, BlockKind, CacheConfig, Dram, DramConfig, Placement, PlacementMap, Program, SimError,
    SpmRegion, SpmRegionSpec,
};

/// Static configuration of a simulated machine (the paper's Table IV).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// CPU clock (default 400 MHz).
    pub clock: Clock,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Off-chip memory parameters.
    pub dram: DramConfig,
    /// The scratchpad regions, in [`crate::RegionId`] order.
    pub regions: Vec<SpmRegionSpec>,
    /// Live fault injection and recovery (`None` = clean run).
    pub faults: Option<FaultConfig>,
    /// Cycle budget: the first access at or past this cycle count is
    /// refused with [`SimError::DeadlineExceeded`] instead of executed
    /// (`None` = unbounded). The cut is a pure function of the cycle
    /// counter, so a deadline kill happens at the same access on every
    /// replay.
    pub deadline_cycles: Option<u64>,
}

impl MachineConfig {
    /// A machine with the given SPM regions and default caches/DRAM/clock.
    pub fn with_regions(regions: Vec<SpmRegionSpec>) -> Self {
        Self {
            clock: Clock::default(),
            icache: CacheConfig::default(),
            dcache: CacheConfig::default(),
            dram: DramConfig::default(),
            regions,
            faults: None,
            deadline_cycles: None,
        }
    }

    /// Enables live fault injection under `faults`.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Bounds the run to `deadline` cycles (see
    /// [`MachineConfig::deadline_cycles`]).
    pub fn with_deadline_cycles(mut self, deadline: u64) -> Self {
        self.deadline_cycles = Some(deadline);
        self
    }
}

/// Bus-level coherence counters of a multi-core machine.
///
/// All zeros on a single-core machine (no snoops ever run). The fault
/// propagation fields mirror the narrative of *Transient Faults
/// Propagation in Multithread Applications*: a strike in a block several
/// cores touch is *counted once* in [`FaultStats`] but *observed* by
/// every sharer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Remote copies invalidated by a local write (MESI BusRdX/upgrade).
    pub invalidations: u64,
    /// Remote Modified copies flushed to DRAM by a snoop.
    pub dirty_flushes: u64,
    /// Remote Modified/Exclusive copies downgraded to Shared by a read.
    pub downgrades: u64,
    /// Read misses filled Shared because a remote copy existed.
    pub shared_fills: u64,
    /// Local Shared→Modified upgrades (write hit on a shared line).
    pub upgrades: u64,
    /// Cache lines invalidated because their block was quarantine-remapped
    /// (the remap updates every core's mapping atomically; this clears any
    /// cached shadow of the old home range).
    pub remap_invalidations: u64,
    /// Fault events (correction/DUE/SDC) landing in a block more than one
    /// core had touched.
    pub shared_block_faults: u64,
    /// Sum over shared-block faults of (sharers − 1): how many *other*
    /// cores each fault was visible to.
    pub cross_core_observations: u64,
}

/// Per-core view of the fault subsystem: what each core observed at its
/// own accesses, plus how many shared-block faults it was exposed to.
/// The shared registry ([`FaultStats`]) counts every event exactly once;
/// these views distribute the same events across their observers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreFaultView {
    /// Corrections (DRE + scrub) decoded while this core was active.
    pub corrections: u64,
    /// DUE traps taken while this core was active.
    pub due_traps: u64,
    /// SDC escapes decoded while this core was active.
    pub sdc_escapes: u64,
    /// Fault events in blocks this core shares with at least one other
    /// core (whether or not this core was the active observer).
    pub shared_exposures: u64,
}

/// The coherence hub of a multi-core machine: the parked cache pairs of
/// every non-active core (the active core's caches live in the machine's
/// own `icache`/`dcache` slots), plus sharer tracking and counters.
#[derive(Debug)]
struct CoherenceHub {
    cores: usize,
    active: usize,
    /// Parked `(icache, dcache)` pairs, indexed by core; the active
    /// core's slot is `None`.
    parked: Vec<Option<(Cache, Cache)>>,
    /// Per-block bitmask of cores that issued program accesses to it.
    touched: Vec<u64>,
    stats: CoherenceStats,
    per_core: Vec<CoreFaultView>,
}

/// A running simulation: one program, one placement, one set of devices.
///
/// Construct with [`Machine::new`], drive through [`crate::Cpu`], then call
/// [`Machine::finish`] to write back dirty blocks, charge leakage, and
/// freeze the statistics.
#[derive(Debug)]
pub struct Machine {
    clock: Clock,
    program: Program,
    placement: PlacementMap,
    regions: Vec<SpmRegion>,
    icache: Cache,
    dcache: Cache,
    dram: Dram,
    cycle: u64,
    instructions: u64,
    resident: Vec<bool>,
    dirty: Vec<bool>,
    /// Non-DMA (program) reads/writes per region.
    program_rw: Vec<(u64, u64)>,
    /// Run-time offset of each dynamically-placed resident block.
    dyn_offset: Vec<Option<u32>>,
    /// Cycle of the last access per block (dynamic-eviction LRU).
    last_access: Vec<u64>,
    /// Per-region free lists for the dynamic pools.
    dyn_free: Vec<FreeList>,
    /// Dynamic evictions performed per region.
    dyn_evictions: Vec<u64>,
    /// Live fault-injection state (`None` = clean run).
    faults: Option<FaultState>,
    /// Cycle of the next fault event, cached flat on the machine so a hot
    /// access pays one compare: `u64::MAX` with no (or eventless) fault
    /// state, `0` on the reference path (which polls every access).
    fault_gate: u64,
    /// Whether wear tracking is configured (cached off the fault config).
    fault_wear: bool,
    /// Bit `i` set ⇔ region `i` carries at least one pending mark (bit 63
    /// stands in for every region from 63 up). All-ones on the reference
    /// path (which probes every access), zero with no fault state. Lets a
    /// clean access decide "no decode needed" from one hot field.
    fault_marked: u64,
    /// Cycle budget cached flat for the hot path (`u64::MAX` when
    /// unbounded); a clean access pays one always-false compare.
    deadline: u64,
    /// Multi-core coherence hub (`None` on a plain single-core machine;
    /// every snoop/sharer hook is then skipped entirely).
    coh: Option<Box<CoherenceHub>>,
    finished: bool,
}

/// A sorted, coalescing free-interval list for one region's dynamic pool.
#[derive(Debug, Clone, Default)]
struct FreeList {
    /// `(offset, len)` runs, sorted by offset, never adjacent.
    runs: Vec<(u32, u32)>,
}

impl FreeList {
    fn new(base: u32, capacity: u32) -> Self {
        let len = capacity - base;
        Self {
            runs: if len > 0 {
                vec![(base, len)]
            } else {
                Vec::new()
            },
        }
    }

    /// First-fit allocation.
    fn alloc(&mut self, size: u32) -> Option<u32> {
        let i = self.runs.iter().position(|&(_, len)| len >= size)?;
        let (off, len) = self.runs[i];
        if len == size {
            self.runs.remove(i);
        } else {
            self.runs[i] = (off + size, len - size);
        }
        Some(off)
    }

    /// Returns an interval, coalescing with neighbours.
    fn free(&mut self, offset: u32, size: u32) {
        let i = self.runs.partition_point(|&(o, _)| o < offset);
        debug_assert!(
            i == 0 || self.runs[i - 1].0 + self.runs[i - 1].1 <= offset,
            "double free below"
        );
        debug_assert!(
            i == self.runs.len() || offset + size <= self.runs[i].0,
            "double free above"
        );
        self.runs.insert(i, (offset, size));
        // Coalesce with the next run.
        if i + 1 < self.runs.len() && self.runs[i].0 + self.runs[i].1 == self.runs[i + 1].0 {
            self.runs[i].1 += self.runs[i + 1].1;
            self.runs.remove(i + 1);
        }
        // Coalesce with the previous run.
        if i > 0 && self.runs[i - 1].0 + self.runs[i - 1].1 == self.runs[i].0 {
            self.runs[i - 1].1 += self.runs[i].1;
            self.runs.remove(i);
        }
    }
}

impl Machine {
    /// Builds a machine for `program` under `placement`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegion`] if the placement or the fault
    /// configuration references a region the config does not define.
    pub fn new(
        config: MachineConfig,
        program: Program,
        placement: PlacementMap,
    ) -> Result<Self, SimError> {
        if let Some(fc) = &config.faults {
            for r in fc
                .targets
                .iter()
                .flatten()
                .chain(fc.demotion.iter().flatten())
            {
                if r.index() >= config.regions.len() {
                    return Err(SimError::UnknownRegion(*r));
                }
            }
        }
        for (b, p) in placement.iter() {
            if let Some(r) = p.region() {
                if r.index() >= config.regions.len() {
                    return Err(SimError::UnknownRegion(r));
                }
                // A static `place` issued *after* a `place_dynamic` can
                // shrink the pool below a block admitted earlier; catch
                // that here so it cannot panic mid-run.
                if p.is_dynamic() {
                    let pool = placement.capacity(r) - placement.dynamic_pool_base(r);
                    let size = program.block(b).size_bytes();
                    if size > pool {
                        return Err(SimError::RegionFull {
                            region: r,
                            block: b,
                            requested: size,
                            available: pool,
                        });
                    }
                }
            }
        }
        let regions: Vec<SpmRegion> = config.regions.into_iter().map(SpmRegion::new).collect();
        let n_regions = regions.len();
        let dram = Dram::new(config.dram, &program);
        let n = program.len();
        let dyn_free = (0..n_regions)
            .map(|i| {
                if i < placement.region_count() {
                    let r = crate::RegionId::new(i);
                    FreeList::new(placement.dynamic_pool_base(r), placement.capacity(r))
                } else {
                    FreeList::default()
                }
            })
            .collect();
        let faults = config.faults.map(|fc| {
            let words: Vec<u32> = regions
                .iter()
                .map(|r| r.spec().geometry().words())
                .collect();
            FaultState::new(fc, &words)
        });
        let mut m = Self {
            clock: config.clock,
            program,
            placement,
            regions,
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            dram,
            cycle: 0,
            instructions: 0,
            resident: vec![false; n],
            dirty: vec![false; n],
            program_rw: vec![(0, 0); n_regions],
            dyn_offset: vec![None; n],
            last_access: vec![0; n],
            dyn_free,
            dyn_evictions: vec![0; n_regions],
            faults,
            fault_gate: 0,
            fault_wear: false,
            fault_marked: 0,
            deadline: config.deadline_cycles.unwrap_or(u64::MAX),
            coh: None,
            finished: false,
        };
        m.fault_wear = m
            .faults
            .as_ref()
            .is_some_and(|f| f.config.line_write_budget.is_some());
        m.fault_refresh_gate();
        m.fault_refresh_marked(0);
        Ok(m)
    }

    /// The program under simulation.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The active placement.
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The machine clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Off-chip memory (e.g. to initialise workload inputs with
    /// [`Dram::poke_word`] before running).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable off-chip memory.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// The SPM regions in id order.
    pub fn regions(&self) -> &[SpmRegion] {
        &self.regions
    }

    /// The cycle-budget gate on every CPU-visible access: one compare
    /// against a cached `u64::MAX` when no deadline is set.
    #[inline]
    fn check_deadline(&self) -> Result<(), SimError> {
        if self.cycle >= self.deadline {
            return Err(SimError::DeadlineExceeded {
                cycle: self.cycle,
                deadline_cycles: self.deadline,
            });
        }
        Ok(())
    }

    fn check_bounds(&self, block: BlockId, offset: u32, width: u32) -> Result<(), SimError> {
        let size = self.program.block(block).size_bytes();
        if offset.checked_add(width).is_none_or(|end| end > size) {
            return Err(SimError::OffsetOutOfBounds {
                block,
                offset,
                size,
            });
        }
        Ok(())
    }

    /// Installs a coherence hub for `cores` hardware threads. Core 0's
    /// caches are the machine's own `icache`/`dcache`; cores 1.. get
    /// fresh parked pairs of the same geometry. Called once by
    /// [`crate::MultiMachine::new`].
    ///
    /// # Panics
    ///
    /// Panics on 0 cores, more than 64 cores (the sharer mask is a
    /// `u64`), or a second attach.
    pub(crate) fn attach_coherence(&mut self, cores: usize) {
        assert!((1..=64).contains(&cores), "1..=64 cores");
        assert!(self.coh.is_none(), "coherence hub already attached");
        let (icfg, dcfg) = (self.icache.config(), self.dcache.config());
        let parked = (0..cores)
            .map(|c| (c != 0).then(|| (Cache::new(icfg), Cache::new(dcfg))))
            .collect();
        self.coh = Some(Box::new(CoherenceHub {
            cores,
            active: 0,
            parked,
            touched: vec![0; self.program.len()],
            stats: CoherenceStats::default(),
            per_core: vec![CoreFaultView::default(); cores],
        }));
    }

    /// Swaps `core`'s cache pair into the machine's active slots.
    ///
    /// # Panics
    ///
    /// Panics without a hub or with `core` out of range.
    pub(crate) fn set_active_core(&mut self, core: usize) {
        let hub = self.coh.as_deref_mut().expect("coherence hub attached");
        assert!(core < hub.cores, "core {core} out of range");
        if core == hub.active {
            return;
        }
        let (pi, pd) = hub.parked[core].take().expect("inactive core is parked");
        let old_i = std::mem::replace(&mut self.icache, pi);
        let old_d = std::mem::replace(&mut self.dcache, pd);
        hub.parked[hub.active] = Some((old_i, old_d));
        hub.active = core;
    }

    /// `core`'s `(icache, dcache)` pair, live or parked.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub(crate) fn core_caches(&self, core: usize) -> (&Cache, &Cache) {
        match self.coh.as_deref() {
            Some(hub) if core != hub.active => {
                assert!(core < hub.cores, "core {core} out of range");
                let p = hub.parked[core].as_ref().expect("parked");
                (&p.0, &p.1)
            }
            Some(_) => (&self.icache, &self.dcache),
            None => {
                assert_eq!(core, 0, "single-core machine");
                (&self.icache, &self.dcache)
            }
        }
    }

    /// Bus-level coherence counters (`None` on a single-core machine).
    pub fn coherence_stats(&self) -> Option<CoherenceStats> {
        self.coh.as_deref().map(|h| h.stats)
    }

    /// Per-core fault observation views (empty on a single-core machine).
    pub fn core_fault_views(&self) -> &[CoreFaultView] {
        self.coh.as_deref().map_or(&[], |h| &h.per_core)
    }

    /// Bitmask of cores that issued program accesses to `block` (bit
    /// `c` ⇔ core `c`). Always 0 on a single-core machine (no hub).
    pub fn sharer_mask(&self, block: BlockId) -> u64 {
        self.coh.as_deref().map_or(0, |h| h.touched[block.index()])
    }

    /// Records the active core as a sharer of `block`.
    #[inline]
    fn coh_touch(&mut self, block: BlockId) {
        if let Some(hub) = self.coh.as_deref_mut() {
            hub.touched[block.index()] |= 1u64 << hub.active;
        }
    }

    /// MESI bus transaction preceding a data-cache access at `addr`.
    /// Returns `(shared_hint, snoop_cycles)`: whether a remote copy
    /// remains (read miss fills Shared) and the DRAM cycles charged for
    /// remote dirty flushes. A no-op — `(false, 0)` — without a hub,
    /// with no other cores, or when the local state already permits the
    /// access without a bus transaction.
    fn coh_before_data(&mut self, addr: u32, is_write: bool) -> (bool, u32) {
        let Some(hub) = self.coh.as_deref_mut() else {
            return (false, 0);
        };
        let local = self.dcache.probe_state(addr);
        let mut flushed_words = 0u32;
        let mut shared = false;
        if is_write {
            if matches!(local, CoherenceState::Modified | CoherenceState::Exclusive) {
                // Already the exclusive owner: silent E→M upgrade.
                return (false, 0);
            }
            for pair in hub.parked.iter_mut().flatten() {
                let r = pair.1.snoop_invalidate(addr);
                if r.had_copy {
                    hub.stats.invalidations += 1;
                    if r.writeback_words > 0 {
                        hub.stats.dirty_flushes += 1;
                        flushed_words += r.writeback_words;
                    }
                }
            }
            if local == CoherenceState::Shared {
                hub.stats.upgrades += 1;
            }
        } else {
            if local != CoherenceState::Invalid {
                // Local hit: any valid state serves a read.
                return (false, 0);
            }
            for pair in hub.parked.iter_mut().flatten() {
                let r = pair.1.snoop_read(addr);
                if r.had_copy {
                    shared = true;
                    if r.downgraded {
                        hub.stats.downgrades += 1;
                    }
                    if r.writeback_words > 0 {
                        hub.stats.dirty_flushes += 1;
                        flushed_words += r.writeback_words;
                    }
                }
            }
            if shared {
                hub.stats.shared_fills += 1;
            }
        }
        let cycles = if flushed_words > 0 {
            self.dram.charge_burst_write(flushed_words)
        } else {
            0
        };
        (shared, cycles)
    }

    /// Read snoop on the other cores' *instruction* caches before an
    /// icache fill. Code is read-only, so remote copies are never
    /// Modified — this only decides Exclusive vs Shared fills.
    fn coh_before_fetch(&mut self, addr: u32) -> bool {
        let Some(hub) = self.coh.as_deref_mut() else {
            return false;
        };
        if self.icache.probe_state(addr) != CoherenceState::Invalid {
            return false;
        }
        let mut shared = false;
        for pair in hub.parked.iter_mut().flatten() {
            let r = pair.0.snoop_read(addr);
            if r.had_copy {
                shared = true;
                if r.downgraded {
                    hub.stats.downgrades += 1;
                }
            }
        }
        if shared {
            hub.stats.shared_fills += 1;
        }
        shared
    }

    /// Invalidates every core's cached lines of `block`'s home range
    /// after a quarantine remap, so no core can serve a stale copy of
    /// the demoted block. The shared placement map already moved; this
    /// clears the cached shadow. (A block that lived in the SPM was
    /// never cached, so this is defensive — and free — in that case.)
    fn coh_invalidate_block(&mut self, block: BlockId) {
        if self.coh.is_none() {
            return;
        }
        let spec = self.program.block(block);
        let base = spec.dram_base();
        let size = spec.size_bytes();
        let line = self.dcache.config().line_bytes;
        let mut flushed_words = 0u32;
        let mut invalidated = 0u64;
        let mut addr = base & !(line - 1);
        while addr < base + size {
            let r = self.dcache.snoop_invalidate(addr);
            if r.had_copy {
                invalidated += 1;
                flushed_words += r.writeback_words;
            }
            if let Some(hub) = self.coh.as_deref_mut() {
                for pair in hub.parked.iter_mut().flatten() {
                    let r = pair.1.snoop_invalidate(addr);
                    if r.had_copy {
                        invalidated += 1;
                        flushed_words += r.writeback_words;
                    }
                }
            }
            addr += line;
        }
        if let Some(hub) = self.coh.as_deref_mut() {
            hub.stats.remap_invalidations += invalidated;
        }
        if flushed_words > 0 {
            let c = self.dram.charge_burst_write(flushed_words);
            self.cycle += u64::from(c);
        }
    }

    /// Distributes a fault event (already counted once in the shared
    /// [`FaultStats`] registry) across its observers: the active core's
    /// view, and — when the struck block is shared — every sharer's
    /// exposure counter.
    fn coh_observe_fault(&mut self, block: BlockId, kind: AccessKind) {
        let Some(hub) = self.coh.as_deref_mut() else {
            return;
        };
        let view = &mut hub.per_core[hub.active];
        match kind {
            AccessKind::Correction | AccessKind::Scrub => view.corrections += 1,
            AccessKind::DueTrap => view.due_traps += 1,
            AccessKind::SdcEscape => view.sdc_escapes += 1,
            _ => return,
        }
        let mask = hub.touched[block.index()];
        let sharers = u64::from(mask.count_ones());
        if sharers > 1 {
            hub.stats.shared_block_faults += 1;
            hub.stats.cross_core_observations += sharers - 1;
            for c in 0..hub.cores {
                if mask & (1u64 << c) != 0 {
                    hub.per_core[c].shared_exposures += 1;
                }
            }
        }
    }

    /// Resolves `block` to its current SPM slot, performing the lazy
    /// map-in DMA (and, for dynamic blocks, allocation plus any LRU
    /// evictions) if needed. Returns `None` for off-chip blocks.
    fn ensure_resident(
        &mut self,
        block: BlockId,
        observer: &mut dyn Observer,
    ) -> Option<(crate::RegionId, u32)> {
        self.last_access[block.index()] = self.cycle;
        match self.placement.placement(block) {
            Placement::OffChip => None,
            Placement::Spm { region, offset } => {
                if !self.resident[block.index()] {
                    self.dma_fill(block, region, offset, observer);
                }
                Some((region, offset))
            }
            Placement::Dynamic { region } => {
                if self.resident[block.index()] {
                    return Some((region, self.dyn_offset[block.index()].expect("resident")));
                }
                let size = self.program.block(block).size_bytes();
                let offset = self.dyn_allocate(block, region, size, observer);
                self.dma_fill(block, region, offset, observer);
                self.dyn_offset[block.index()] = Some(offset);
                Some((region, offset))
            }
        }
    }

    /// DMA copy of a block's home copy into its SPM slot.
    fn dma_fill(
        &mut self,
        block: BlockId,
        region: crate::RegionId,
        offset: u32,
        observer: &mut dyn Observer,
    ) {
        let words = self.program.block(block).size_bytes() / 4;
        let mut buf = Vec::with_capacity(words as usize);
        let mut cycles = self.dram.read_burst(block, 0, words, &mut buf);
        let r = &mut self.regions[region.index()];
        for (i, v) in buf.iter().enumerate() {
            cycles += r.write_word(offset + (i as u32) * 4, *v);
        }
        self.cycle += u64::from(cycles);
        if let Some(fs) = self.faults.as_mut() {
            // The fill rewrites (re-encodes) every word in the slot.
            fs.marks[region.index()].clear_range(offset / 4, words);
            self.fault_refresh_marked(region.index());
        }
        self.resident[block.index()] = true;
        self.dirty[block.index()] = false;
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Write,
            target: Target::Region(region),
            offset: 0,
            dma: true,
            count: words,
        });
    }

    /// Carves `size` bytes out of `region`'s dynamic pool, evicting
    /// least-recently-used dynamic residents until the allocation fits.
    ///
    /// # Panics
    ///
    /// Panics if the block can never fit (prevented by
    /// [`PlacementMap::place_dynamic`]'s capacity check).
    fn dyn_allocate(
        &mut self,
        for_block: BlockId,
        region: crate::RegionId,
        size: u32,
        observer: &mut dyn Observer,
    ) -> u32 {
        loop {
            if let Some(off) = self.dyn_free[region.index()].alloc(size) {
                return off;
            }
            let victim = self
                .program
                .iter()
                .map(|(id, _)| id)
                .filter(|&id| {
                    id != for_block
                        && self.resident[id.index()]
                        && self.placement.placement(id) == (Placement::Dynamic { region })
                })
                .min_by_key(|id| self.last_access[id.index()])
                .unwrap_or_else(|| {
                    panic!("dynamic pool of {region:?} cannot fit {size} B even after evictions")
                });
            self.evict(victim, observer);
            self.dyn_evictions[region.index()] += 1;
        }
    }

    /// Evicts a resident dynamic block: writes it back if dirty, frees its
    /// slot, and marks it non-resident.
    fn evict(&mut self, block: BlockId, observer: &mut dyn Observer) {
        let Placement::Dynamic { region } = self.placement.placement(block) else {
            unreachable!("only dynamic blocks are evicted");
        };
        let offset = self.dyn_offset[block.index()].expect("victim is resident");
        let size = self.program.block(block).size_bytes();
        if self.dirty[block.index()] {
            self.writeback(block, region, offset, observer);
        }
        self.resident[block.index()] = false;
        self.dyn_offset[block.index()] = None;
        self.dyn_free[region.index()].free(offset, size);
    }

    /// DMA copy of a (dirty) block from its SPM slot back to its home.
    fn writeback(
        &mut self,
        block: BlockId,
        region: crate::RegionId,
        offset: u32,
        observer: &mut dyn Observer,
    ) {
        let words = self.program.block(block).size_bytes() / 4;
        if self.faults.is_some() {
            self.fault_flush_marks(region, offset, words);
        }
        let mut buf = Vec::with_capacity(words as usize);
        let mut cycles = 0u32;
        for i in 0..words {
            let (v, c) = self.regions[region.index()].read_word(offset + i * 4);
            buf.push(v);
            cycles += c;
        }
        cycles += self.dram.write_burst(block, 0, &buf);
        self.cycle += u64::from(cycles);
        self.dirty[block.index()] = false;
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Read,
            target: Target::Region(region),
            offset: 0,
            dma: true,
            count: words,
        });
    }

    /// Executes `count` sequential instruction fetches of `block` starting
    /// at byte `pc_offset` (wrapping within the block), returning the new
    /// PC cursor.
    ///
    /// # Errors
    ///
    /// [`SimError::WrongBlockKind`] if `block` is not code.
    pub(crate) fn fetch(
        &mut self,
        block: BlockId,
        pc_offset: u32,
        count: u32,
        observer: &mut dyn Observer,
    ) -> Result<u32, SimError> {
        self.check_deadline()?;
        let spec = self.program.block(block);
        if spec.kind() != BlockKind::Code {
            return Err(SimError::WrongBlockKind { block });
        }
        let size = spec.size_bytes();
        let base = spec.dram_base();
        self.coh_touch(block);
        if self.cycle >= self.fault_gate {
            self.fault_tick(observer);
        }
        let mut slot = self.ensure_resident(block, observer);
        if let Some((region, offset)) = slot {
            // Entering the decode branch is only needed when the region
            // carries a pending mark (the reference path enters always):
            // with no marks the span decode is a no-op and the re-resolve
            // below cannot observe a different slot, because no cycles
            // were charged and no recovery ran.
            if self.fault_decode_needed(region) {
                self.fault_decode_span(
                    block,
                    region,
                    offset,
                    pc_offset % size,
                    size,
                    count,
                    observer,
                );
                // Recovery may have quarantined a line and remapped the
                // block mid-fetch; re-resolve its slot.
                slot = self.ensure_resident(block, observer);
            }
        }
        self.instructions += u64::from(count);
        let mut pc = pc_offset % size;
        match slot {
            Some((region, offset)) => {
                // Fetches need no values, so they are charged as a batch of
                // `count` reads at the region's read latency.
                let cycles = self.regions[region.index()].read_batch(offset + pc, count);
                self.program_rw[region.index()].0 += u64::from(count);
                self.cycle += u64::from(cycles);
                pc = (pc + 4 * count) % size;
                observer.on_access(&AccessEvent {
                    cycle: self.cycle,
                    block,
                    kind: AccessKind::Fetch,
                    target: Target::Region(region),
                    offset: pc,
                    dma: false,
                    count,
                });
            }
            None => {
                for _ in 0..count {
                    let shared = self.coh_before_fetch(base + pc);
                    let acc = self.icache.access_with_hint(base + pc, false, shared);
                    let mut cycles = self.icache.hit_cycles();
                    if !acc.hit {
                        cycles += self.dram_charge_read(acc.fill_words);
                    }
                    if acc.writeback_words > 0 {
                        cycles += self.dram_charge_write(acc.writeback_words);
                    }
                    self.cycle += u64::from(cycles);
                    observer.on_access(&AccessEvent {
                        cycle: self.cycle,
                        block,
                        kind: AccessKind::Fetch,
                        target: Target::ICache { hit: acc.hit },
                        offset: pc,
                        dma: false,
                        count: 1,
                    });
                    pc = (pc + 4) % size;
                }
            }
        }
        Ok(pc)
    }

    fn dram_charge_read(&mut self, words: u32) -> u32 {
        self.dram.charge_burst_read(words)
    }

    fn dram_charge_write(&mut self, words: u32) -> u32 {
        self.dram.charge_burst_write(words)
    }

    /// Reads one aligned word of a data block.
    pub(crate) fn read_word(
        &mut self,
        block: BlockId,
        offset: u32,
        observer: &mut dyn Observer,
    ) -> Result<u32, SimError> {
        self.check_deadline()?;
        self.check_bounds(block, offset, 4)?;
        self.coh_touch(block);
        if self.cycle >= self.fault_gate {
            self.fault_tick(observer);
        }
        let mut slot = self.ensure_resident(block, observer);
        if let Some((region, base)) = slot {
            if self.fault_decode_needed(region) {
                let woff = (base + offset) & !3;
                self.fault_decode_word(Some((block, base)), region, woff, false, observer);
                slot = self.ensure_resident(block, observer);
            }
        }
        let (value, target, cycles) = match slot {
            Some((region, base)) => {
                let (v, c) = self.regions[region.index()].read_word(base + offset);
                self.program_rw[region.index()].0 += 1;
                (v, Target::Region(region), c)
            }
            None => {
                let addr = self.program.block(block).dram_base() + offset;
                let (shared, snoop_cycles) = self.coh_before_data(addr, false);
                let acc = self.dcache.access_with_hint(addr, false, shared);
                let mut cycles = self.dcache.hit_cycles() + snoop_cycles;
                if !acc.hit {
                    cycles += self.dram_charge_read(acc.fill_words);
                }
                if acc.writeback_words > 0 {
                    cycles += self.dram_charge_write(acc.writeback_words);
                }
                (
                    self.dram.peek_word(block, offset & !3),
                    Target::DCache { hit: acc.hit },
                    cycles,
                )
            }
        };
        self.cycle += u64::from(cycles);
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Read,
            target,
            offset,
            dma: false,
            count: 1,
        });
        Ok(value)
    }

    /// Writes one aligned word of a data block.
    pub(crate) fn write_word(
        &mut self,
        block: BlockId,
        offset: u32,
        value: u32,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        self.check_deadline()?;
        self.check_bounds(block, offset, 4)?;
        self.coh_touch(block);
        if self.cycle >= self.fault_gate {
            self.fault_tick(observer);
        }
        let slot = self.ensure_resident(block, observer);
        let (target, cycles) = match slot {
            Some((region, base)) => {
                let c = self.regions[region.index()].write_word(base + offset, value);
                self.program_rw[region.index()].1 += 1;
                self.dirty[block.index()] = true;
                if self.fault_decode_needed(region) {
                    if let Some(fs) = self.faults.as_mut() {
                        // A full-word write re-encodes the codeword,
                        // clearing any latent flips on the line.
                        fs.marks[region.index()].remove((base + offset) / 4);
                        self.fault_refresh_marked(region.index());
                    }
                }
                if self.fault_wear {
                    self.fault_check_wear(region, base + offset, observer);
                }
                (Target::Region(region), c)
            }
            None => {
                let addr = self.program.block(block).dram_base() + offset;
                let (_, snoop_cycles) = self.coh_before_data(addr, true);
                let acc = self.dcache.access_with_hint(addr, true, false);
                let mut cycles = self.dcache.hit_cycles() + snoop_cycles;
                if !acc.hit {
                    cycles += self.dram_charge_read(acc.fill_words);
                }
                if acc.writeback_words > 0 {
                    cycles += self.dram_charge_write(acc.writeback_words);
                }
                self.dram.poke_word(block, offset, value);
                (Target::DCache { hit: acc.hit }, cycles)
            }
        };
        self.cycle += u64::from(cycles);
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind: AccessKind::Write,
            target,
            offset,
            dma: false,
            count: 1,
        });
        Ok(())
    }

    /// Injects a particle strike of `flipped_bits` adjacent bit flips
    /// into `region` at word `offset`, mid-run.
    ///
    /// The region's protection scheme decides the outcome, mirroring the
    /// decode path a real controller would take on the next access:
    ///
    /// * immune cells ([`ftspm_ecc::ErrorClass::Masked`]) and corrected
    ///   errors ([`ftspm_ecc::ErrorClass::Dre`]) leave the data intact;
    /// * detected-unrecoverable errors ([`ftspm_ecc::ErrorClass::Due`])
    ///   leave the data intact but report the trap;
    /// * silent corruptions ([`ftspm_ecc::ErrorClass::Sdc`]) **really
    ///   flip the stored data bits**, so the corruption propagates into
    ///   subsequent program reads and, ultimately, its outputs.
    ///
    /// Returns the outcome so campaigns can count SDC/DUE/DRE.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegion`] if `region` is out of range,
    /// [`SimError::BadStrike`] if `offset` is unaligned or
    /// `flipped_bits` is 0, and [`SimError::StrikeOutOfRange`] if the
    /// word lies beyond the region.
    pub fn inject_strike(
        &mut self,
        region: crate::RegionId,
        offset: u32,
        first_bit: u32,
        flipped_bits: u32,
    ) -> Result<ErrorClass, SimError> {
        let Some(r) = self.regions.get_mut(region.index()) else {
            return Err(SimError::UnknownRegion(region));
        };
        if flipped_bits == 0 || !offset.is_multiple_of(4) {
            return Err(SimError::BadStrike {
                offset,
                flipped_bits,
            });
        }
        let bytes = r.spec().geometry().bytes();
        if offset.checked_add(4).is_none_or(|end| end > bytes) {
            return Err(SimError::StrikeOutOfRange {
                region,
                offset,
                bytes,
            });
        }
        let scheme = r.spec().scheme();
        let outcome = scheme.classify(flipped_bits);
        if outcome == ErrorClass::Sdc {
            // Corrupt the data bits for real (clamped into the word).
            let mut mask: u32 = 0;
            for k in 0..flipped_bits.min(32) {
                mask |= 1 << ((first_bit + k) % 32);
            }
            r.corrupt_word(offset, mask);
        }
        Ok(outcome)
    }

    /// Live fault-injection counters (`None` when the machine runs clean).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Words of `region` currently carrying a pending (not yet decoded)
    /// strike mask, in ascending order. Empty for clean machines and
    /// out-of-range regions. Test/differential-oracle visibility into
    /// latent state that no report surfaces.
    pub fn pending_marks(&self, region: crate::RegionId) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(f) = self.faults.as_ref() {
            if let Some(t) = f.marks.get(region.index()) {
                t.collect_into(&mut out);
            }
        }
        out
    }

    /// Word lines of `region` currently quarantined, in ascending order.
    /// Empty for clean machines and out-of-range regions.
    pub fn quarantined_lines(&self, region: crate::RegionId) -> Vec<u32> {
        self.faults
            .as_ref()
            .and_then(|f| f.quarantined.get(region.index()))
            .map(|q| q.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Advances the fault subsystem to the current cycle: lands every
    /// strike whose arrival time has passed, then runs the scrub daemon
    /// if its period elapsed. Called at the top of every program access.
    ///
    /// Event-driven: the access skips straight past the subsystem with a
    /// single comparison against the cached next event (the earlier of
    /// the injector's next arrival and the next scrub tick). Events land
    /// at exactly the cycles the per-access reference path lands them —
    /// both paths process the subsystem at the first access whose cycle
    /// reaches the schedule, and accesses are the only places time
    /// advances past it — so replays stay bit-for-bit.
    fn fault_tick(&mut self, observer: &mut dyn Observer) {
        let due = self
            .faults
            .as_ref()
            .is_some_and(|f| f.reference || self.cycle >= f.next_event);
        if !due {
            // Reachable only through a stale gate (the caller's compare
            // uses the cached copy); re-sync it.
            self.fault_refresh_gate();
            return;
        }
        self.fault_inject_pending();
        let scrub_now = self
            .faults
            .as_ref()
            .is_some_and(|f| self.cycle >= f.next_scrub);
        if scrub_now {
            self.fault_scrub(observer);
            if let Some(fs) = self.faults.as_mut() {
                let interval = fs.config.scrub_interval.unwrap_or(u64::MAX);
                fs.next_scrub = self.cycle.saturating_add(interval);
                fs.recompute_next_event();
            }
        }
        self.fault_refresh_gate();
    }

    /// Re-caches [`Machine::fault_gate`] from the fault state's schedule.
    /// Must run after anything that moves `next_event` (strike arrivals,
    /// scrub reschedules).
    fn fault_refresh_gate(&mut self) {
        self.fault_gate = match self.faults.as_ref() {
            Some(f) if f.reference => 0,
            Some(f) => f.next_event,
            None => u64::MAX,
        };
    }

    /// Whether an access to `region` must run the decode branch: the
    /// region carries a pending mark, or the reference path is selected
    /// (which always probes, like the pre-optimization code did). One
    /// test of a hot cached field; bit 63 may be conservatively set (a
    /// false positive only makes the decode probe a no-op).
    #[inline]
    fn fault_decode_needed(&self, region: crate::RegionId) -> bool {
        self.fault_marked & (1u64 << region.index().min(63)) != 0
    }

    /// Re-caches region `ri`'s bit of [`Machine::fault_marked`] from its
    /// mark table. Must run after anything that may flip the table
    /// between empty and non-empty.
    fn fault_refresh_marked(&mut self, ri: usize) {
        let Some(f) = self.faults.as_ref() else {
            self.fault_marked = 0;
            return;
        };
        if f.reference {
            self.fault_marked = u64::MAX;
            return;
        }
        if ri < 63 {
            if f.marks.get(ri).is_none_or(crate::MarkTable::is_empty) {
                self.fault_marked &= !(1u64 << ri);
            } else {
                self.fault_marked |= 1u64 << ri;
            }
        } else if f.marks[63..].iter().any(|t| !t.is_empty()) {
            self.fault_marked |= 1u64 << 63;
        } else {
            self.fault_marked &= !(1u64 << 63);
        }
    }

    /// Lands every strike scheduled at or before the current cycle as a
    /// pending flip mask on the struck word (immune cells absorb theirs
    /// outright). Storage is only corrupted later, if a decode aliases.
    /// Re-caches the next-event cycle on exit (the injector advanced).
    fn fault_inject_pending(&mut self) {
        let now = self.cycle;
        loop {
            let Some(fs) = self.faults.as_mut() else {
                return;
            };
            if !fs.armed || !fs.injector.strike_due(now) {
                fs.recompute_next_event();
                break;
            }
            let pick = fs.injector.pick_weighted(&fs.weights);
            let ri = fs.eligible[pick];
            fs.stats.strikes += 1;
            let scheme = self.regions[ri].spec().scheme();
            if scheme == ProtectionScheme::Immune {
                fs.stats.masked += 1;
                continue;
            }
            let words = self.regions[ri].spec().geometry().words();
            let strike = fs.injector.sample(words, stored_bits(scheme));
            let mut mask = 0u64;
            for b in strike.bits() {
                mask |= 1 << b;
            }
            fs.marks[ri].or_insert(strike.word, mask);
            self.fault_marked |= 1u64 << ri.min(63);
        }
        self.fault_refresh_gate();
    }

    /// Decodes pending marks over a fetch span of `count` words starting
    /// at block-relative byte `start` (wrapping within `size`).
    #[allow(clippy::too_many_arguments)]
    fn fault_decode_span(
        &mut self,
        block: BlockId,
        region: crate::RegionId,
        base: u32,
        start: u32,
        size: u32,
        count: u32,
        observer: &mut dyn Observer,
    ) {
        let ri = region.index();
        let mut pc = start;
        for _ in 0..count {
            if self.faults.as_ref().is_none_or(|f| f.marks[ri].is_empty()) {
                return;
            }
            self.fault_decode_word(Some((block, base)), region, base + pc, false, observer);
            pc = (pc + 4) % size;
        }
    }

    /// Decodes any pending flip mask on `region`'s word at byte `woff`
    /// through the region's protection scheme, charging the architectural
    /// consequences. `owner` (block and its slot base) attributes observer
    /// events; `scrub` selects the scrub-daemon counters/event kind for
    /// corrected words.
    fn fault_decode_word(
        &mut self,
        owner: Option<(BlockId, u32)>,
        region: crate::RegionId,
        woff: u32,
        scrub: bool,
        observer: &mut dyn Observer,
    ) {
        let ri = region.index();
        let word = woff / 4;
        let Some(mask) = self.faults.as_mut().and_then(|f| f.marks[ri].remove(word)) else {
            return;
        };
        self.fault_refresh_marked(ri);
        let scheme = self.regions[ri].spec().scheme();
        match scheme.classify(mask.count_ones()) {
            ErrorClass::Masked => {}
            ErrorClass::Dre => {
                // The decoder corrects inline; the controller writes the
                // repaired word back so the flip cannot accumulate.
                let value = self.spm_word(ri, woff);
                let c = u64::from(self.regions[ri].write_word(woff, value));
                self.cycle += c;
                if let Some(fs) = self.faults.as_mut() {
                    if scrub {
                        fs.stats.scrub_corrections += 1;
                    } else {
                        fs.stats.corrections += 1;
                    }
                    fs.stats.recovery_cycles += c;
                }
                let kind = if scrub {
                    AccessKind::Scrub
                } else {
                    AccessKind::Correction
                };
                self.fault_event(owner, kind, region, woff, 1, observer);
            }
            ErrorClass::Due => self.fault_recover_due(owner, region, woff, observer),
            ErrorClass::Sdc => {
                // Aliased past the code: stored data really flips.
                self.regions[ri].corrupt_word(woff, fold_data_mask(mask));
                if let Some(fs) = self.faults.as_mut() {
                    fs.stats.sdc_escapes += 1;
                }
                self.fault_event(owner, AccessKind::SdcEscape, region, woff, 1, observer);
            }
        }
    }

    /// DUE trap: re-fetch the clean copy from DRAM and rewrite the word,
    /// retrying (bounded) if another strike lands on the line while the
    /// recovery itself runs. Gives the line up to quarantine when the
    /// retry budget is exhausted or the line keeps trapping.
    fn fault_recover_due(
        &mut self,
        owner: Option<(BlockId, u32)>,
        region: crate::RegionId,
        woff: u32,
        observer: &mut dyn Observer,
    ) {
        let ri = region.index();
        let word = woff / 4;
        let retry_limit = self.faults.as_ref().map_or(0, |f| f.config.due_retry_limit);
        let mut attempts = 0u32;
        let mut gave_up = false;
        loop {
            attempts += 1;
            // One recovery attempt: a one-word DRAM burst plus the SPM
            // rewrite. The stored word is architecturally clean (non-SDC
            // marks never corrupt storage), so rewriting it models the
            // re-fetch without disturbing program data.
            let mut c = u64::from(self.dram.charge_burst_read(1));
            let value = self.spm_word(ri, woff);
            c += u64::from(self.regions[ri].write_word(woff, value));
            self.cycle += c;
            if let Some(fs) = self.faults.as_mut() {
                fs.stats.recovery_cycles += c;
            }
            // Strikes keep arriving while recovery runs; one may re-mark
            // this very line and force a retry.
            self.fault_inject_pending();
            let remarked = self
                .faults
                .as_mut()
                .is_some_and(|f| f.marks[ri].remove(word).is_some());
            self.fault_refresh_marked(ri);
            if !remarked {
                break;
            }
            if attempts > retry_limit {
                gave_up = true;
                break;
            }
        }
        let threshold = self
            .faults
            .as_ref()
            .map_or(u32::MAX, |f| f.config.quarantine_due_threshold);
        let mut quarantine = gave_up;
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.due_traps += 1;
            fs.stats.due_retries += u64::from(attempts - 1);
            let hits = fs.due_counts[ri].entry(word).or_insert(0);
            *hits += 1;
            quarantine = quarantine || *hits >= threshold;
        }
        self.fault_event(owner, AccessKind::DueTrap, region, woff, attempts, observer);
        if quarantine {
            let cause = if gave_up {
                QuarantineCause::RetryExhausted
            } else {
                QuarantineCause::DueThreshold
            };
            self.fault_quarantine(region, woff, cause, observer);
        }
    }

    /// One scrub-daemon pass: sweep-read every protected SRAM region,
    /// decode pending marks, rewrite correctable words, recover DUEs.
    fn fault_scrub(&mut self, observer: &mut dyn Observer) {
        for ri in 0..self.regions.len() {
            let scheme = self.regions[ri].spec().scheme();
            if !matches!(scheme, ProtectionScheme::Parity | ProtectionScheme::SecDed) {
                continue;
            }
            let region = crate::RegionId::new(ri);
            let words = self.regions[ri].spec().geometry().words();
            // The daemon reads the whole region each pass.
            let c = u64::from(self.regions[ri].read_batch(0, words));
            self.cycle += c;
            if let Some(fs) = self.faults.as_mut() {
                fs.stats.recovery_cycles += c;
            }
            // Batch-decode the marked words: one set-bit sweep of the
            // dirty bitmap into a reused scratch buffer (ascending word
            // order, exactly the order the old per-key map walk used),
            // instead of allocating a fresh Vec per pass.
            let mut marked = match self.faults.as_mut() {
                Some(f) => {
                    let mut buf = std::mem::take(&mut f.scrub_scratch);
                    f.marks[ri].collect_into(&mut buf);
                    buf
                }
                None => Vec::new(),
            };
            for &w in &marked {
                let woff = w * 4;
                let owner = self.owner_of(region, woff);
                self.fault_decode_word(owner, region, woff, true, observer);
            }
            if let Some(fs) = self.faults.as_mut() {
                marked.clear();
                fs.scrub_scratch = marked;
            }
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.scrub_passes += 1;
        }
    }

    /// Applies pending marks in a DMA-writeback window without the trap
    /// machinery: the outgoing DMA stream passes through the decoder, so
    /// correctable flips are fixed silently and aliasing flips corrupt
    /// the stream; DUE-class marks stay latent (the engine cannot recover
    /// mid-burst) and die with the vacated slot.
    fn fault_flush_marks(&mut self, region: crate::RegionId, offset: u32, words: u32) {
        let ri = region.index();
        if self.faults.as_ref().is_none_or(|f| f.marks[ri].is_empty()) {
            return;
        }
        let scheme = self.regions[ri].spec().scheme();
        let first = offset / 4;
        for w in first..first + words {
            let Some(mask) = self.faults.as_ref().and_then(|f| f.marks[ri].get(w)) else {
                continue;
            };
            match scheme.classify(mask.count_ones()) {
                ErrorClass::Dre => {
                    if let Some(fs) = self.faults.as_mut() {
                        fs.marks[ri].remove(w);
                        fs.stats.corrections += 1;
                    }
                }
                ErrorClass::Sdc => {
                    self.regions[ri].corrupt_word(w * 4, fold_data_mask(mask));
                    if let Some(fs) = self.faults.as_mut() {
                        fs.marks[ri].remove(w);
                        fs.stats.sdc_escapes += 1;
                    }
                }
                ErrorClass::Due | ErrorClass::Masked => {}
            }
        }
        self.fault_refresh_marked(ri);
    }

    /// Quarantines an STT line whose write count exceeded the configured
    /// endurance budget, demoting its owning block.
    fn fault_check_wear(
        &mut self,
        region: crate::RegionId,
        woff: u32,
        observer: &mut dyn Observer,
    ) {
        let ri = region.index();
        let Some(budget) = self
            .faults
            .as_ref()
            .and_then(|f| f.config.line_write_budget)
        else {
            return;
        };
        if self.regions[ri].spec().technology() != Technology::SttRam {
            return;
        }
        let line = (woff / 4) as usize;
        if self.regions[ri].line_writes()[line] <= budget {
            return;
        }
        self.fault_quarantine(region, woff, QuarantineCause::Wear, observer);
    }

    /// The block currently occupying `region` byte `woff`, with its slot
    /// base offset.
    fn owner_of(&self, region: crate::RegionId, woff: u32) -> Option<(BlockId, u32)> {
        for (block, p) in self.placement.iter() {
            let (r, base) = match p {
                Placement::Spm { region: r, offset } => (r, offset),
                Placement::Dynamic { region: r } => {
                    if !self.resident[block.index()] {
                        continue;
                    }
                    match self.dyn_offset[block.index()] {
                        Some(off) => (r, off),
                        None => continue,
                    }
                }
                Placement::OffChip => continue,
            };
            if r != region {
                continue;
            }
            let size = self.program.block(block).size_bytes();
            if woff >= base && woff < base + size {
                return Some((block, base));
            }
        }
        None
    }

    /// Quarantines a word line (first offence only) and demotes its
    /// owning block out of the degraded region.
    fn fault_quarantine(
        &mut self,
        region: crate::RegionId,
        woff: u32,
        cause: QuarantineCause,
        observer: &mut dyn Observer,
    ) {
        let ri = region.index();
        let line = woff / 4;
        let newly = self
            .faults
            .as_mut()
            .is_some_and(|f| f.quarantined[ri].insert(line));
        if !newly {
            return;
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.quarantined_lines += 1;
            fs.due_counts[ri].remove(&line);
        }
        observer.on_quarantine(&QuarantineEvent {
            cycle: self.cycle,
            region,
            line,
            cause,
        });
        if let Some((block, _)) = self.owner_of(region, woff) {
            self.remap_block(block, observer);
        }
    }

    /// Demotes `block` out of its (degraded) region: writes back the
    /// dirty copy, vacates the slot, and re-places the block dynamically
    /// in the region's configured demotion target (falling back to
    /// off-chip if there is none or the block cannot fit).
    fn remap_block(&mut self, block: BlockId, observer: &mut dyn Observer) {
        let old = self.placement.placement(block);
        let Some(region) = old.region() else { return };
        if self.resident[block.index()] {
            let offset = match old {
                Placement::Spm { offset, .. } => offset,
                Placement::Dynamic { .. } => self.dyn_offset[block.index()].expect("resident"),
                Placement::OffChip => unreachable!("off-chip blocks have no region"),
            };
            if self.dirty[block.index()] {
                self.writeback(block, region, offset, observer);
            }
            self.resident[block.index()] = false;
            if old.is_dynamic() {
                let size = self.program.block(block).size_bytes();
                self.dyn_offset[block.index()] = None;
                self.dyn_free[region.index()].free(offset, size);
            }
        }
        let target = self
            .faults
            .as_ref()
            .and_then(|f| f.config.demotion.get(region.index()).copied().flatten())
            .filter(|t| *t != region);
        // Demote dynamically: no static space was reserved in the target,
        // so a full target degrades further to off-chip instead of
        // failing the run.
        let placed = match target {
            Some(t) => self
                .placement
                .place_dynamic(&self.program, block, t)
                .is_ok(),
            None => false,
        };
        if !placed {
            self.placement.place_off_chip(block);
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.remapped_blocks += 1;
        }
        // The placement map is shared by every core, so the remap is
        // atomic across cores by construction; invalidating any cached
        // shadow of the block closes the remaining stale-copy window.
        self.coh_invalidate_block(block);
        observer.on_remap(&RemapEvent {
            cycle: self.cycle,
            block,
            from: region,
            to: target.filter(|_| placed),
        });
    }

    /// Emits a fault/recovery observer event attributed to the owning
    /// block (unattributable events — e.g. scrub hits on vacant words —
    /// are counted in [`FaultStats`] but not traced), and distributes the
    /// event across the coherence hub's per-core/shared-block views.
    fn fault_event(
        &mut self,
        owner: Option<(BlockId, u32)>,
        kind: AccessKind,
        region: crate::RegionId,
        woff: u32,
        count: u32,
        observer: &mut dyn Observer,
    ) {
        let Some((block, base)) = owner else { return };
        self.coh_observe_fault(block, kind);
        observer.on_access(&AccessEvent {
            cycle: self.cycle,
            block,
            kind,
            target: Target::Region(region),
            offset: woff.saturating_sub(base),
            dma: false,
            count,
        });
    }

    /// The stored word at region byte `woff`, free of timing or energy.
    fn spm_word(&self, ri: usize, woff: u32) -> u32 {
        let s = self.regions[ri].storage();
        let i = woff as usize;
        u32::from_le_bytes(s[i..i + 4].try_into().expect("aligned word"))
    }

    /// Reads a word's current value without charging timing or energy
    /// (byte-merge support and test inspection). Reads the SPM copy when
    /// the block is resident, the DRAM home copy otherwise.
    ///
    /// # Errors
    ///
    /// [`SimError::OffsetOutOfBounds`] on a bad offset.
    pub fn peek_block_word(&self, block: BlockId, offset: u32) -> Result<u32, SimError> {
        self.check_bounds(block, offset, 4)?;
        if self.resident[block.index()] {
            let slot = match self.placement.placement(block) {
                Placement::Spm {
                    region,
                    offset: base,
                } => Some((region, base)),
                Placement::Dynamic { region } => {
                    Some((region, self.dyn_offset[block.index()].expect("resident")))
                }
                Placement::OffChip => None,
            };
            if let Some((region, base)) = slot {
                let s = self.regions[region.index()].storage();
                let i = (base + offset) as usize;
                return Ok(u32::from_le_bytes(s[i..i + 4].try_into().expect("word")));
            }
        }
        Ok(self.dram.peek_word(block, offset))
    }

    /// Writes back dirty SPM-resident data blocks, charges leakage to every
    /// on-chip device for the elapsed cycles, and returns the final
    /// statistics. Idempotent after the first call.
    pub fn finish(&mut self, observer: &mut dyn Observer) -> MachineStats {
        if !self.finished {
            // Write back dirty data blocks (the unmapping commands).
            let ids: Vec<BlockId> = self.program.iter().map(|(id, _)| id).collect();
            for block in ids {
                if !self.resident[block.index()] || !self.dirty[block.index()] {
                    continue;
                }
                if self.program.block(block).kind() != BlockKind::Data {
                    continue;
                }
                let slot = match self.placement.placement(block) {
                    Placement::Spm { region, offset } => Some((region, offset)),
                    Placement::Dynamic { region } => {
                        Some((region, self.dyn_offset[block.index()].expect("resident")))
                    }
                    Placement::OffChip => None,
                };
                if let Some((region, offset)) = slot {
                    self.writeback(block, region, offset, observer);
                }
            }
            // Leakage over the whole run.
            let cycles = self.cycle;
            for r in &mut self.regions {
                let leak = r.leakage_mw();
                r.energy_mut().charge_static(self.clock, leak, cycles);
            }
            let il = self.icache.leakage_mw();
            self.icache
                .energy_mut()
                .charge_static(self.clock, il, cycles);
            let dl = self.dcache.leakage_mw();
            self.dcache
                .energy_mut()
                .charge_static(self.clock, dl, cycles);
            // Parked cores' caches leak for the whole run too.
            let clock = self.clock;
            if let Some(hub) = self.coh.as_deref_mut() {
                for pair in hub.parked.iter_mut().flatten() {
                    let il = pair.0.leakage_mw();
                    pair.0.energy_mut().charge_static(clock, il, cycles);
                    let dl = pair.1.leakage_mw();
                    pair.1.energy_mut().charge_static(clock, dl, cycles);
                }
            }
            self.finished = true;
        }
        self.stats()
    }

    /// A statistics snapshot (leakage is only included after
    /// [`Machine::finish`]).
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.cycle,
            instructions: self.instructions,
            regions: self
                .regions
                .iter()
                .enumerate()
                .map(|(i, r)| RegionStats {
                    name: r.spec().name().to_string(),
                    device: r.stats(),
                    program_reads: self.program_rw[i].0,
                    program_writes: self.program_rw[i].1,
                    max_line_writes: r.max_line_writes(),
                    dyn_evictions: self.dyn_evictions[i],
                    total_writes: r.total_writes(),
                    energy: r.energy().breakdown(),
                    leakage_mw: r.leakage_mw(),
                })
                .collect(),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            dram: self.dram.stats(),
            icache_energy: self.icache.energy().breakdown(),
            dcache_energy: self.dcache.energy().breakdown(),
            dram_energy: self.dram.energy().breakdown(),
            faults: self.faults.as_ref().map(|f| f.stats),
        }
    }
}
