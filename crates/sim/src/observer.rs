//! Event hooks: how the profiler (and tests) watch a running machine.

use crate::{BlockId, RegionId};

/// What kind of memory operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch from a code block.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// The protection scheme corrected a struck word in place (DRE); the
    /// event's `count` is 1 and its cost is already in the cycle counter.
    Correction,
    /// A detected-unrecoverable error trapped and the machine re-fetched
    /// the clean copy; `count` is the number of recovery attempts.
    DueTrap,
    /// A strike aliased past the protection scheme and silently corrupted
    /// stored data (SDC).
    SdcEscape,
    /// The scrub daemon rewrote a correctable word during a sweep.
    Scrub,
}

/// Which device served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// An SPM region.
    Region(RegionId),
    /// The L1 instruction cache (code block left off-chip).
    ICache {
        /// Whether the access hit in the cache.
        hit: bool,
    },
    /// The L1 data cache (data block left off-chip).
    DCache {
        /// Whether the access hit in the cache.
        hit: bool,
    },
}

/// One memory access performed by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Machine cycle at which the access completed.
    pub cycle: u64,
    /// The program block accessed (for fetches, the executing code block).
    pub block: BlockId,
    /// Fetch / read / write.
    pub kind: AccessKind,
    /// Device that served the access.
    pub target: Target,
    /// Byte offset within the block.
    pub offset: u32,
    /// True for DMA traffic (block map-in / writeback), which the paper's
    /// profiling explicitly excludes from block statistics.
    pub dma: bool,
    /// Number of word accesses this event represents (batched fetches and
    /// DMA bursts are reported as one event; ordinary loads/stores are 1).
    pub count: u32,
}

/// Observer of a running machine. All methods have empty defaults; a
/// profiler overrides what it needs.
pub trait Observer {
    /// A memory access completed.
    fn on_access(&mut self, _event: &AccessEvent) {}

    /// Control entered a code block (a call), at `cycle`.
    fn on_block_enter(&mut self, _block: BlockId, _cycle: u64) {}

    /// Control left a code block (a return), at `cycle`.
    fn on_block_exit(&mut self, _block: BlockId, _cycle: u64) {}

    /// The stack pointer reached `depth_bytes` bytes of occupancy after a
    /// call into `block`.
    fn on_stack_depth(&mut self, _block: BlockId, _depth_bytes: u32) {}
}

/// An observer that ignores everything (for unobserved runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_accepts_events() {
        let mut o = NullObserver;
        o.on_access(&AccessEvent {
            cycle: 0,
            block: BlockId(0),
            kind: AccessKind::Read,
            target: Target::Region(RegionId(0)),
            offset: 0,
            dma: false,
            count: 1,
        });
        o.on_block_enter(BlockId(0), 1);
        o.on_block_exit(BlockId(0), 2);
        o.on_stack_depth(BlockId(0), 64);
    }
}
