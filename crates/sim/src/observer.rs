//! Event hooks: how the profiler (and tests) watch a running machine.

use crate::{BlockId, RegionId};

/// What kind of memory operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch from a code block.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// The protection scheme corrected a struck word in place (DRE); the
    /// event's `count` is 1 and its cost is already in the cycle counter.
    Correction,
    /// A detected-unrecoverable error trapped and the machine re-fetched
    /// the clean copy; `count` is the number of recovery attempts.
    DueTrap,
    /// A strike aliased past the protection scheme and silently corrupted
    /// stored data (SDC).
    SdcEscape,
    /// The scrub daemon rewrote a correctable word during a sweep.
    Scrub,
}

/// Which device served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// An SPM region.
    Region(RegionId),
    /// The L1 instruction cache (code block left off-chip).
    ICache {
        /// Whether the access hit in the cache.
        hit: bool,
    },
    /// The L1 data cache (data block left off-chip).
    DCache {
        /// Whether the access hit in the cache.
        hit: bool,
    },
}

/// One memory access performed by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Machine cycle at which the access completed.
    pub cycle: u64,
    /// The program block accessed (for fetches, the executing code block).
    pub block: BlockId,
    /// Fetch / read / write.
    pub kind: AccessKind,
    /// Device that served the access.
    pub target: Target,
    /// Byte offset within the block.
    pub offset: u32,
    /// True for DMA traffic (block map-in / writeback), which the paper's
    /// profiling explicitly excludes from block statistics.
    pub dma: bool,
    /// Number of word accesses this event represents (batched fetches and
    /// DMA bursts are reported as one event; ordinary loads/stores are 1).
    pub count: u32,
}

/// Why a word line was pulled out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineCause {
    /// The line trapped (DUE) often enough to cross the configured
    /// quarantine threshold.
    DueThreshold,
    /// A single DUE recovery exhausted its retry budget — strikes kept
    /// re-marking the line while recovery ran.
    RetryExhausted,
    /// An STT-RAM line exceeded its endurance write budget.
    Wear,
}

impl QuarantineCause {
    /// Short machine-readable label (used by trace exporters).
    pub fn label(self) -> &'static str {
        match self {
            QuarantineCause::DueThreshold => "due_threshold",
            QuarantineCause::RetryExhausted => "retry_exhausted",
            QuarantineCause::Wear => "wear",
        }
    }
}

/// A word line was quarantined (graceful-degradation decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// Machine cycle of the decision.
    pub cycle: u64,
    /// The degraded region.
    pub region: RegionId,
    /// Word-line index within the region.
    pub line: u32,
    /// What pushed the line over the edge.
    pub cause: QuarantineCause,
}

/// A block was demoted out of a degraded region (remap decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapEvent {
    /// Machine cycle of the decision.
    pub cycle: u64,
    /// The demoted block.
    pub block: BlockId,
    /// The region the block was evicted from.
    pub from: RegionId,
    /// The demotion target (`None` = the block went off-chip).
    pub to: Option<RegionId>,
}

/// Observer of a running machine. All methods have empty defaults; a
/// profiler overrides what it needs. Every hook takes its event by
/// reference so the hot fetch/decode loops never copy event payloads
/// into observer calls.
pub trait Observer {
    /// A memory access completed.
    fn on_access(&mut self, _event: &AccessEvent) {}

    /// Control entered a code block (a call), at `cycle`.
    fn on_block_enter(&mut self, _block: BlockId, _cycle: u64) {}

    /// Control left a code block (a return), at `cycle`.
    fn on_block_exit(&mut self, _block: BlockId, _cycle: u64) {}

    /// The stack pointer reached `depth_bytes` bytes of occupancy after a
    /// call into `block`.
    fn on_stack_depth(&mut self, _block: BlockId, _depth_bytes: u32) {}

    /// The fault subsystem quarantined a word line.
    fn on_quarantine(&mut self, _event: &QuarantineEvent) {}

    /// The fault subsystem demoted a block out of a degraded region.
    fn on_remap(&mut self, _event: &RemapEvent) {}
}

/// An observer that ignores everything (for unobserved runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_accepts_events() {
        let mut o = NullObserver;
        o.on_access(&AccessEvent {
            cycle: 0,
            block: BlockId(0),
            kind: AccessKind::Read,
            target: Target::Region(RegionId(0)),
            offset: 0,
            dma: false,
            count: 1,
        });
        o.on_block_enter(BlockId(0), 1);
        o.on_block_exit(BlockId(0), 2);
        o.on_stack_depth(BlockId(0), 64);
        o.on_quarantine(&QuarantineEvent {
            cycle: 3,
            region: RegionId(0),
            line: 7,
            cause: QuarantineCause::Wear,
        });
        o.on_remap(&RemapEvent {
            cycle: 4,
            block: BlockId(0),
            from: RegionId(0),
            to: None,
        });
    }

    #[test]
    fn quarantine_causes_have_distinct_labels() {
        let labels = [
            QuarantineCause::DueThreshold.label(),
            QuarantineCause::RetryExhausted.label(),
            QuarantineCause::Wear.label(),
        ];
        assert_eq!(labels, ["due_threshold", "retry_exhausted", "wear"]);
    }
}
