//! Set-associative write-back L1 cache model.
//!
//! The caches serve blocks the mapping left off-chip (the paper's Table IV
//! gives both baselines and FTSPM an 8 KiB unprotected-SRAM L1 I-cache and
//! D-cache). The model tracks real tags with LRU replacement and
//! write-back/write-allocate semantics; data values are kept coherent in
//! the DRAM home copy, so the cache only accounts timing and energy.
//!
//! Every line additionally carries a MESI [`CoherenceState`]. A
//! single-core machine never issues snoops, and the state machine
//! degenerates exactly to the old `valid`/`dirty` pair (Modified ⇔
//! valid + dirty, Exclusive ⇔ valid + clean), so single-core runs are
//! byte-identical to the pre-MESI model. A multi-core
//! [`crate::MultiMachine`] keeps the private L1s coherent by calling the
//! snoop entry points ([`Cache::snoop_read`], [`Cache::snoop_invalidate`])
//! on every other core's cache before an off-chip access is served.

use ftspm_mem::{EnergyAccount, RegionGeometry, TechParams, Technology};

use crate::stats::DeviceStats;

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_cycles: u32,
}

impl Default for CacheConfig {
    /// The paper's L1 configuration: 8 KiB, and typical embedded
    /// parameters for the rest (32-byte lines, 4-way, 1-cycle hits).
    fn default() -> Self {
        Self {
            capacity_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_cycles: 1,
        }
    }
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Words per line.
    pub fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }
}

/// MESI coherence state of one cache line.
///
/// `Invalid` doubles as "not present"; `Modified` doubles as the old
/// `dirty` flag (it is the only state that writes back on eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceState {
    /// The only copy, locally written; must write back on eviction.
    Modified,
    /// The only copy, clean.
    Exclusive,
    /// A clean copy that other caches may also hold.
    Shared,
    /// No copy.
    #[default]
    Invalid,
}

/// What a snoop did to a remote cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SnoopResult {
    /// The remote cache held a valid copy of the line.
    pub had_copy: bool,
    /// Words the remote cache flushed to DRAM (its copy was Modified).
    pub writeback_words: u32,
    /// The snoop invalidated the remote copy.
    pub invalidated: bool,
    /// The snoop downgraded a Modified/Exclusive copy to Shared.
    pub downgraded: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    state: CoherenceState,
    tag: u32,
    lru: u64,
}

impl Line {
    fn valid(&self) -> bool {
        self.state != CoherenceState::Invalid
    }

    fn dirty(&self) -> bool {
        self.state == CoherenceState::Modified
    }
}

/// What one cache access did, as reported to the machine for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Words to fetch from DRAM on a miss (one line), 0 on a hit.
    pub fill_words: u32,
    /// Words to write back to DRAM first (dirty eviction), 0 otherwise.
    pub writeback_words: u32,
}

/// A set-associative, write-back, write-allocate cache (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>, // sets * ways
    tick: u64,
    stats: DeviceStats,
    energy: EnergyAccount,
    params: TechParams,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways, non-power-of-
    /// two sets or line size).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "cache must have sets and ways");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size power of two"
        );
        Self {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            tick: 0,
            stats: DeviceStats::default(),
            energy: EnergyAccount::new(),
            params: Technology::SramUnprotected.params_40nm(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Splits a byte address into `(set base index, tag)`.
    fn locate(&self, addr: u32) -> (usize, u32) {
        let line_addr = addr / self.config.line_bytes;
        let set = line_addr & (self.config.sets() - 1);
        let tag = line_addr / self.config.sets();
        ((set * self.config.ways) as usize, tag)
    }

    /// Performs one access at byte address `addr` (single-core entry: a
    /// miss fills Exclusive, exactly the old valid+clean encoding).
    #[cfg(test)]
    pub(crate) fn access(&mut self, addr: u32, is_write: bool) -> CacheAccess {
        self.access_with_hint(addr, is_write, false)
    }

    /// Performs one access; `shared_hint` marks whether another core's
    /// cache still holds a copy of the line (a read miss then fills
    /// Shared instead of Exclusive). Timing, stats and energy are
    /// identical for either hint value.
    pub(crate) fn access_with_hint(
        &mut self,
        addr: u32,
        is_write: bool,
        shared_hint: bool,
    ) -> CacheAccess {
        self.tick += 1;
        let (base, tag) = self.locate(addr);
        let ways = &mut self.lines[base..base + self.config.ways as usize];

        let geometry = RegionGeometry::from_bytes(self.config.capacity_bytes);
        if is_write {
            self.stats.writes += 1;
            self.energy.add_write(self.params.write_energy_pj(geometry));
        } else {
            self.stats.reads += 1;
            self.energy.add_read(self.params.read_energy_pj(geometry));
        }

        // Hit?
        if let Some(line) = ways.iter_mut().find(|l| l.valid() && l.tag == tag) {
            line.lru = self.tick;
            if is_write {
                // S/E → M upgrade; the machine has already invalidated
                // remote sharers before delegating the write here.
                line.state = CoherenceState::Modified;
            }
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                fill_words: 0,
                writeback_words: 0,
            };
        }

        // Miss: evict LRU way.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid() { l.lru } else { 0 })
            .expect("at least one way");
        let writeback_words = if victim.dirty() {
            self.stats.writebacks += 1;
            self.config.line_words()
        } else {
            0
        };
        let state = if is_write {
            CoherenceState::Modified
        } else if shared_hint {
            CoherenceState::Shared
        } else {
            CoherenceState::Exclusive
        };
        *victim = Line {
            state,
            tag,
            lru: self.tick,
        };
        CacheAccess {
            hit: false,
            fill_words: self.config.line_words(),
            writeback_words,
        }
    }

    /// Bus-side probe: the coherence state of the line holding `addr`.
    /// Does not touch LRU, stats, or energy.
    pub fn probe_state(&self, addr: u32) -> CoherenceState {
        let (base, tag) = self.locate(addr);
        self.lines[base..base + self.config.ways as usize]
            .iter()
            .find(|l| l.valid() && l.tag == tag)
            .map_or(CoherenceState::Invalid, |l| l.state)
    }

    /// Remote read snoop: another core wants a clean copy of the line
    /// holding `addr`. A Modified copy flushes (caller charges the DRAM
    /// write) and every valid copy downgrades to Shared. Bus-side: no
    /// LRU/stat/energy perturbation.
    pub(crate) fn snoop_read(&mut self, addr: u32) -> SnoopResult {
        let (base, tag) = self.locate(addr);
        let Some(line) = self.lines[base..base + self.config.ways as usize]
            .iter_mut()
            .find(|l| l.valid() && l.tag == tag)
        else {
            return SnoopResult::default();
        };
        let mut r = SnoopResult {
            had_copy: true,
            ..SnoopResult::default()
        };
        if line.dirty() {
            r.writeback_words = self.config.line_words();
        }
        if matches!(
            line.state,
            CoherenceState::Modified | CoherenceState::Exclusive
        ) {
            r.downgraded = true;
        }
        line.state = CoherenceState::Shared;
        r
    }

    /// Remote write snoop: another core wants exclusive ownership of the
    /// line holding `addr`. A Modified copy flushes (caller charges the
    /// DRAM write); every valid copy invalidates. Bus-side: no
    /// LRU/stat/energy perturbation.
    pub(crate) fn snoop_invalidate(&mut self, addr: u32) -> SnoopResult {
        let (base, tag) = self.locate(addr);
        let Some(line) = self.lines[base..base + self.config.ways as usize]
            .iter_mut()
            .find(|l| l.valid() && l.tag == tag)
        else {
            return SnoopResult::default();
        };
        let mut r = SnoopResult {
            had_copy: true,
            invalidated: true,
            ..SnoopResult::default()
        };
        if line.dirty() {
            r.writeback_words = self.config.line_words();
        }
        line.state = CoherenceState::Invalid;
        r
    }

    /// Every valid line as `(line byte address, state)`, ascending by
    /// address — the litmus suite sweeps this for the SWMR invariant.
    pub fn valid_lines(&self) -> Vec<(u32, CoherenceState)> {
        let sets = self.config.sets();
        let mut out: Vec<(u32, CoherenceState)> = self
            .lines
            .chunks(self.config.ways as usize)
            .enumerate()
            .flat_map(|(set, ways)| {
                ways.iter().filter(|l| l.valid()).map(move |l| {
                    let line_addr = l.tag * sets + set as u32;
                    (line_addr * self.config.line_bytes, l.state)
                })
            })
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Hit latency in cycles.
    pub fn hit_cycles(&self) -> u32 {
        self.config.hit_cycles
    }

    /// Access statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    pub(crate) fn energy_mut(&mut self) -> &mut EnergyAccount {
        &mut self.energy
    }

    /// Leakage power of the cache array, mW.
    pub fn leakage_mw(&self) -> f64 {
        self.params
            .leakage_mw(RegionGeometry::from_bytes(self.config.capacity_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::default());
        let a = c.access(0x1000, false);
        assert!(!a.hit);
        assert_eq!(a.fill_words, 8);
        let b = c.access(0x1004, false);
        assert!(b.hit, "same line must hit");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = CacheConfig {
            capacity_bytes: 128,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        }; // 4 sets, direct-mapped: addresses 128 apart collide
        let mut c = Cache::new(cfg);
        c.access(0, true); // miss, dirty
        let ev = c.access(128, false); // same set, evicts dirty line
        assert!(!ev.hit);
        assert_eq!(ev.writeback_words, 8);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let cfg = CacheConfig {
            capacity_bytes: 64,
            line_bytes: 32,
            ways: 2,
            hit_cycles: 1,
        }; // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.access(0, false); // A
        c.access(32, false); // B
        c.access(0, false); // touch A -> B is LRU
        c.access(64, false); // C evicts B
        assert!(c.access(0, false).hit, "A must still be cached");
        assert!(!c.access(32, false).hit, "B must have been evicted");
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let cfg = CacheConfig {
            capacity_bytes: 32,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        c.access(0, false);
        let ev = c.access(64, false);
        assert_eq!(ev.writeback_words, 0);
    }

    #[test]
    fn mesi_states_track_the_old_valid_dirty_pair() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0x100, false);
        assert_eq!(c.probe_state(0x100), CoherenceState::Exclusive);
        c.access(0x100, true);
        assert_eq!(c.probe_state(0x100), CoherenceState::Modified);
        c.access(0x200, true);
        assert_eq!(c.probe_state(0x200), CoherenceState::Modified);
        assert_eq!(c.probe_state(0x300), CoherenceState::Invalid);
    }

    #[test]
    fn shared_hint_fills_shared() {
        let mut c = Cache::new(CacheConfig::default());
        c.access_with_hint(0x40, false, true);
        assert_eq!(c.probe_state(0x40), CoherenceState::Shared);
        // A write upgrades the shared copy to Modified.
        c.access_with_hint(0x40, true, true);
        assert_eq!(c.probe_state(0x40), CoherenceState::Modified);
    }

    #[test]
    fn snoop_read_downgrades_and_flushes_modified() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0x80, true); // Modified
        let r = c.snoop_read(0x80);
        assert!(r.had_copy && r.downgraded);
        assert_eq!(r.writeback_words, 8);
        assert_eq!(c.probe_state(0x80), CoherenceState::Shared);
        // A shared line then evicts clean.
        let stats_before = c.stats().writebacks;
        let mut c2 = c.clone();
        let _ = c2.snoop_invalidate(0x80);
        assert_eq!(c2.probe_state(0x80), CoherenceState::Invalid);
        assert_eq!(c.stats().writebacks, stats_before, "snoops do not count");
    }

    #[test]
    fn snoop_invalidate_removes_every_copy() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0x80, false); // Exclusive
        let r = c.snoop_invalidate(0x80);
        assert!(r.had_copy && r.invalidated);
        assert_eq!(r.writeback_words, 0, "clean copies flush nothing");
        assert_eq!(c.probe_state(0x80), CoherenceState::Invalid);
        assert!(!c.snoop_invalidate(0x80).had_copy);
    }

    #[test]
    fn valid_lines_reconstructs_addresses() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0x1000, false);
        c.access(0x2020, true);
        let lines = c.valid_lines();
        assert_eq!(
            lines,
            vec![
                (0x1000, CoherenceState::Exclusive),
                (0x2020, CoherenceState::Modified),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 96,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        });
    }
}
