//! Set-associative write-back L1 cache model.
//!
//! The caches serve blocks the mapping left off-chip (the paper's Table IV
//! gives both baselines and FTSPM an 8 KiB unprotected-SRAM L1 I-cache and
//! D-cache). The model tracks real tags with LRU replacement and
//! write-back/write-allocate semantics; data values are kept coherent in
//! the DRAM home copy, so the cache only accounts timing and energy.

use ftspm_mem::{EnergyAccount, RegionGeometry, TechParams, Technology};

use crate::stats::DeviceStats;

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_cycles: u32,
}

impl Default for CacheConfig {
    /// The paper's L1 configuration: 8 KiB, and typical embedded
    /// parameters for the rest (32-byte lines, 4-way, 1-cycle hits).
    fn default() -> Self {
        Self {
            capacity_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_cycles: 1,
        }
    }
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Words per line.
    pub fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    lru: u64,
}

/// What one cache access did, as reported to the machine for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Words to fetch from DRAM on a miss (one line), 0 on a hit.
    pub fill_words: u32,
    /// Words to write back to DRAM first (dirty eviction), 0 otherwise.
    pub writeback_words: u32,
}

/// A set-associative, write-back, write-allocate cache (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>, // sets * ways
    tick: u64,
    stats: DeviceStats,
    energy: EnergyAccount,
    params: TechParams,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways, non-power-of-
    /// two sets or line size).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "cache must have sets and ways");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size power of two"
        );
        Self {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            tick: 0,
            stats: DeviceStats::default(),
            energy: EnergyAccount::new(),
            params: Technology::SramUnprotected.params_40nm(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access at byte address `addr`.
    pub(crate) fn access(&mut self, addr: u32, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes;
        let set = line_addr & (self.config.sets() - 1);
        let tag = line_addr / self.config.sets();
        let base = (set * self.config.ways) as usize;
        let ways = &mut self.lines[base..base + self.config.ways as usize];

        let geometry = RegionGeometry::from_bytes(self.config.capacity_bytes);
        if is_write {
            self.stats.writes += 1;
            self.energy.add_write(self.params.write_energy_pj(geometry));
        } else {
            self.stats.reads += 1;
            self.energy.add_read(self.params.read_energy_pj(geometry));
        }

        // Hit?
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                fill_words: 0,
                writeback_words: 0,
            };
        }

        // Miss: evict LRU way.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("at least one way");
        let writeback_words = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            self.config.line_words()
        } else {
            0
        };
        *victim = Line {
            valid: true,
            dirty: is_write,
            tag,
            lru: self.tick,
        };
        CacheAccess {
            hit: false,
            fill_words: self.config.line_words(),
            writeback_words,
        }
    }

    /// Hit latency in cycles.
    pub fn hit_cycles(&self) -> u32 {
        self.config.hit_cycles
    }

    /// Access statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    pub(crate) fn energy_mut(&mut self) -> &mut EnergyAccount {
        &mut self.energy
    }

    /// Leakage power of the cache array, mW.
    pub fn leakage_mw(&self) -> f64 {
        self.params
            .leakage_mw(RegionGeometry::from_bytes(self.config.capacity_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::default());
        let a = c.access(0x1000, false);
        assert!(!a.hit);
        assert_eq!(a.fill_words, 8);
        let b = c.access(0x1004, false);
        assert!(b.hit, "same line must hit");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = CacheConfig {
            capacity_bytes: 128,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        }; // 4 sets, direct-mapped: addresses 128 apart collide
        let mut c = Cache::new(cfg);
        c.access(0, true); // miss, dirty
        let ev = c.access(128, false); // same set, evicts dirty line
        assert!(!ev.hit);
        assert_eq!(ev.writeback_words, 8);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let cfg = CacheConfig {
            capacity_bytes: 64,
            line_bytes: 32,
            ways: 2,
            hit_cycles: 1,
        }; // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.access(0, false); // A
        c.access(32, false); // B
        c.access(0, false); // touch A -> B is LRU
        c.access(64, false); // C evicts B
        assert!(c.access(0, false).hit, "A must still be cached");
        assert!(!c.access(32, false).hit, "B must have been evicted");
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let cfg = CacheConfig {
            capacity_bytes: 32,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        c.access(0, false);
        let ev = c.access(64, false);
        assert_eq!(ev.writeback_words, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 96,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
        });
    }
}
