//! Off-chip DRAM model.

use ftspm_mem::EnergyAccount;

use crate::stats::DeviceStats;
use crate::{BlockId, Program};

/// Timing/energy parameters of the off-chip memory.
///
/// A simple burst model: the first word of a transfer pays the full
/// access latency, each further sequential word one bus cycle. Values are
/// typical for a 400 MHz embedded SoC with LP-SDRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Latency of the first word of a transfer, in cycles.
    pub first_word_cycles: u32,
    /// Latency of each subsequent word of a burst, in cycles.
    pub per_word_cycles: u32,
    /// Dynamic energy per word read, pJ (off-chip I/O included).
    pub read_energy_pj: f64,
    /// Dynamic energy per word written, pJ.
    pub write_energy_pj: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            first_word_cycles: 25,
            per_word_cycles: 2,
            read_energy_pj: 120.0,
            write_energy_pj: 120.0,
        }
    }
}

/// Off-chip memory: home storage for every program block.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    storage: Vec<Vec<u8>>,
    stats: DeviceStats,
    energy: EnergyAccount,
}

impl Dram {
    /// Allocates home storage (zero-initialised) for every block of
    /// `program`.
    pub fn new(config: DramConfig, program: &Program) -> Self {
        Self {
            config,
            storage: program
                .blocks()
                .iter()
                .map(|b| vec![0; b.size_bytes() as usize])
                .collect(),
            stats: DeviceStats::default(),
            energy: EnergyAccount::new(),
        }
    }

    /// The configured timing/energy parameters.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Cycle cost of an aligned burst of `words` words.
    pub fn burst_cycles(&self, words: u32) -> u32 {
        if words == 0 {
            return 0;
        }
        self.config.first_word_cycles + (words - 1) * self.config.per_word_cycles
    }

    /// Reads one word of a block's home copy, charging a full first-word
    /// latency (a non-burst random access).
    pub fn read_word(&mut self, block: BlockId, offset: u32) -> (u32, u32) {
        let v = self.peek_word(block, offset);
        self.stats.reads += 1;
        self.stats.read_cycles += u64::from(self.config.first_word_cycles);
        self.energy.add_read(self.config.read_energy_pj);
        (v, self.config.first_word_cycles)
    }

    /// Writes one word of a block's home copy (non-burst).
    pub fn write_word(&mut self, block: BlockId, offset: u32, value: u32) -> u32 {
        self.poke_word(block, offset, value);
        self.stats.writes += 1;
        self.stats.write_cycles += u64::from(self.config.first_word_cycles);
        self.energy.add_write(self.config.write_energy_pj);
        self.config.first_word_cycles
    }

    /// Reads a burst of `words` words starting at `offset`, charging burst
    /// timing/energy; the values are appended to `out`.
    pub fn read_burst(
        &mut self,
        block: BlockId,
        offset: u32,
        words: u32,
        out: &mut Vec<u32>,
    ) -> u32 {
        for i in 0..words {
            out.push(self.peek_word(block, offset + i * 4));
            self.energy.add_read(self.config.read_energy_pj);
        }
        self.stats.reads += u64::from(words);
        let cycles = self.burst_cycles(words);
        self.stats.read_cycles += u64::from(cycles);
        cycles
    }

    /// Writes a burst of words starting at `offset`.
    pub fn write_burst(&mut self, block: BlockId, offset: u32, values: &[u32]) -> u32 {
        for (i, v) in values.iter().enumerate() {
            self.poke_word(block, offset + (i as u32) * 4, *v);
            self.energy.add_write(self.config.write_energy_pj);
        }
        self.stats.writes += values.len() as u64;
        let cycles = self.burst_cycles(values.len() as u32);
        self.stats.write_cycles += u64::from(cycles);
        cycles
    }

    /// Charges the timing/energy/stats of a burst read of `words` words
    /// without moving data (cache line fills keep values coherent in the
    /// home copy, so only the cost matters); returns the cycle cost.
    pub fn charge_burst_read(&mut self, words: u32) -> u32 {
        self.stats.reads += u64::from(words);
        self.energy
            .add_reads(u64::from(words), self.config.read_energy_pj);
        let cycles = self.burst_cycles(words);
        self.stats.read_cycles += u64::from(cycles);
        cycles
    }

    /// Charges a burst write of `words` words without moving data; returns
    /// the cycle cost.
    pub fn charge_burst_write(&mut self, words: u32) -> u32 {
        self.stats.writes += u64::from(words);
        for _ in 0..words {
            self.energy.add_write(self.config.write_energy_pj);
        }
        let cycles = self.burst_cycles(words);
        self.stats.write_cycles += u64::from(cycles);
        cycles
    }

    /// Value access without timing/energy (used by the machine to keep
    /// cacheable data coherent and by tests to inspect memory).
    pub fn peek_word(&self, block: BlockId, offset: u32) -> u32 {
        let s = &self.storage[block.index()];
        let i = offset as usize;
        u32::from_le_bytes(s[i..i + 4].try_into().expect("aligned word"))
    }

    /// Value mutation without timing/energy (initialising input data).
    pub fn poke_word(&mut self, block: BlockId, offset: u32, value: u32) {
        let s = &mut self.storage[block.index()];
        let i = offset as usize;
        s[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Access statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.data("A", 64);
        b.data("B", 64);
        b.build()
    }

    #[test]
    fn words_roundtrip_per_block() {
        let p = program();
        let mut d = Dram::new(DramConfig::default(), &p);
        d.write_word(BlockId(0), 0, 11);
        d.write_word(BlockId(1), 0, 22);
        assert_eq!(d.read_word(BlockId(0), 0).0, 11);
        assert_eq!(d.read_word(BlockId(1), 0).0, 22);
    }

    #[test]
    fn burst_timing() {
        let p = program();
        let d = Dram::new(DramConfig::default(), &p);
        assert_eq!(d.burst_cycles(0), 0);
        assert_eq!(d.burst_cycles(1), 25);
        assert_eq!(d.burst_cycles(8), 25 + 7 * 2);
    }

    #[test]
    fn bursts_move_data_and_charge_energy() {
        let p = program();
        let mut d = Dram::new(DramConfig::default(), &p);
        d.write_burst(BlockId(0), 0, &[1, 2, 3, 4]);
        let mut out = Vec::new();
        let cycles = d.read_burst(BlockId(0), 0, 4, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(cycles, 25 + 3 * 2);
        let e = d.energy().breakdown();
        assert_eq!((e.reads, e.writes), (4, 4));
    }

    #[test]
    fn peek_poke_do_not_touch_stats() {
        let p = program();
        let mut d = Dram::new(DramConfig::default(), &p);
        d.poke_word(BlockId(0), 8, 99);
        assert_eq!(d.peek_word(BlockId(0), 8), 99);
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.stats().writes, 0);
    }
}
