//! Block-structured program model.
//!
//! The FTSPM tool-flow partitions an application into *program blocks*:
//! code blocks (functions, in the paper's coarse-grained mode), data
//! blocks (arrays), and the stack. Profiling, the MDA mapping algorithm,
//! and the reliability model all operate at block granularity.

/// Identifies one block of a [`Program`]. Indexes are stable and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// Creates a block id from a dense index.
    ///
    /// Prefer obtaining ids from [`Program::find`] or [`Program::iter`];
    /// this constructor exists for synthetic fixtures (e.g. building a
    /// profile by hand in tests) and must match the program it is used
    /// with.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The dense index of this block within its program.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Whether a block holds instructions or data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Instruction block (a function): mapped to the instruction SPM.
    Code,
    /// Data block (an array, or the stack): mapped to the data SPM.
    Data,
}

/// Static description of one program block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    pub(crate) name: String,
    pub(crate) kind: BlockKind,
    pub(crate) size_bytes: u32,
    /// Stack frame bytes pushed when this code block is entered.
    pub(crate) frame_bytes: u32,
    /// Registers spilled to the stack on entry (words written on call,
    /// read back on return).
    pub(crate) spill_words: u32,
    /// Base address of the block's home copy in off-chip memory.
    pub(crate) dram_base: u32,
}

impl BlockSpec {
    /// Block name (unique within the program).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code or data.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Stack frame size in bytes (code blocks only; 0 for data).
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// Home base address in off-chip memory.
    pub fn dram_base(&self) -> u32 {
        self.dram_base
    }
}

/// A complete block-structured program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    blocks: Vec<BlockSpec>,
    stack: Option<BlockId>,
}

impl Program {
    /// Starts building a program with the given name.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            blocks: Vec::new(),
            stack: None,
            next_base: 0x1000_0000,
        }
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All blocks, in declaration order.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The spec of one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BlockSpec {
        &self.blocks[id.0]
    }

    /// The dedicated stack block, if one was declared.
    pub fn stack_block(&self) -> Option<BlockId> {
        self.stack
    }

    /// Iterator over `(BlockId, &BlockSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BlockSpec)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Looks a block up by name.
    pub fn find(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(BlockId)
    }

    /// IDs of all code blocks.
    pub fn code_blocks(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| b.kind == BlockKind::Code)
            .map(|(id, _)| id)
            .collect()
    }

    /// IDs of all data blocks (including the stack block).
    pub fn data_blocks(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| b.kind == BlockKind::Data)
            .map(|(id, _)| id)
            .collect()
    }
}

/// Builder for [`Program`]. Blocks are laid out sequentially in off-chip
/// memory at 64-byte-aligned base addresses.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<BlockSpec>,
    stack: Option<BlockId>,
    next_base: u32,
}

impl ProgramBuilder {
    fn push(&mut self, spec: BlockSpec) -> BlockId {
        let id = BlockId(self.blocks.len());
        assert!(
            self.blocks.iter().all(|b| b.name != spec.name),
            "duplicate block name {:?}",
            spec.name
        );
        self.next_base = (self.next_base + spec.size_bytes + 63) & !63;
        self.blocks.push(spec);
        id
    }

    /// Declares a code block (a function) of `size_bytes` of instructions
    /// with a `frame_bytes` stack frame.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or the name repeats.
    pub fn code(&mut self, name: impl Into<String>, size_bytes: u32, frame_bytes: u32) -> BlockId {
        assert!(size_bytes > 0, "code block must have a non-zero size");
        assert_eq!(size_bytes % 4, 0, "code block size must be word-aligned");
        assert_eq!(frame_bytes % 4, 0, "stack frame must be word-aligned");
        let base = self.next_base;
        self.push(BlockSpec {
            name: name.into(),
            kind: BlockKind::Code,
            size_bytes,
            frame_bytes,
            spill_words: 1,
            dram_base: base,
        })
    }

    /// Declares a data block (an array) of `size_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or the name repeats.
    pub fn data(&mut self, name: impl Into<String>, size_bytes: u32) -> BlockId {
        assert!(size_bytes > 0, "data block must have a non-zero size");
        assert_eq!(size_bytes % 4, 0, "data block size must be word-aligned");
        let base = self.next_base;
        self.push(BlockSpec {
            name: name.into(),
            kind: BlockKind::Data,
            size_bytes,
            frame_bytes: 0,
            spill_words: 0,
            dram_base: base,
        })
    }

    /// Declares the dedicated stack block of `size_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if called twice or `size_bytes` is zero.
    pub fn stack(&mut self, size_bytes: u32) -> BlockId {
        assert!(self.stack.is_none(), "stack block already declared");
        let id = self.data("Stack", size_bytes);
        self.stack = Some(id);
        id
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            blocks: self.blocks,
            stack: self.stack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut b = Program::builder("p");
        b.code("Main", 2048, 64);
        b.code("Mul", 512, 32);
        b.data("Array1", 2048);
        b.stack(1024);
        b.build()
    }

    #[test]
    fn blocks_are_dense_and_findable() {
        let p = sample();
        assert_eq!(p.len(), 4);
        assert_eq!(p.find("Mul"), Some(BlockId(1)));
        assert_eq!(p.find("nope"), None);
        assert_eq!(p.block(BlockId(2)).name(), "Array1");
    }

    #[test]
    fn kinds_partition() {
        let p = sample();
        assert_eq!(p.code_blocks().len(), 2);
        assert_eq!(p.data_blocks().len(), 2); // Array1 + Stack
        assert_eq!(p.stack_block(), Some(BlockId(3)));
        assert_eq!(p.block(BlockId(3)).kind(), BlockKind::Data);
    }

    #[test]
    fn dram_bases_are_disjoint_and_aligned() {
        let p = sample();
        let mut ranges: Vec<(u32, u32)> = p
            .blocks()
            .iter()
            .map(|b| (b.dram_base(), b.dram_base() + b.size_bytes()))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks overlap in DRAM");
        }
        for b in p.blocks() {
            assert_eq!(b.dram_base() % 64, 0);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate block name")]
    fn duplicate_names_rejected() {
        let mut b = Program::builder("p");
        b.code("X", 16, 0);
        b.data("X", 16);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn two_stacks_rejected() {
        let mut b = Program::builder("p");
        b.stack(64);
        b.stack(64);
    }
}
