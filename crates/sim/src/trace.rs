//! Trace recording: a bounded event recorder for debugging and analysis.

use std::fmt::Write as _;

use crate::observer::{AccessEvent, Observer};
use crate::{AccessKind, BlockId, Target};

/// An [`Observer`] that records every event into memory, up to a bound.
///
/// Useful for debugging mappings, validating schedules against observed
/// DMA traffic, and exporting access traces for external analysis. Once
/// `capacity` events have been recorded further events are counted but
/// dropped, so a runaway trace cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    capacity: usize,
    events: Vec<AccessEvent>,
    dropped: u64,
    enters: Vec<(BlockId, u64)>,
    exits: Vec<(BlockId, u64)>,
}

impl TraceRecorder {
    /// Creates a recorder that keeps at most `capacity` access events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: Vec::new(),
            dropped: 0,
            enters: Vec::new(),
            exits: Vec::new(),
        }
    }

    /// The recorded access events, in order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Events that arrived after the recorder was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Block entries as `(block, cycle)`.
    pub fn enters(&self) -> &[(BlockId, u64)] {
        &self.enters
    }

    /// Block exits as `(block, cycle)`.
    pub fn exits(&self) -> &[(BlockId, u64)] {
        &self.exits
    }

    /// The DMA map-in events (block fills), in order.
    pub fn dma_fills(&self) -> Vec<&AccessEvent> {
        self.events
            .iter()
            .filter(|e| e.dma && e.kind == AccessKind::Write)
            .collect()
    }

    /// Renders the recorded accesses as CSV
    /// (`cycle,block,kind,target,offset,count,dma`).
    pub fn to_csv(&self, program: &crate::Program) -> String {
        let mut s = String::from("cycle,block,kind,target,offset,count,dma\n");
        for e in &self.events {
            let kind = match e.kind {
                AccessKind::Fetch => "fetch",
                AccessKind::Read => "read",
                AccessKind::Write => "write",
                AccessKind::Correction => "correction",
                AccessKind::DueTrap => "due_trap",
                AccessKind::SdcEscape => "sdc_escape",
                AccessKind::Scrub => "scrub",
            };
            let target = match e.target {
                Target::Region(r) => format!("region{}", r.index()),
                Target::ICache { hit } => format!("icache({})", if hit { "hit" } else { "miss" }),
                Target::DCache { hit } => format!("dcache({})", if hit { "hit" } else { "miss" }),
            };
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{}",
                e.cycle,
                program.block(e.block).name(),
                kind,
                target,
                e.offset,
                e.count,
                e.dma
            );
        }
        s
    }
}

impl Observer for TraceRecorder {
    fn on_access(&mut self, event: &AccessEvent) {
        if self.events.len() < self.capacity {
            self.events.push(*event);
        } else {
            self.dropped += 1;
        }
    }

    fn on_block_enter(&mut self, block: BlockId, cycle: u64) {
        self.enters.push((block, cycle));
    }

    fn on_block_exit(&mut self, block: BlockId, cycle: u64) {
        self.exits.push((block, cycle));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionId;

    fn event(cycle: u64, dma: bool, kind: AccessKind) -> AccessEvent {
        AccessEvent {
            cycle,
            block: BlockId::new(0),
            kind,
            target: Target::Region(RegionId::new(0)),
            offset: 0,
            dma,
            count: 1,
        }
    }

    #[test]
    fn records_until_full_then_counts_drops() {
        let mut t = TraceRecorder::new(2);
        for i in 0..5 {
            t.on_access(&event(i, false, AccessKind::Read));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn dma_fills_are_write_dma_events() {
        let mut t = TraceRecorder::new(10);
        t.on_access(&event(1, true, AccessKind::Write)); // fill
        t.on_access(&event(2, true, AccessKind::Read)); // writeback
        t.on_access(&event(3, false, AccessKind::Write)); // program write
        assert_eq!(t.dma_fills().len(), 1);
        assert_eq!(t.dma_fills()[0].cycle, 1);
    }

    #[test]
    fn csv_contains_block_names() {
        let mut b = crate::Program::builder("p");
        b.code("Main", 64, 0);
        let p = b.build();
        let mut t = TraceRecorder::new(10);
        t.on_access(&event(7, false, AccessKind::Fetch));
        let csv = t.to_csv(&p);
        assert!(csv.contains("7,Main,fetch,region0,0,1,false"), "{csv}");
    }

    #[test]
    fn enters_and_exits_recorded() {
        let mut t = TraceRecorder::new(1);
        t.on_block_enter(BlockId::new(3), 5);
        t.on_block_exit(BlockId::new(3), 9);
        assert_eq!(t.enters(), &[(BlockId::new(3), 5)]);
        assert_eq!(t.exits(), &[(BlockId::new(3), 9)]);
    }
}
