//! Block placement: which device serves each program block.

use crate::{BlockId, Program, SimError, SpmRegionSpec};

/// Identifies one scratchpad region of a machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) usize);

impl RegionId {
    /// Creates a region id from its dense index (the position of the
    /// region in the machine configuration's region list).
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Dense index of this region within the machine's SPM.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a block lives during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// The block stays in off-chip memory, served through the L1 caches.
    OffChip,
    /// The block is mapped into an SPM region at a fixed byte offset for
    /// the whole run (the paper's static approach).
    Spm {
        /// Target region.
        region: RegionId,
        /// Byte offset of the block within the region.
        offset: u32,
    },
    /// The block time-multiplexes the region with other dynamic blocks
    /// (the paper's §II *dynamic approach*): the machine allocates space
    /// on first access and evicts least-recently-used dynamic residents
    /// when the region overflows, writing dirty victims back to off-chip
    /// memory.
    Dynamic {
        /// Target region.
        region: RegionId,
    },
}

impl Placement {
    /// The SPM region, if the block is SPM-mapped (statically or
    /// dynamically).
    pub fn region(self) -> Option<RegionId> {
        match self {
            Placement::Spm { region, .. } | Placement::Dynamic { region } => Some(region),
            Placement::OffChip => None,
        }
    }

    /// Whether the block time-multiplexes its region.
    pub fn is_dynamic(self) -> bool {
        matches!(self, Placement::Dynamic { .. })
    }
}

/// A complete block→device assignment for one program on one machine,
/// with a first-fit offset allocator per region.
///
/// This is the artifact the MDA mapping algorithm produces (its Table II)
/// and the machine consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    placements: Vec<Placement>,
    cursors: Vec<u32>,
    capacities: Vec<u32>,
}

impl PlacementMap {
    /// Creates an all-off-chip placement for `program` over the regions
    /// described by `regions`.
    pub fn new(program: &Program, regions: &[SpmRegionSpec]) -> Self {
        Self {
            placements: vec![Placement::OffChip; program.len()],
            cursors: vec![0; regions.len()],
            capacities: regions.iter().map(|r| r.geometry().bytes()).collect(),
        }
    }

    /// Number of regions this map allocates over.
    pub fn region_count(&self) -> usize {
        self.capacities.len()
    }

    /// Assigns `block` to `region`, allocating the next free offset.
    ///
    /// # Errors
    ///
    /// [`SimError::RegionFull`] if the block does not fit in the region's
    /// remaining space; [`SimError::UnknownRegion`] for a bad region id.
    pub fn place(
        &mut self,
        program: &Program,
        block: BlockId,
        region: RegionId,
    ) -> Result<(), SimError> {
        let idx = region.0;
        if idx >= self.capacities.len() {
            return Err(SimError::UnknownRegion(region));
        }
        let size = program.block(block).size_bytes();
        let free = self.capacities[idx] - self.cursors[idx];
        if size > free {
            return Err(SimError::RegionFull {
                region,
                block,
                requested: size,
                available: free,
            });
        }
        // Un-place first if the block was already somewhere (idempotent
        // re-planning); note first-fit never reclaims holes — MDA plans
        // placements once, so fragmentation cannot arise.
        self.placements[block.index()] = Placement::Spm {
            region,
            offset: self.cursors[idx],
        };
        self.cursors[idx] += size;
        Ok(())
    }

    /// Leaves (or returns) `block` off-chip.
    pub fn place_off_chip(&mut self, block: BlockId) {
        self.placements[block.index()] = Placement::OffChip;
    }

    /// Assigns `block` to time-multiplex `region` (no space is reserved —
    /// the machine allocates and evicts at run time).
    ///
    /// # Errors
    ///
    /// [`SimError::RegionFull`] if the block could never fit the region
    /// even when empty (such a block can never become resident);
    /// [`SimError::UnknownRegion`] for a bad region id.
    pub fn place_dynamic(
        &mut self,
        program: &Program,
        block: BlockId,
        region: RegionId,
    ) -> Result<(), SimError> {
        let idx = region.0;
        if idx >= self.capacities.len() {
            return Err(SimError::UnknownRegion(region));
        }
        let size = program.block(block).size_bytes();
        // Dynamic blocks share the space *not* reserved by static
        // placements in the same region.
        let shareable = self.capacities[idx] - self.cursors[idx];
        if size > shareable {
            return Err(SimError::RegionFull {
                region,
                block,
                requested: size,
                available: shareable,
            });
        }
        self.placements[block.index()] = Placement::Dynamic { region };
        Ok(())
    }

    /// Bytes of `region` not reserved by static placements (the pool
    /// dynamic blocks multiplex).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn dynamic_pool_base(&self, region: RegionId) -> u32 {
        self.cursors[region.0]
    }

    /// Capacity of `region` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn capacity(&self, region: RegionId) -> u32 {
        self.capacities[region.0]
    }

    /// The placement of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range for the program this map was
    /// built from.
    pub fn placement(&self, block: BlockId) -> Placement {
        self.placements[block.index()]
    }

    /// Bytes still free in `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn free_bytes(&self, region: RegionId) -> u32 {
        self.capacities[region.0] - self.cursors[region.0]
    }

    /// All blocks currently mapped to `region`.
    pub fn blocks_in(&self, region: RegionId) -> Vec<BlockId> {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.region() == Some(region))
            .map(|(i, _)| BlockId(i))
            .collect()
    }

    /// Iterator over `(BlockId, Placement)`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Placement)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, p)| (BlockId(i), *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, SpmRegionSpec};
    use ftspm_ecc::ProtectionScheme;
    use ftspm_mem::{RegionGeometry, Technology};

    fn regions() -> Vec<SpmRegionSpec> {
        vec![
            SpmRegionSpec::new(
                "stt",
                Technology::SttRam,
                ProtectionScheme::Immune,
                RegionGeometry::from_kib(4),
            ),
            SpmRegionSpec::new(
                "ecc",
                Technology::SramSecDed,
                ProtectionScheme::SecDed,
                RegionGeometry::from_kib(2),
            ),
        ]
    }

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.data("A", 2048);
        b.data("B", 2048);
        b.data("C", 2048);
        b.build()
    }

    #[test]
    fn first_fit_allocates_disjoint_offsets() {
        let p = program();
        let mut m = PlacementMap::new(&p, &regions());
        m.place(&p, BlockId(0), RegionId(0)).unwrap();
        m.place(&p, BlockId(1), RegionId(0)).unwrap();
        let (a, b) = (m.placement(BlockId(0)), m.placement(BlockId(1)));
        assert_eq!(
            a,
            Placement::Spm {
                region: RegionId(0),
                offset: 0
            }
        );
        assert_eq!(
            b,
            Placement::Spm {
                region: RegionId(0),
                offset: 2048
            }
        );
        assert_eq!(m.free_bytes(RegionId(0)), 0);
    }

    #[test]
    fn overflow_is_an_error() {
        let p = program();
        let mut m = PlacementMap::new(&p, &regions());
        m.place(&p, BlockId(0), RegionId(1)).unwrap();
        let err = m.place(&p, BlockId(1), RegionId(1)).unwrap_err();
        assert!(matches!(err, SimError::RegionFull { .. }));
        // The failed block stays off-chip.
        assert_eq!(m.placement(BlockId(1)), Placement::OffChip);
    }

    #[test]
    fn unknown_region_is_an_error() {
        let p = program();
        let mut m = PlacementMap::new(&p, &regions());
        assert_eq!(
            m.place(&p, BlockId(0), RegionId(9)),
            Err(SimError::UnknownRegion(RegionId(9)))
        );
    }

    #[test]
    fn blocks_in_reports_membership() {
        let p = program();
        let mut m = PlacementMap::new(&p, &regions());
        m.place(&p, BlockId(0), RegionId(0)).unwrap();
        m.place(&p, BlockId(2), RegionId(0)).unwrap();
        assert_eq!(m.blocks_in(RegionId(0)), vec![BlockId(0), BlockId(2)]);
        assert!(m.blocks_in(RegionId(1)).is_empty());
    }
}
