//! # ftspm-sim — cycle-accurate embedded memory-hierarchy simulator
//!
//! This crate is the reproduction's substitute for **FaCSim**, the
//! cycle-accurate ARM9 simulator the FTSPM paper evaluates on. Every
//! number in the paper's evaluation (per-region read/write distributions,
//! cycle counts, dynamic/static energy, per-line write counts, block
//! residency intervals) is a function of the *memory access stream*, so
//! this simulator models exactly that, cycle by cycle:
//!
//! * a 32-bit in-order embedded core abstraction ([`Cpu`]) executing
//!   block-structured programs with a real call stack,
//! * split 8 KiB L1 instruction/data caches (set-associative, write-back,
//!   LRU) in front of an off-chip DRAM,
//! * a software-managed scratchpad composed of [`SpmRegion`]s with
//!   per-technology latency/energy ([`ftspm_mem`]) and per-line write
//!   counters (for the endurance model), and
//! * a DMA engine that transfers program blocks between DRAM and the SPM
//!   (the paper's SPM-mapping-instruction mechanism), lazily on first
//!   access.
//!
//! Programs address memory *block-relatively* — `(block, offset)` — and
//! the active [`PlacementMap`] decides which device serves each access.
//! This mirrors the paper's tool flow, where the mapper rewrites addresses
//! after deciding each block's home, and lets one workload run unmodified
//! on FTSPM and on both baselines.
//!
//! All stores are real: workloads read back the values they wrote, so
//! every kernel can self-check its output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cpu;
mod dram;
mod error;
mod fault;
mod machine;
mod multi;
mod observer;
mod placement;
mod program;
mod spm;
mod stats;
mod trace;

pub use cache::{Cache, CacheConfig, CoherenceState};
pub use cpu::{Cpu, CpuConfig, CpuOp, CpuState, TappedOp};
pub use dram::{Dram, DramConfig};
pub use error::SimError;
pub use fault::{FaultConfig, FaultStats, MarkTable};
pub use machine::{CoherenceStats, CoreFaultView, Machine, MachineConfig};
pub use multi::{MultiMachine, MAX_CORES};
pub use observer::{
    AccessEvent, AccessKind, NullObserver, Observer, QuarantineCause, QuarantineEvent, RemapEvent,
    Target,
};
pub use placement::{Placement, PlacementMap, RegionId};
pub use program::{BlockId, BlockKind, BlockSpec, Program, ProgramBuilder};
pub use spm::{SpmRegion, SpmRegionSpec};
pub use stats::{DeviceStats, MachineStats, RegionStats};
pub use trace::TraceRecorder;
