//! N-core machine: private MESI L1s over the shared hybrid SPM/DRAM.
//!
//! [`MultiMachine`] extends the single-core [`Machine`] to N hardware
//! threads without forking any of its device, fault, or placement logic:
//!
//! * **One shared backend.** There is exactly one `Machine` — one DRAM,
//!   one set of SPM regions, one fault subsystem, one placement map. The
//!   scratchpad side of the hierarchy is shared by construction, so a
//!   strike in a shared SPM block, a quarantine, or a demotion remap is
//!   observed by every core atomically (there is no per-core copy that
//!   could go stale).
//! * **Private L1s, MESI-coherent.** Each core owns an `(icache,
//!   dcache)` pair. The active core's pair sits in the machine's own
//!   cache slots; the rest are parked inside the machine's coherence
//!   hub, which snoops them on every off-chip access (remote write →
//!   invalidate, remote read → downgrade + dirty flush). See
//!   [`crate::CoherenceState`].
//! * **Deterministic by construction.** The multi-core simulation is
//!   *sequential*: cores interleave bounded steps under a scheduler that
//!   is a pure function of simulation state (see
//!   `ftspm-workloads::multicore::run_lockstep`), so a run is bit-for-bit
//!   identical at any `FTSPM_THREADS` — host threads only ever shard
//!   independent configurations, never one machine.
//!
//! A 1-core `MultiMachine` executes the exact same code path as a plain
//! `Machine` plus provably-inert hub hooks (every snoop loop iterates
//! zero parked caches), which the `multicore_differential` battery pins
//! byte-for-byte.

use crate::observer::Observer;
use crate::{
    Cache, CoherenceState, CoherenceStats, CoreFaultView, Cpu, CpuState, Machine, MachineConfig,
    MachineStats, PlacementMap, Program, SimError,
};

/// Cap on the core count: the obs registry exports per-core counters
/// under static names, and real embedded SPM SoCs are small.
pub const MAX_CORES: usize = 8;

/// An N-core machine: per-core CPUs with private coherent L1s over one
/// shared [`Machine`] backend.
#[derive(Debug)]
pub struct MultiMachine {
    machine: Machine,
    cpu_states: Vec<CpuState>,
    cores: usize,
}

impl MultiMachine {
    /// Builds an N-core machine for `program` under `placement`.
    ///
    /// Each core's stack pointer starts at `core * (stack_bytes / cores)`
    /// so the cores partition the program's single stack block into
    /// disjoint slices.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::new`] errors.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cores <= MAX_CORES`.
    pub fn new(
        config: MachineConfig,
        program: Program,
        placement: PlacementMap,
        cores: usize,
    ) -> Result<Self, SimError> {
        assert!(
            (1..=MAX_CORES).contains(&cores),
            "cores must be 1..={MAX_CORES}, got {cores}"
        );
        let mut machine = Machine::new(config, program, placement)?;
        machine.attach_coherence(cores);
        let stack_bytes = machine
            .program()
            .stack_block()
            .map_or(0, |b| machine.program().block(b).size_bytes());
        let slice = stack_bytes / cores as u32;
        let cpu_states = (0..cores)
            .map(|c| CpuState::with_stack_base(c as u32 * slice))
            .collect();
        Ok(Self {
            machine,
            cpu_states,
            cores,
        })
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The shared backend machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable backend access (e.g. to initialise workload inputs in
    /// DRAM before running).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Runs `f` with a [`Cpu`] executing as `core`: swaps the core's
    /// caches into the machine, restores its call stack and stack
    /// pointer, and parks both again afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn with_core<R>(
        &mut self,
        core: usize,
        observer: &mut dyn Observer,
        f: impl FnOnce(&mut Cpu<'_, '_>) -> R,
    ) -> R {
        assert!(core < self.cores, "core {core} out of range");
        self.machine.set_active_core(core);
        let mut cpu = Cpu::new(&mut self.machine, observer);
        cpu.swap_state(&mut self.cpu_states[core]);
        let out = f(&mut cpu);
        cpu.swap_state(&mut self.cpu_states[core]);
        out
    }

    /// `core`'s saved execution state (call depth, peak stack).
    pub fn cpu_state(&self, core: usize) -> &CpuState {
        &self.cpu_states[core]
    }

    /// `core`'s `(icache, dcache)` pair, whether live or parked — the
    /// litmus suite probes line states across cores through this.
    pub fn core_caches(&self, core: usize) -> (&Cache, &Cache) {
        self.machine.core_caches(core)
    }

    /// MESI state of the data-cache line holding `addr` on `core`.
    pub fn dcache_state(&self, core: usize, addr: u32) -> CoherenceState {
        self.machine.core_caches(core).1.probe_state(addr)
    }

    /// Bus-level coherence counters.
    pub fn coherence_stats(&self) -> CoherenceStats {
        self.machine
            .coherence_stats()
            .expect("MultiMachine always has a hub")
    }

    /// Per-core fault observation views, indexed by core.
    pub fn core_fault_views(&self) -> &[CoreFaultView] {
        self.machine.core_fault_views()
    }

    /// Finishes the shared machine (writebacks + leakage) and returns
    /// its statistics. Idempotent.
    pub fn finish(&mut self, observer: &mut dyn Observer) -> MachineStats {
        self.machine.finish(observer)
    }

    /// Consumes the wrapper, returning the backend machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use crate::{CacheConfig, DramConfig, SpmRegionSpec};
    use ftspm_ecc::ProtectionScheme;
    use ftspm_mem::{Clock, RegionGeometry, Technology};

    fn tiny_setup() -> (MachineConfig, Program, PlacementMap) {
        let mut b = Program::builder("multi-tiny");
        let code = b.code("code", 256, 16);
        let data = b.data("shared", 256);
        let _stack = b.stack(512);
        let program = b.build();
        let regions = vec![SpmRegionSpec::new(
            "spm",
            Technology::SramSecDed,
            ProtectionScheme::SecDed,
            RegionGeometry::from_kib(1),
        )];
        let mut placement = PlacementMap::new(&program, &regions);
        placement.place_off_chip(code);
        placement.place_off_chip(data);
        let config = MachineConfig {
            clock: Clock::default(),
            icache: CacheConfig::default(),
            dcache: CacheConfig::default(),
            dram: DramConfig::default(),
            regions,
            faults: None,
            deadline_cycles: None,
        };
        (config, program, placement)
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let (config, program, placement) = tiny_setup();
        let data = program.find("shared").unwrap();
        let mut mm = MultiMachine::new(config, program, placement, 2).unwrap();
        let mut obs = NullObserver;
        // Core 0 reads: fills Exclusive.
        mm.with_core(0, &mut obs, |cpu| cpu.read_u32(data, 0))
            .unwrap();
        // Core 1 reads the same word: both Shared.
        mm.with_core(1, &mut obs, |cpu| cpu.read_u32(data, 0))
            .unwrap();
        let home = mm.machine().program().block(data).dram_base();
        assert_eq!(mm.dcache_state(0, home), CoherenceState::Shared);
        assert_eq!(mm.dcache_state(1, home), CoherenceState::Shared);
        // Core 0 writes: core 1's copy must die.
        mm.with_core(0, &mut obs, |cpu| cpu.write_u32(data, 0, 7))
            .unwrap();
        assert_eq!(mm.dcache_state(0, home), CoherenceState::Modified);
        assert_eq!(mm.dcache_state(1, home), CoherenceState::Invalid);
        let s = mm.coherence_stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.shared_fills, 1);
        // Core 1 reads back the stored value through coherence.
        let v = mm
            .with_core(1, &mut obs, |cpu| cpu.read_u32(data, 0))
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn sharer_masks_track_program_accesses() {
        let (config, program, placement) = tiny_setup();
        let data = program.find("shared").unwrap();
        let mut mm = MultiMachine::new(config, program, placement, 3).unwrap();
        let mut obs = NullObserver;
        mm.with_core(0, &mut obs, |cpu| cpu.read_u32(data, 0))
            .unwrap();
        mm.with_core(2, &mut obs, |cpu| cpu.write_u32(data, 4, 1))
            .unwrap();
        assert_eq!(mm.machine().sharer_mask(data), 0b101);
    }

    #[test]
    #[should_panic(expected = "cores must be")]
    fn zero_cores_rejected() {
        let (config, program, placement) = tiny_setup();
        let _ = MultiMachine::new(config, program, placement, 0);
    }
}
