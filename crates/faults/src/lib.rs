//! # ftspm-faults — Monte-Carlo particle-strike injection
//!
//! The FTSPM paper computes its reliability numbers *analytically*
//! (equations (1)–(7)) from the published MBU size distribution. This
//! crate goes one step further and validates that model **empirically**:
//! it encodes real data words with the real codecs from `ftspm-ecc`,
//! flips real adjacent bit clusters sampled from the same distribution,
//! decodes, and classifies every outcome against ground truth.
//!
//! Two findings fall out (and are pinned by this crate's tests):
//!
//! * the **total vulnerability weight** (`P(SDC) + P(DUE)`) of every
//!   scheme matches the analytic model exactly — for SEC-DED, every
//!   multi-bit (≥2) strike is either detected or silently harmful, so
//!   the total is `P(≥2) = 0.38` either way;
//! * the paper's **SDC/DUE split is conservative**: equation (7) charges
//!   all ≥3-bit strikes to SDC, but a real extended-Hamming decoder
//!   *detects* a sizeable share of them (any ≥3-flip with an out-of-range
//!   or double-error syndrome trips the DUE trap instead of silently
//!   corrupting). Likewise parity (eq. (6)) detects all odd-weight
//!   clusters, not just single flips.
//!
//! Campaigns and scrub studies are **deterministically parallel**: the
//! event budget shards over a fixed [`CAMPAIGN_SHARDS`] SplitMix64-derived
//! RNG streams executed by `ftspm_testkit::par`, so the tallies are a
//! pure function of the arguments — bit-identical at every thread count
//! (the `FTSPM_THREADS` knob, or the `*_threads` variants).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod interleave;
mod live;
mod scrub;
mod strike;

pub use campaign::{
    run_campaign, run_campaign_threads, CampaignResult, RegionImage, CAMPAIGN_SHARDS,
};
pub use interleave::{run_campaign_interleaved, run_campaign_interleaved_threads};
pub use live::LiveInjector;
pub use scrub::{run_scrub_study, run_scrub_study_threads, ScrubResult};
pub use strike::{Strike, StrikeGenerator};
