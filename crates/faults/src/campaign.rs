//! Injection campaigns over protected memory images.
//!
//! Campaigns are **sharded**: the strike budget splits over a fixed
//! [`CAMPAIGN_SHARDS`] sub-campaigns, each with a SplitMix64-derived
//! per-shard RNG stream ([`ftspm_testkit::derive_seed`]), executed by the
//! deterministic parallel executor ([`ftspm_testkit::par`]) and merged in
//! shard order. Because the shard structure is fixed and the merge is a
//! field-wise sum, the result is a pure function of
//! `(image, mbu, strikes, seed)` — bit-identical at every thread count,
//! including 1.

use std::num::NonZeroUsize;

use ftspm_ecc::{DecodeOutcome, MbuDistribution, ParityWord, ProtectionScheme, HAMMING_32};
use ftspm_testkit::{derive_seed, par, Rng};

use crate::strike::StrikeGenerator;

/// Fixed number of RNG sub-streams a campaign splits into, independent
/// of the executing thread count. Part of the determinism contract:
/// changing this constant changes campaign tallies (it renames every
/// shard's stream), so it is fixed once per major version.
pub const CAMPAIGN_SHARDS: u32 = 16;

/// Splits `total` events into [`CAMPAIGN_SHARDS`] per-shard counts
/// (earlier shards absorb the remainder) with their derived seeds.
pub(crate) fn shard_plan(total: u64, seed: u64) -> Vec<(u64, u64)> {
    let shards = u64::from(CAMPAIGN_SHARDS);
    let (base, rem) = (total / shards, total % shards);
    (0..shards)
        .map(|i| (derive_seed(seed, i), base + u64::from(i < rem)))
        .collect()
}

/// Pre-encoded codewords of a [`RegionImage`]: encoding is a pure
/// function of the stored data, so campaigns compute it once per image
/// instead of once per strike (SEC-DED encode costs ~3× a decode).
pub(crate) struct EncodedImage {
    secded: Vec<u128>,
}

impl EncodedImage {
    pub(crate) fn new(image: &RegionImage) -> Self {
        let secded = if image.scheme() == ProtectionScheme::SecDed {
            image
                .words()
                .iter()
                .map(|&w| HAMMING_32.encode(u64::from(w)))
                .collect()
        } else {
            Vec::new()
        };
        Self { secded }
    }

    /// The cached SEC-DED codeword for `word` (SEC-DED images only).
    pub(crate) fn secded(&self, word: u32) -> u128 {
        self.secded[word as usize]
    }
}

/// A region's worth of data words to inject into.
#[derive(Debug, Clone)]
pub struct RegionImage {
    scheme: ProtectionScheme,
    words: Vec<u32>,
}

impl RegionImage {
    /// Wraps data words under a protection scheme.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn new(scheme: ProtectionScheme, words: Vec<u32>) -> Self {
        assert!(!words.is_empty(), "an image needs at least one word");
        Self { scheme, words }
    }

    /// A deterministic random image (for campaigns that do not care about
    /// specific contents).
    pub fn random(scheme: ProtectionScheme, words: u32, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self::new(scheme, (0..words).map(|_| rng.gen()).collect())
    }

    /// The protection scheme.
    pub fn scheme(&self) -> ProtectionScheme {
        self.scheme
    }

    /// The stored data words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Stored bits per codeword under this scheme.
    pub fn stored_bits(&self) -> u32 {
        match self.scheme {
            ProtectionScheme::None | ProtectionScheme::Immune => 32,
            ProtectionScheme::Parity => ParityWord::STORED_BITS,
            ProtectionScheme::SecDed => HAMMING_32.stored_bits(),
        }
    }
}

/// Aggregate outcome counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Strikes injected.
    pub strikes: u64,
    /// Silent data corruptions (wrong data consumed without a trap).
    pub sdc: u64,
    /// Detected-unrecoverable errors (trap raised).
    pub due: u64,
    /// Detected-and-corrected errors (data intact after decode).
    pub dre: u64,
    /// Strikes with no effect (immune cells).
    pub masked: u64,
    /// The subset of `sdc` where the decoder *claimed* a correction but
    /// produced wrong data (SEC-DED miscorrections on ≥3-bit clusters).
    pub miscorrected: u64,
}

impl CampaignResult {
    /// `count / strikes`, or 0.0 for an empty campaign (a campaign that
    /// injected nothing observed no failures — never NaN).
    fn rate(&self, count: u64) -> f64 {
        if self.strikes == 0 {
            0.0
        } else {
            count as f64 / self.strikes as f64
        }
    }

    /// Empirical P(SDC).
    pub fn sdc_rate(&self) -> f64 {
        self.rate(self.sdc)
    }

    /// Empirical P(DUE).
    pub fn due_rate(&self) -> f64 {
        self.rate(self.due)
    }

    /// Empirical P(DRE).
    pub fn dre_rate(&self) -> f64 {
        self.rate(self.dre)
    }

    /// Empirical vulnerability weight, `P(SDC) + P(DUE)` — the quantity
    /// the paper's equation (1) integrates over blocks.
    pub fn vulnerability_weight(&self) -> f64 {
        self.sdc_rate() + self.due_rate()
    }

    /// Accumulates another (shard) result into this one: every field is
    /// a count, so the merge is a field-wise sum and therefore
    /// order-independent — the sharded campaign still merges in shard
    /// order as part of the determinism contract.
    pub fn merge(&mut self, other: &CampaignResult) {
        self.strikes += other.strikes;
        self.sdc += other.sdc;
        self.due += other.due;
        self.dre += other.dre;
        self.masked += other.masked;
        self.miscorrected += other.miscorrected;
    }
}

/// Injects `strikes` particle strikes into `image`, decoding each struck
/// word with the real codec and classifying the outcome against ground
/// truth.
///
/// Each strike is independent (the word is restored afterwards),
/// modelling the paper's per-strike AVF question rather than error
/// accumulation. The campaign is sharded over [`CAMPAIGN_SHARDS`]
/// derived RNG streams and executed on [`par::thread_count`] threads;
/// see [`run_campaign_threads`] for the determinism contract.
pub fn run_campaign(
    image: &RegionImage,
    mbu: MbuDistribution,
    strikes: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign_threads(image, mbu, strikes, seed, par::thread_count())
}

/// [`run_campaign`] with an explicit thread count. The tally is a pure
/// function of `(image, mbu, strikes, seed)`: shard seeds and per-shard
/// strike budgets are fixed by the shard plan, and the ordered merge is
/// a sum — so every `threads` value (including 1) produces bit-identical
/// results.
pub fn run_campaign_threads(
    image: &RegionImage,
    mbu: MbuDistribution,
    strikes: u64,
    seed: u64,
    threads: NonZeroUsize,
) -> CampaignResult {
    let enc = EncodedImage::new(image);
    let parts = par::par_map_threads(threads, shard_plan(strikes, seed), |(shard_seed, n)| {
        campaign_shard(image, &enc, mbu, n, shard_seed)
    });
    let mut result = CampaignResult::default();
    for p in &parts {
        result.merge(p);
    }
    result
}

/// One sequential sub-campaign on its own RNG stream.
fn campaign_shard(
    image: &RegionImage,
    enc: &EncodedImage,
    mbu: MbuDistribution,
    strikes: u64,
    seed: u64,
) -> CampaignResult {
    let gen = StrikeGenerator::new(mbu);
    let mut rng = Rng::seed_from_u64(seed);
    let mut result = CampaignResult {
        strikes,
        ..Default::default()
    };
    let stored_bits = image.stored_bits();
    let words = image.words.len() as u32;
    for _ in 0..strikes {
        let strike = gen.sample(&mut rng, words, stored_bits);
        let data = image.words[strike.word as usize];
        match image.scheme {
            ProtectionScheme::Immune => result.masked += 1,
            ProtectionScheme::None => {
                // No code: flipped bits are consumed as-is.
                result.sdc += 1;
            }
            // Single-flip fast paths: parity detects every 1-bit error
            // and extended Hamming corrects every 1-bit error, whatever
            // the position — pinned against the real codec by the
            // `single_flip_fast_paths_match_the_codec` test below.
            ProtectionScheme::Parity if strike.size == 1 => result.due += 1,
            ProtectionScheme::SecDed if strike.size == 1 => result.dre += 1,
            ProtectionScheme::Parity => {
                let mut w = ParityWord::encode(data);
                for bit in strike.bits() {
                    w.flip_bit(bit);
                }
                let d = w.decode();
                match d.outcome {
                    DecodeOutcome::DetectedUncorrectable => result.due += 1,
                    _ if d.data == data => result.dre += 1, // cannot happen: flips change bits
                    _ => result.sdc += 1,
                }
            }
            ProtectionScheme::SecDed => {
                let mut w = enc.secded(strike.word);
                for bit in strike.bits() {
                    w = HAMMING_32.flip_bit(w, bit);
                }
                let d = HAMMING_32.decode(w);
                match d.outcome {
                    DecodeOutcome::DetectedUncorrectable => result.due += 1,
                    DecodeOutcome::Corrected { .. } | DecodeOutcome::Clean => {
                        if d.data == u64::from(data) {
                            result.dre += 1;
                        } else {
                            result.sdc += 1;
                            if matches!(d.outcome, DecodeOutcome::Corrected { .. }) {
                                result.miscorrected += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRIKES: u64 = 100_000;
    const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

    fn campaign(scheme: ProtectionScheme) -> CampaignResult {
        let image = RegionImage::random(scheme, 1024, 42);
        run_campaign(&image, MBU, STRIKES, 7)
    }

    #[test]
    fn outcome_counts_partition_strikes() {
        for scheme in ProtectionScheme::ALL {
            let r = campaign(scheme);
            assert_eq!(
                r.sdc + r.due + r.dre + r.masked,
                r.strikes,
                "{scheme:?} outcomes must partition"
            );
        }
    }

    #[test]
    fn immune_masks_everything() {
        let r = campaign(ProtectionScheme::Immune);
        assert_eq!(r.masked, STRIKES);
        assert_eq!(r.vulnerability_weight(), 0.0);
    }

    #[test]
    fn unprotected_is_all_sdc() {
        let r = campaign(ProtectionScheme::None);
        assert_eq!(r.sdc, STRIKES);
    }

    #[test]
    fn secded_vulnerability_weight_matches_analytic() {
        // Empirical SDC+DUE must equal the analytic P(>=2) = 0.38: every
        // single flip is corrected, everything else is harmful one way or
        // the other.
        let r = campaign(ProtectionScheme::SecDed);
        let analytic = ProtectionScheme::SecDed.vulnerability_weight(MBU);
        assert!(
            (r.vulnerability_weight() - analytic).abs() < 0.01,
            "empirical {} vs analytic {analytic}",
            r.vulnerability_weight()
        );
        // DRE rate = P(1 flip) = 0.62.
        assert!((r.dre_rate() - 0.62).abs() < 0.01, "DRE {}", r.dre_rate());
    }

    #[test]
    fn secded_sdc_split_is_conservative_in_the_paper() {
        // Equation (7) charges all >=3-flip strikes (13 %) to SDC; the
        // real decoder detects many of them, so empirical SDC < 0.13
        // while DUE > 0.25 — the paper's split is pessimistic on SDC.
        let r = campaign(ProtectionScheme::SecDed);
        let analytic_sdc = ProtectionScheme::SecDed.sdc_probability(MBU);
        assert!(
            r.sdc_rate() < analytic_sdc,
            "empirical SDC {} should undershoot analytic {analytic_sdc}",
            r.sdc_rate()
        );
        assert!(r.due_rate() > ProtectionScheme::SecDed.due_probability(MBU));
        // And some triple strikes really do miscorrect silently.
        assert!(r.miscorrected > 0, "miscorrections must occur");
    }

    #[test]
    fn parity_detects_all_odd_clusters() {
        // Analytic eq. (4): DUE = P(1) = 0.62. Empirically parity also
        // detects 3-flip (6 %) and odd-size tail clusters, so DUE >= 0.68.
        let r = campaign(ProtectionScheme::Parity);
        assert!(r.due_rate() > 0.66, "parity DUE {}", r.due_rate());
        // Total weight is 1.0 either way: nothing is ever corrected.
        assert!((r.vulnerability_weight() - 1.0).abs() < 1e-12);
        assert_eq!(r.dre, 0);
    }

    #[test]
    fn empty_campaign_rates_are_zero_not_nan() {
        let image = RegionImage::random(ProtectionScheme::SecDed, 64, 5);
        let r = run_campaign(&image, MBU, 0, 1);
        assert_eq!(r.strikes, 0);
        assert_eq!(r.sdc_rate(), 0.0);
        assert_eq!(r.due_rate(), 0.0);
        assert_eq!(r.dre_rate(), 0.0);
        assert_eq!(r.vulnerability_weight(), 0.0);
        // The defaulted struct (no campaign at all) behaves the same.
        let d = CampaignResult::default();
        assert_eq!(d.vulnerability_weight(), 0.0);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let image = RegionImage::random(ProtectionScheme::SecDed, 256, 1);
        let a = run_campaign(&image, MBU, 10_000, 99);
        let b = run_campaign(&image, MBU, 10_000, 99);
        assert_eq!(a, b);
        let c = run_campaign(&image, MBU, 10_000, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn single_flip_fast_paths_match_the_codec() {
        // The campaign loop classifies 1-bit strikes without decoding:
        // SEC-DED must correct and parity must detect *every* single
        // flip. Execute the real codec over every position of several
        // words to pin that claim.
        for data in [0u32, u32::MAX, 0xDEAD_BEEF, 0x0135_79BD] {
            for bit in 0..HAMMING_32.stored_bits() {
                let w = HAMMING_32.flip_bit(HAMMING_32.encode(u64::from(data)), bit);
                let d = HAMMING_32.decode(w);
                assert!(
                    matches!(d.outcome, DecodeOutcome::Corrected { .. }),
                    "secded bit {bit}"
                );
                assert_eq!(
                    d.data,
                    u64::from(data),
                    "secded bit {bit} corrects to truth"
                );
            }
            for bit in 0..ParityWord::STORED_BITS {
                let mut w = ParityWord::encode(data);
                w.flip_bit(bit);
                assert_eq!(
                    w.decode().outcome,
                    DecodeOutcome::DetectedUncorrectable,
                    "parity bit {bit}"
                );
            }
        }
    }

    #[test]
    fn shard_plan_partitions_the_strike_budget() {
        for total in [0u64, 1, 15, 16, 17, 100_000, 100_003] {
            let plan = shard_plan(total, 42);
            assert_eq!(plan.len(), CAMPAIGN_SHARDS as usize);
            assert_eq!(plan.iter().map(|&(_, n)| n).sum::<u64>(), total);
            // Budgets differ by at most one strike and seeds are unique.
            let min = plan.iter().map(|&(_, n)| n).min().expect("non-empty");
            let max = plan.iter().map(|&(_, n)| n).max().expect("non-empty");
            assert!(max - min <= 1);
            let mut seeds: Vec<u64> = plan.iter().map(|&(s, _)| s).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), CAMPAIGN_SHARDS as usize);
        }
    }

    #[test]
    fn merge_is_a_field_wise_sum() {
        let image = RegionImage::random(ProtectionScheme::SecDed, 256, 1);
        let a = run_campaign(&image, MBU, 10_000, 99);
        let b = run_campaign(&image, MBU, 10_000, 100);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.strikes, a.strikes + b.strikes);
        assert_eq!(m.sdc, a.sdc + b.sdc);
        assert_eq!(m.due, a.due + b.due);
        assert_eq!(m.dre, a.dre + b.dre);
        assert_eq!(m.masked, a.masked + b.masked);
        assert_eq!(m.miscorrected, a.miscorrected + b.miscorrected);
    }
}
