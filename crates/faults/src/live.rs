//! Live injection: a cycle-scheduled strike source for the running
//! machine.
//!
//! The campaign modules ([`crate::run_campaign`], [`crate::run_scrub_study`])
//! bombard *static* memory images; this module is the bridge to the
//! cycle-accurate simulator. A [`LiveInjector`] owns one seeded RNG and
//! turns it into a deterministic schedule of strike arrival cycles
//! (exponential inter-arrival times, the memoryless model behind the
//! paper's per-strike AVF question) plus the strike geometry itself
//! (reusing [`StrikeGenerator`] and the MBU size distribution).
//!
//! Everything the injector does is a pure function of `(seed, queries)`:
//! the same machine run with the same seed replays bit-for-bit, which is
//! what makes live recovery statistics reportable.

use ftspm_ecc::MbuDistribution;
use ftspm_testkit::Rng;

use crate::strike::{Strike, StrikeGenerator};

/// A deterministic, cycle-scheduled source of particle strikes.
///
/// Drive it with [`LiveInjector::strike_due`] as simulated time advances;
/// each `true` answer means one strike landed at or before the queried
/// cycle, and the caller then asks for the victim region
/// ([`LiveInjector::pick_weighted`]) and geometry
/// ([`LiveInjector::sample`]).
#[derive(Debug, Clone)]
pub struct LiveInjector {
    gen: StrikeGenerator,
    rng: Rng,
    mean_interval: f64,
    next_cycle: u64,
}

impl LiveInjector {
    /// Creates an injector whose strikes arrive as a Poisson process with
    /// the given mean inter-arrival time in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `mean_cycles_between_strikes` is not finite and ≥ 1.
    pub fn new(mbu: MbuDistribution, mean_cycles_between_strikes: f64, seed: u64) -> Self {
        assert!(
            mean_cycles_between_strikes.is_finite() && mean_cycles_between_strikes >= 1.0,
            "mean inter-arrival must be a finite cycle count >= 1, got {mean_cycles_between_strikes}"
        );
        let mut injector = Self {
            gen: StrikeGenerator::new(mbu),
            rng: Rng::seed_from_u64(seed),
            mean_interval: mean_cycles_between_strikes,
            next_cycle: 0,
        };
        injector.next_cycle = injector.draw_interval();
        injector
    }

    /// The MBU size distribution in use.
    pub fn mbu(&self) -> MbuDistribution {
        self.gen.mbu()
    }

    /// The cycle at which the next strike lands.
    pub fn next_cycle(&self) -> u64 {
        self.next_cycle
    }

    /// Whether a strike is due at or before `now`. Each `true` consumes
    /// that strike and schedules the next arrival, so call in a loop to
    /// drain every strike that landed since the last query.
    pub fn strike_due(&mut self, now: u64) -> bool {
        if self.next_cycle <= now {
            let dt = self.draw_interval();
            self.next_cycle = self.next_cycle.saturating_add(dt);
            true
        } else {
            false
        }
    }

    /// Samples the geometry of one strike against a region of `words`
    /// codewords storing `stored_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `stored_bits` is 0.
    pub fn sample(&mut self, words: u32, stored_bits: u32) -> Strike {
        self.gen.sample(&mut self.rng, words, stored_bits)
    }

    /// Picks an index with probability proportional to `weights` (used to
    /// spread strikes over regions by their physical word count).
    ///
    /// Contract for extreme weights: if the true sum exceeds `u64::MAX`,
    /// the draw saturates — it is taken from `[0, u64::MAX)` instead of
    /// `[0, sum)`. Buckets keep their relative order and every positive
    /// bucket up to the saturation point stays reachable; the bias this
    /// introduces is at most `sum - u64::MAX` out of `sum`, vanishing for
    /// realistic region word counts. The previous `iter().sum()` would
    /// panic in debug builds and silently wrap (skewing region selection)
    /// in release builds.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to 0.
    pub fn pick_weighted(&mut self, weights: &[u64]) -> usize {
        assert!(!weights.is_empty(), "weighted pick needs weights");
        let total = weights.iter().fold(0u64, |acc, &w| acc.saturating_add(w));
        assert!(total > 0, "weights must not all be zero");
        let mut x = self.rng.gen_range(0..total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Reached only under saturation round-off: charge the tail draw
        // to the last positive bucket, as the unsaturated walk would.
        weights
            .iter()
            .rposition(|&w| w > 0)
            .expect("total > 0 guarantees a positive bucket")
    }

    /// One exponential inter-arrival time, rounded up to a whole cycle.
    fn draw_interval(&mut self) -> u64 {
        let u = self.rng.gen_range(0.0..1.0);
        // u in [0, 1) => 1 - u in (0, 1] => -ln(1 - u) in [0, inf).
        let dt = (-(1.0 - u).ln() * self.mean_interval).ceil();
        (dt as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

    fn arrivals(seed: u64, horizon: u64) -> Vec<u64> {
        let mut inj = LiveInjector::new(MBU, 500.0, seed);
        let mut out = Vec::new();
        for now in (0..horizon).step_by(100) {
            while inj.strike_due(now) {
                out.push(now);
            }
        }
        out
    }

    #[test]
    fn schedule_replays_per_seed() {
        assert_eq!(arrivals(7, 100_000), arrivals(7, 100_000));
        assert_ne!(arrivals(7, 100_000), arrivals(8, 100_000));
    }

    #[test]
    fn mean_interval_is_roughly_honoured() {
        let mut inj = LiveInjector::new(MBU, 1_000.0, 3);
        let mut strikes = 0u64;
        let horizon = 2_000_000u64;
        for now in 0..horizon {
            while inj.strike_due(now) {
                strikes += 1;
            }
        }
        let mean = horizon as f64 / strikes as f64;
        assert!(
            (mean - 1_000.0).abs() < 100.0,
            "observed mean interval {mean}"
        );
    }

    #[test]
    fn strikes_never_arrive_early() {
        let mut inj = LiveInjector::new(MBU, 50.0, 11);
        for now in 0..10_000u64 {
            let next = inj.next_cycle();
            if inj.strike_due(now) {
                assert!(next <= now, "strike at {next} reported before {now}");
                assert!(inj.next_cycle() > next, "schedule must advance");
            }
        }
    }

    #[test]
    fn pick_weighted_survives_near_max_weights() {
        // Regression: the old `iter().sum::<u64>()` overflowed on weights
        // like these — a debug-build panic, a silent wrap (and skewed
        // region selection) in release. The checked sum saturates
        // instead, keeps every bucket reachable, and still never picks a
        // zero-weight bucket.
        let mut inj = LiveInjector::new(MBU, 10.0, 5);
        let weights = [u64::MAX - 10, 0, u64::MAX - 10, 5];
        let mut seen = [0u32; 4];
        for _ in 0..2_000 {
            seen[inj.pick_weighted(&weights)] += 1;
        }
        assert_eq!(seen[1], 0, "zero-weight bucket must stay unreachable");
        // The documented saturation contract: draws come from
        // [0, u64::MAX), so the first near-MAX bucket absorbs almost all
        // of the mass — but every draw lands in *some* valid bucket.
        assert!(seen[0] > 1_900, "first huge bucket dominates: {seen:?}");
        assert_eq!(seen.iter().sum::<u32>(), 2_000);
    }

    #[test]
    fn pick_weighted_skips_zero_weights() {
        let mut inj = LiveInjector::new(MBU, 10.0, 1);
        for _ in 0..1_000 {
            let i = inj.pick_weighted(&[0, 3, 0, 5]);
            assert!(i == 1 || i == 3, "picked zero-weight bucket {i}");
        }
    }

    #[test]
    fn sampled_strikes_fit_the_codeword() {
        let mut inj = LiveInjector::new(MBU, 10.0, 2);
        for _ in 0..10_000 {
            let s = inj.sample(512, 39);
            assert!(s.word < 512);
            assert!(s.first_bit + s.size <= 39);
        }
    }

    #[test]
    #[should_panic(expected = "mean inter-arrival")]
    fn zero_mean_interval_rejected() {
        let _ = LiveInjector::new(MBU, 0.0, 1);
    }
}
