//! Physical bit interleaving: an ablation beyond the paper.
//!
//! The paper's premise is that SEC-DED cannot cope with multi-bit upsets
//! because an MBU cluster lands in one codeword. Real arrays often
//! *interleave* adjacent cells across N codewords, splitting a cluster of
//! `s` adjacent flips into at most `ceil(s/N)` flips per word. This
//! module re-runs the Monte-Carlo campaign under an `N`-way interleaved
//! layout, quantifying how much of FTSPM's advantage survives when the
//! SRAM baseline is allowed this (area/routing-costly) layout trick.

use std::num::NonZeroUsize;

use ftspm_ecc::{DecodeOutcome, MbuDistribution, ParityWord, ProtectionScheme, HAMMING_32};
use ftspm_testkit::{par, Rng};

use crate::campaign::{shard_plan, CampaignResult, EncodedImage, RegionImage};
use crate::strike::StrikeGenerator;

/// Runs a campaign with `ways`-way physical bit interleaving: each strike
/// cluster spreads round-robin over `ways` adjacent codewords, and the
/// strike is classified by its *worst* per-word outcome
/// (SDC ≻ DUE ≻ DRE ≻ masked).
///
/// `ways = 1` degenerates to [`crate::run_campaign`]'s single-word model.
/// Sharding and determinism follow [`crate::run_campaign_threads`]: the
/// tally is bit-identical at every thread count.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn run_campaign_interleaved(
    image: &RegionImage,
    mbu: MbuDistribution,
    ways: u32,
    strikes: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign_interleaved_threads(image, mbu, ways, strikes, seed, par::thread_count())
}

/// [`run_campaign_interleaved`] with an explicit thread count.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn run_campaign_interleaved_threads(
    image: &RegionImage,
    mbu: MbuDistribution,
    ways: u32,
    strikes: u64,
    seed: u64,
    threads: NonZeroUsize,
) -> CampaignResult {
    assert!(ways >= 1, "interleaving needs at least one way");
    let enc = EncodedImage::new(image);
    let parts = par::par_map_threads(threads, shard_plan(strikes, seed), |(shard_seed, n)| {
        interleaved_shard(image, &enc, mbu, ways, n, shard_seed)
    });
    let mut result = CampaignResult::default();
    for p in &parts {
        result.merge(p);
    }
    result
}

/// One sequential interleaved sub-campaign on its own RNG stream.
fn interleaved_shard(
    image: &RegionImage,
    enc: &EncodedImage,
    mbu: MbuDistribution,
    ways: u32,
    strikes: u64,
    seed: u64,
) -> CampaignResult {
    let gen = StrikeGenerator::new(mbu);
    let mut rng = Rng::seed_from_u64(seed);
    let mut result = CampaignResult {
        strikes,
        ..Default::default()
    };
    let stored_bits = image.stored_bits();
    let words = image.words().len() as u32;
    for _ in 0..strikes {
        let strike = gen.sample(&mut rng, words, stored_bits);
        // Round-robin distribution: word j (of `ways`) receives the bits
        // whose cluster index ≡ j (mod ways), i.e. ceil((size - j)/ways)
        // flips for j < min(ways, size) and none beyond — computed in
        // closed form rather than tallied into a per-strike buffer.
        let affected = ways.min(strike.size);
        // Worst outcome across the affected words.
        let mut worst = Outcome::Masked;
        for j in 0..affected {
            let flips = (strike.size - j).div_ceil(ways);
            let word_idx = (strike.word + j) % words;
            let outcome = classify_word(image, enc, word_idx, strike.first_bit, flips, stored_bits);
            worst = worst.max(outcome);
        }
        match worst {
            Outcome::Masked => result.masked += 1,
            Outcome::Dre => result.dre += 1,
            Outcome::Due => result.due += 1,
            Outcome::Sdc => result.sdc += 1,
            Outcome::SdcMiscorrected => {
                result.sdc += 1;
                result.miscorrected += 1;
            }
        }
    }
    result
}

/// Worst-first ordering of per-word outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Outcome {
    Masked,
    Dre,
    Due,
    Sdc,
    SdcMiscorrected,
}

fn classify_word(
    image: &RegionImage,
    enc: &EncodedImage,
    word_idx: u32,
    first_bit: u32,
    flips: u32,
    stored_bits: u32,
) -> Outcome {
    // Clamp the flip run to the codeword.
    let start = first_bit.min(stored_bits - flips.min(stored_bits));
    match image.scheme() {
        ProtectionScheme::Immune => Outcome::Masked,
        ProtectionScheme::None => Outcome::Sdc,
        // Single-flip fast paths, as in the plain campaign: parity
        // detects and extended Hamming corrects every 1-bit error
        // (pinned against the codec by the campaign tests).
        ProtectionScheme::Parity if flips == 1 => Outcome::Due,
        ProtectionScheme::SecDed if flips == 1 => Outcome::Dre,
        ProtectionScheme::Parity => {
            let mut w = ParityWord::encode(image.words()[word_idx as usize]);
            for b in start..start + flips.min(stored_bits) {
                w.flip_bit(b);
            }
            match w.decode().outcome {
                DecodeOutcome::DetectedUncorrectable => Outcome::Due,
                _ => Outcome::Sdc,
            }
        }
        ProtectionScheme::SecDed => {
            let truth = u64::from(image.words()[word_idx as usize]);
            let mut w = enc.secded(word_idx);
            for b in start..start + flips.min(stored_bits) {
                w = HAMMING_32.flip_bit(w, b);
            }
            let d = HAMMING_32.decode(w);
            match d.outcome {
                DecodeOutcome::DetectedUncorrectable => Outcome::Due,
                DecodeOutcome::Corrected { .. } if d.data == truth => Outcome::Dre,
                DecodeOutcome::Clean if d.data == truth => Outcome::Dre,
                DecodeOutcome::Corrected { .. } => Outcome::SdcMiscorrected,
                DecodeOutcome::Clean => Outcome::Sdc,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;
    const STRIKES: u64 = 100_000;

    #[test]
    fn one_way_matches_plain_campaign_statistically() {
        let image = RegionImage::random(ProtectionScheme::SecDed, 1024, 42);
        let a = run_campaign_interleaved(&image, MBU, 1, STRIKES, 7);
        let b = crate::run_campaign(&image, MBU, STRIKES, 7);
        assert!(
            (a.vulnerability_weight() - b.vulnerability_weight()).abs() < 0.01,
            "{} vs {}",
            a.vulnerability_weight(),
            b.vulnerability_weight()
        );
    }

    #[test]
    fn one_way_degenerates_to_the_plain_campaign_exactly() {
        // Same shard plan, same RNG streams, same per-strike
        // classification: with `ways = 1` the interleaved model must not
        // merely approximate the plain campaign — it must reproduce it
        // bit for bit.
        for scheme in ProtectionScheme::ALL {
            let image = RegionImage::random(scheme, 512, 42);
            let a = run_campaign_interleaved(&image, MBU, 1, 20_000, 7);
            let b = crate::run_campaign(&image, MBU, 20_000, 7);
            assert_eq!(a, b, "{scheme:?}");
        }
    }

    #[test]
    fn four_way_interleaving_eliminates_secded_sdc() {
        // Clusters are at most 8 bits, so each of 4 interleaved words sees
        // at most 2 flips: SEC-DED detects all of them.
        let image = RegionImage::random(ProtectionScheme::SecDed, 1024, 42);
        let r = run_campaign_interleaved(&image, MBU, 4, STRIKES, 9);
        assert_eq!(r.sdc, 0, "no word ever sees 3+ flips");
        assert_eq!(r.miscorrected, 0);
        // Vulnerability collapses to the small P(cluster > 4) tail.
        assert!(
            r.vulnerability_weight() < 0.06,
            "weight {}",
            r.vulnerability_weight()
        );
    }

    #[test]
    fn interleaving_monotonically_weakens_vulnerability() {
        let image = RegionImage::random(ProtectionScheme::SecDed, 1024, 42);
        let mut last = f64::INFINITY;
        for ways in [1u32, 2, 4, 8] {
            let r = run_campaign_interleaved(&image, MBU, ways, STRIKES, 11);
            assert!(
                r.vulnerability_weight() <= last + 0.01,
                "{ways}-way: {} after {last}",
                r.vulnerability_weight()
            );
            last = r.vulnerability_weight();
        }
    }

    #[test]
    fn parity_still_misses_even_splits() {
        // 2-way interleaving sends 2-bit clusters as 1+1 (both detected),
        // but 4-bit clusters as 2+2 (both silent): parity stays weak.
        let image = RegionImage::random(ProtectionScheme::Parity, 1024, 42);
        let r = run_campaign_interleaved(&image, MBU, 2, STRIKES, 13);
        assert!(r.sdc > 0, "even-per-word splits escape parity");
        assert!((r.vulnerability_weight() - 1.0).abs() < 1e-12);
    }
}
