//! Particle-strike sampling: cluster size and position.

use ftspm_ecc::MbuDistribution;
use ftspm_testkit::Rng;

/// One particle strike: a cluster of physically adjacent flipped bits
/// within one protected word.
///
/// The cluster model follows the paper's assumption (and the 40 nm data
/// it cites): a strike upsets a run of adjacent cells, and word
/// interleaving is not modelled, so the whole cluster lands in one
/// codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strike {
    /// Index of the struck word within the target region.
    pub word: u32,
    /// First flipped bit within the stored codeword.
    pub first_bit: u32,
    /// Number of adjacent bits flipped (≥ 1).
    pub size: u32,
}

impl Strike {
    /// The flipped bit positions.
    pub fn bits(&self) -> impl Iterator<Item = u32> + '_ {
        self.first_bit..self.first_bit + self.size
    }
}

/// Samples strikes under an MBU size distribution.
#[derive(Debug, Clone)]
pub struct StrikeGenerator {
    mbu: MbuDistribution,
}

impl StrikeGenerator {
    /// Creates a generator over `mbu`.
    pub fn new(mbu: MbuDistribution) -> Self {
        Self { mbu }
    }

    /// The distribution in use.
    pub fn mbu(&self) -> MbuDistribution {
        self.mbu
    }

    /// Samples one strike against a region of `words` words whose
    /// codewords store `stored_bits` bits each.
    ///
    /// The cluster is clamped to start such that it fits the codeword
    /// (physically, a cluster crossing a word boundary hits the
    /// neighbouring word; the paper's single-word model clamps instead —
    /// conservative for the struck word).
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or `stored_bits` is 0.
    pub fn sample(&self, rng: &mut Rng, words: u32, stored_bits: u32) -> Strike {
        assert!(words > 0 && stored_bits > 0, "non-empty region required");
        let size = self
            .mbu
            .sample_size(rng.gen_range(0.0..1.0))
            .min(stored_bits);
        let max_start = stored_bits - size;
        Strike {
            word: rng.gen_range(0..words),
            first_bit: if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            },
            size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_fit_the_codeword() {
        let g = StrikeGenerator::new(MbuDistribution::default());
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = g.sample(&mut rng, 512, 39);
            assert!(s.word < 512);
            assert!(s.size >= 1);
            assert!(s.first_bit + s.size <= 39, "{s:?}");
        }
    }

    #[test]
    fn size_distribution_matches_mbu() {
        let g = StrikeGenerator::new(MbuDistribution::default());
        let mut rng = Rng::seed_from_u64(7);
        let n = 200_000;
        let mut ones = 0u32;
        for _ in 0..n {
            if g.sample(&mut rng, 64, 39).size == 1 {
                ones += 1;
            }
        }
        let p1 = f64::from(ones) / f64::from(n);
        assert!((p1 - 0.62).abs() < 0.01, "P(1 flip) sampled as {p1}");
    }

    #[test]
    fn bits_iterator_is_contiguous() {
        let s = Strike {
            word: 0,
            first_bit: 5,
            size: 3,
        };
        assert_eq!(s.bits().collect::<Vec<_>>(), vec![5, 6, 7]);
    }
}
