//! Scrubbing study: error accumulation between scrub passes.
//!
//! The per-strike model (equations (4)–(7), [`crate::run_campaign`])
//! assumes each strike is decoded in isolation. Real systems *scrub*
//! periodically; between scrubs, independent single-bit upsets can
//! accumulate in the same codeword and defeat SEC-DED even though each
//! strike alone was correctable. This module simulates that: strikes
//! accumulate on a live image for `strikes_per_interval` events, then a
//! scrub pass decodes every word, counts outcomes, and rewrites clean
//! codewords.
//!
//! The result quantifies how fast the SRAM regions' protection decays as
//! the scrub interval grows — and why the STT-RAM region needs none.

use std::num::NonZeroUsize;

use ftspm_ecc::{DecodeOutcome, MbuDistribution, ProtectionScheme, HAMMING_32};
use ftspm_testkit::{par, Rng};

use crate::campaign::{shard_plan, RegionImage};
use crate::strike::StrikeGenerator;

/// Aggregate outcome of a scrubbing simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubResult {
    /// Scrub passes performed.
    pub scrubs: u64,
    /// Total strikes injected.
    pub strikes: u64,
    /// Words found corrected (single error accumulated) at a scrub.
    pub corrected_words: u64,
    /// Words found detected-uncorrectable at a scrub.
    pub due_words: u64,
    /// Words silently wrong at a scrub (accumulated flips aliased to a
    /// valid or miscorrected decode).
    pub sdc_words: u64,
}

impl ScrubResult {
    /// Fraction of scrub findings that were unrecoverable or silent —
    /// the scrub-interval-dependent vulnerability.
    pub fn failure_fraction(&self) -> f64 {
        let found = self.corrected_words + self.due_words + self.sdc_words;
        if found == 0 {
            0.0
        } else {
            (self.due_words + self.sdc_words) as f64 / found as f64
        }
    }

    /// Accumulates another (shard) result: all fields are counts, so the
    /// merge is a field-wise sum.
    pub fn merge(&mut self, other: &ScrubResult) {
        self.scrubs += other.scrubs;
        self.strikes += other.strikes;
        self.corrected_words += other.corrected_words;
        self.due_words += other.due_words;
        self.sdc_words += other.sdc_words;
    }
}

/// Simulates SEC-DED scrubbing: inject `strikes_per_interval` strikes,
/// scrub, repeat `intervals` times.
///
/// Only [`ProtectionScheme::SecDed`] images are meaningful to scrub
/// (parity cannot correct, immune cells never need it); the image's data
/// words are the ground truth.
///
/// The interval budget shards over [`crate::CAMPAIGN_SHARDS`] derived
/// RNG streams, each an independent replica of the live image (valid
/// because every scrub pass restores the image exactly, so intervals are
/// independent given their strike stream); see [`run_scrub_study_threads`].
///
/// # Panics
///
/// Panics if the image is not SEC-DED protected.
pub fn run_scrub_study(
    image: &RegionImage,
    mbu: MbuDistribution,
    strikes_per_interval: u64,
    intervals: u64,
    seed: u64,
) -> ScrubResult {
    run_scrub_study_threads(
        image,
        mbu,
        strikes_per_interval,
        intervals,
        seed,
        par::thread_count(),
    )
}

/// [`run_scrub_study`] with an explicit thread count. Like the
/// campaigns, the tally is a pure function of the arguments: shard
/// seeds and per-shard interval budgets are fixed, and the ordered
/// merge is a sum — bit-identical at every thread count.
///
/// # Panics
///
/// Panics if the image is not SEC-DED protected.
pub fn run_scrub_study_threads(
    image: &RegionImage,
    mbu: MbuDistribution,
    strikes_per_interval: u64,
    intervals: u64,
    seed: u64,
    threads: NonZeroUsize,
) -> ScrubResult {
    assert_eq!(
        image.scheme(),
        ProtectionScheme::SecDed,
        "scrubbing studies target the SEC-DED region"
    );
    // Pristine codeword array, encoded once; every shard replays from a
    // copy of it and ground truth stays the image.
    let baseline: Vec<u128> = image
        .words()
        .iter()
        .map(|&w| HAMMING_32.encode(u64::from(w)))
        .collect();
    let parts = par::par_map_threads(threads, shard_plan(intervals, seed), |(shard_seed, n)| {
        scrub_shard(image, &baseline, mbu, strikes_per_interval, n, shard_seed)
    });
    let mut result = ScrubResult::default();
    for p in &parts {
        result.merge(p);
    }
    result
}

/// One sequential run of `intervals` strike-accumulate/scrub rounds on
/// its own RNG stream.
fn scrub_shard(
    image: &RegionImage,
    baseline: &[u128],
    mbu: MbuDistribution,
    strikes_per_interval: u64,
    intervals: u64,
    seed: u64,
) -> ScrubResult {
    let gen = StrikeGenerator::new(mbu);
    let mut rng = Rng::seed_from_u64(seed);
    let words = image.words().len() as u32;
    let stored_bits = image.stored_bits();
    let mut live = baseline.to_vec();
    let mut result = ScrubResult::default();
    // Words struck since the last scrub. Every scrub pass restores each
    // non-clean word to its encoded truth, so a word untouched since the
    // previous scrub decodes clean-and-correct by construction — the
    // scrub only needs to *decode* the struck words to produce exactly
    // the tallies a full-image pass would.
    let mut dirty: Vec<u32> = Vec::new();
    for _ in 0..intervals {
        // Accumulate strikes without intermediate decodes.
        dirty.clear();
        for _ in 0..strikes_per_interval {
            let s = gen.sample(&mut rng, words, stored_bits);
            for bit in s.bits() {
                live[s.word as usize] = HAMMING_32.flip_bit(live[s.word as usize], bit);
            }
            dirty.push(s.word);
            result.strikes += 1;
        }
        dirty.sort_unstable();
        dirty.dedup();
        // Scrub pass: decode every struck word, rewrite what needs repair.
        for &i in &dirty {
            let truth = u64::from(image.words()[i as usize]);
            let w = &mut live[i as usize];
            let d = HAMMING_32.decode(*w);
            match d.outcome {
                DecodeOutcome::Clean if d.data == truth => {}
                DecodeOutcome::Corrected { .. } if d.data == truth => {
                    result.corrected_words += 1;
                    *w = HAMMING_32.encode(truth);
                }
                DecodeOutcome::DetectedUncorrectable => {
                    result.due_words += 1;
                    // A real system reloads from a safe copy; model that.
                    *w = HAMMING_32.encode(truth);
                }
                // Clean-or-corrected but wrong: silent corruption.
                _ => {
                    result.sdc_words += 1;
                    *w = HAMMING_32.encode(truth);
                }
            }
        }
        result.scrubs += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

    fn image() -> RegionImage {
        RegionImage::random(ProtectionScheme::SecDed, 512, 42)
    }

    #[test]
    fn frequent_scrubbing_keeps_failures_at_the_per_strike_rate() {
        // One strike per interval: no accumulation; failure fraction ==
        // the per-strike P(>=2 flips) = 0.38 (every strike is found at
        // the next scrub).
        let r = run_scrub_study(&image(), MBU, 1, 20_000, 7);
        assert!(
            (r.failure_fraction() - 0.38).abs() < 0.02,
            "fraction {}",
            r.failure_fraction()
        );
    }

    #[test]
    fn lazy_scrubbing_accumulates_uncorrectable_errors() {
        // Many strikes per interval on a small image: independent single
        // flips pile into the same words and the failure fraction rises
        // clearly above the per-strike rate.
        let tight = run_scrub_study(&image(), MBU, 1, 5_000, 9);
        let lazy = run_scrub_study(&image(), MBU, 400, 50, 9);
        assert!(
            lazy.failure_fraction() > tight.failure_fraction() + 0.05,
            "lazy {} vs tight {}",
            lazy.failure_fraction(),
            tight.failure_fraction()
        );
    }

    #[test]
    fn failure_fraction_is_monotone_in_interval() {
        let mut last = 0.0;
        for per_interval in [1u64, 20, 100, 400] {
            let r = run_scrub_study(
                &image(),
                MBU,
                per_interval,
                12_000 / per_interval.max(1),
                11,
            );
            assert!(
                r.failure_fraction() + 0.03 >= last,
                "{per_interval}/interval: {} after {last}",
                r.failure_fraction()
            );
            last = r.failure_fraction();
        }
    }

    #[test]
    fn outcome_counts_are_consistent() {
        let r = run_scrub_study(&image(), MBU, 10, 500, 13);
        assert_eq!(r.scrubs, 500);
        assert_eq!(r.strikes, 5_000);
        assert!(r.corrected_words > 0);
    }

    #[test]
    fn empty_study_failure_fraction_is_zero_not_nan() {
        // No intervals => no strikes, no scrub findings; the fraction must
        // degrade to 0.0, not NaN.
        let r = run_scrub_study(&image(), MBU, 5, 0, 3);
        assert_eq!(r, ScrubResult::default());
        assert_eq!(r.failure_fraction(), 0.0);
        // Scrubs that find nothing (strikes per interval = 0) likewise.
        let clean = run_scrub_study(&image(), MBU, 0, 10, 3);
        assert_eq!(clean.scrubs, 10);
        assert_eq!(clean.failure_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "SEC-DED")]
    fn non_secded_images_rejected() {
        let image = RegionImage::random(ProtectionScheme::Parity, 64, 1);
        let _ = run_scrub_study(&image, MBU, 1, 1, 1);
    }
}
