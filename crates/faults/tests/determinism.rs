//! The sharded-campaign determinism contract, enforced as tier-1 tests
//! (ci.sh runs this file twice: once with `FTSPM_THREADS=1` and once
//! with the core count): a campaign tally is a pure function of
//! `(image, mbu, events, seed)`, never of the executing thread count.
//!
//! The golden tallies below extend PR 1's "same seed ⇒ same bits"
//! guarantee across the parallel executor: any change to the shard
//! count, the per-shard seed derivation, the RNG, or the strike
//! classification shows up here as a hard diff, not a silent drift of
//! reported AVF numbers.

use std::num::NonZeroUsize;

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_faults::{
    run_campaign, run_campaign_interleaved, run_campaign_interleaved_threads, run_campaign_threads,
    run_scrub_study, run_scrub_study_threads, CampaignResult, RegionImage, ScrubResult,
};

const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero")
}

fn image() -> RegionImage {
    RegionImage::random(ProtectionScheme::SecDed, 1024, 42)
}

#[test]
fn campaign_tally_is_identical_across_thread_counts() {
    let image = image();
    let baseline = run_campaign_threads(&image, MBU, 100_000, 7, nz(1));
    for threads in [2, 3, 8] {
        let r = run_campaign_threads(&image, MBU, 100_000, 7, nz(threads));
        assert_eq!(r, baseline, "{threads} threads");
    }
    // The default entry point (env/core-count threads) agrees too.
    assert_eq!(run_campaign(&image, MBU, 100_000, 7), baseline);
}

#[test]
fn campaign_tally_matches_the_pinned_golden() {
    // Golden tally for (SecDed 1024-word image seed 42, 40 nm MBU,
    // 100 k strikes, seed 7). A diff here means the determinism
    // contract — fixed shards, derived seeds, ordered merge — changed.
    let r = run_campaign(&image(), MBU, 100_000, 7);
    assert_eq!(
        r,
        CampaignResult {
            strikes: 100_000,
            sdc: 10_013,
            due: 28_337,
            dre: 61_650,
            masked: 0,
            miscorrected: 7_948,
        }
    );
}

#[test]
fn interleaved_tally_is_identical_across_thread_counts() {
    let image = image();
    let baseline = run_campaign_interleaved_threads(&image, MBU, 4, 100_000, 7, nz(1));
    for threads in [2, 8] {
        let r = run_campaign_interleaved_threads(&image, MBU, 4, 100_000, 7, nz(threads));
        assert_eq!(r, baseline, "{threads} threads");
    }
    assert_eq!(
        run_campaign_interleaved(&image, MBU, 4, 100_000, 7),
        baseline
    );
    // Pinned golden: 4-way interleaving leaves only the >4-bit tail.
    assert_eq!(
        baseline,
        CampaignResult {
            strikes: 100_000,
            sdc: 0,
            due: 3_479,
            dre: 96_521,
            masked: 0,
            miscorrected: 0,
        }
    );
}

#[test]
fn scrub_tally_is_identical_across_thread_counts() {
    let image = image();
    let baseline = run_scrub_study_threads(&image, MBU, 50, 400, 9, nz(1));
    for threads in [2, 8] {
        let r = run_scrub_study_threads(&image, MBU, 50, 400, 9, nz(threads));
        assert_eq!(r, baseline, "{threads} threads");
    }
    assert_eq!(run_scrub_study(&image, MBU, 50, 400, 9), baseline);
    // Pinned golden for the same arguments.
    assert_eq!(
        baseline,
        ScrubResult {
            scrubs: 400,
            strikes: 20_000,
            corrected_words: 11_739,
            due_words: 5_602,
            sdc_words: 2_172,
        }
    );
}

#[test]
fn thread_count_does_not_leak_into_empty_or_tiny_budgets() {
    // Budgets smaller than the shard count (some shards get zero
    // events) must stay thread-count-invariant too.
    let image = image();
    for strikes in [0u64, 1, 5, 15] {
        let a = run_campaign_threads(&image, MBU, strikes, 3, nz(1));
        let b = run_campaign_threads(&image, MBU, strikes, 3, nz(8));
        assert_eq!(a, b, "{strikes} strikes");
        assert_eq!(a.strikes, strikes);
    }
}
