//! Cross-thread fault propagation regressions, pinned by seed.
//!
//! A strike lands in a *physical* SPM block; when that block is shared,
//! the architectural event must propagate to every sharer through the
//! coherence layer. Three contracts, each on a pinned seed:
//!
//! 1. **Counted once, observed by all.** The shared fault registry
//!    ([`ftspm_sim::FaultStats`]) counts each event exactly once; the
//!    per-core views partition those counts by the active observer, and
//!    every sharer's exposure counter ticks for every shared-block
//!    fault.
//! 2. **Quarantine remaps coherently.** Repeated DUEs quarantine the
//!    struck line and demote the victim block off-chip; afterwards *no*
//!    core can serve a stale mapping or copy — cross-core reads agree
//!    word-for-word and a write still invalidates remote copies.
//! 3. **Fast path ≡ reference path.** The event-gated fast path and the
//!    per-access reference path produce byte-identical multi-core runs
//!    (registry, coherence counters, per-core views, read-back values,
//!    final cycle) for every protection scheme.

use ftspm_ecc::ProtectionScheme;
use ftspm_mem::{Clock, RegionGeometry, Technology};
use ftspm_sim::{
    CacheConfig, CoherenceState, DramConfig, FaultConfig, MachineConfig, MultiMachine,
    NullObserver, Placement, PlacementMap, Program, RegionId, SpmRegionSpec,
};

/// Words in the shared data block every core hammers.
const WORDS: u32 = 64;
/// Rounds of the drive loop (each round: every core reads every word).
const ROUNDS: usize = 40;
/// Hotter campaign for the quarantine test: a line must take two DUEs
/// from two *separate* strikes (recovery re-fetch clears the first
/// mark), so it needs many more strike opportunities.
const QUARANTINE_ROUNDS: usize = 200;

/// An N-core machine whose `shared` data block lives *in* the lone SPM
/// region (the strike surface); code and stacks stay off-chip so every
/// fault lands in the shared block's home region.
fn build(scheme: ProtectionScheme, cores: usize, faults: FaultConfig) -> MultiMachine {
    let tech = match scheme {
        ProtectionScheme::Parity => Technology::SramParity,
        ProtectionScheme::SecDed => Technology::SramSecDed,
        _ => Technology::SramUnprotected,
    };
    let mut b = Program::builder("shared-block-propagation");
    let code = b.code("code", 256, 16);
    let shared = b.data("shared", WORDS * 4);
    b.stack(256 * cores as u32);
    let program = b.build();
    let regions = vec![SpmRegionSpec::new(
        "spm",
        tech,
        scheme,
        RegionGeometry::from_kib(1),
    )];
    let mut placement = PlacementMap::new(&program, &regions);
    placement.place_off_chip(code);
    placement
        .place(&program, shared, RegionId::new(0))
        .expect("shared block fits the region");
    let config = MachineConfig {
        clock: Clock::default(),
        icache: CacheConfig::default(),
        dcache: CacheConfig::default(),
        dram: DramConfig::default(),
        regions,
        faults: Some(faults),
        deadline_cycles: None,
    };
    MultiMachine::new(config, program, placement, cores).expect("machine builds")
}

/// Warms the sharer mask (every core touches the block once) and then
/// drives `ROUNDS` rounds of every core reading every word — each read
/// decodes pending strike marks through the region's scheme. Returns
/// each core's final read-back of the whole block.
fn drive(mm: &mut MultiMachine, cores: usize, rounds: usize) -> Vec<Vec<u32>> {
    let shared = mm.machine().program().find("shared").expect("block exists");
    let mut obs = NullObserver;
    for c in 0..cores {
        mm.with_core(c, &mut obs, |cpu| cpu.read_u32(shared, 0))
            .expect("warm read");
    }
    let mut last = vec![Vec::new(); cores];
    for _ in 0..rounds {
        for (c, slot) in last.iter_mut().enumerate() {
            *slot = mm
                .with_core(c, &mut obs, |cpu| {
                    (0..WORDS)
                        .map(|w| cpu.read_u32(shared, w * 4))
                        .collect::<Result<Vec<u32>, _>>()
                })
                .expect("reads survive recovery");
        }
    }
    last
}

/// Contract 1: the registry counts each event once; per-core views
/// partition it; every sharer's exposure ticks for every shared fault.
#[test]
fn shared_strike_counted_once_observed_by_every_sharer() {
    let cores = 3;
    let mut mm = build(
        ProtectionScheme::SecDed,
        cores,
        FaultConfig::new(0x5EED_0001, 300.0),
    );
    drive(&mut mm, cores, ROUNDS);

    let registry = mm.machine().stats().faults.expect("faults armed");
    let views = mm.core_fault_views().to_vec();
    let coh = mm.coherence_stats();

    assert!(registry.strikes > 0, "campaign must land strikes");
    assert!(registry.corrections > 0, "SEC-DED must correct for real");

    // Counted once: per-core observer views partition the registry.
    let sum = |f: fn(&ftspm_sim::CoreFaultView) -> u64| views.iter().map(f).sum::<u64>();
    assert_eq!(
        sum(|v| v.corrections),
        registry.corrections + registry.scrub_corrections,
        "per-core corrections must partition the registry count"
    );
    assert_eq!(
        sum(|v| v.due_traps),
        registry.due_traps,
        "per-core DUE traps must partition the registry count"
    );
    assert_eq!(
        sum(|v| v.sdc_escapes),
        registry.sdc_escapes,
        "per-core SDC escapes must partition the registry count"
    );

    // Observed by all: the block is warmed by every core before any
    // event decodes, so each shared fault is visible to cores − 1
    // remote observers and ticks every sharer's exposure counter.
    assert!(coh.shared_block_faults > 0, "shared faults must occur");
    assert_eq!(
        coh.cross_core_observations,
        coh.shared_block_faults * (cores as u64 - 1),
        "every shared fault must be visible to all remote sharers"
    );
    assert_eq!(
        sum(|v| v.shared_exposures),
        coh.shared_block_faults * cores as u64,
        "every sharer's exposure must tick for every shared fault"
    );
}

/// Contract 2: DUE → quarantine → remap leaves no stale copy or
/// mapping on any core.
#[test]
fn quarantine_remap_of_shared_block_is_coherent_on_all_cores() {
    let cores = 3;
    let mut cfg = FaultConfig::new(0x5EED_0002, 60.0);
    cfg.quarantine_due_threshold = 2;
    let mut mm = build(ProtectionScheme::Parity, cores, cfg);
    drive(&mut mm, cores, QUARANTINE_ROUNDS);

    let registry = mm.machine().stats().faults.expect("faults armed");
    assert!(registry.due_traps > 0, "parity must trap on odd flips");
    assert!(
        registry.quarantined_lines > 0,
        "repeated DUEs must quarantine lines"
    );
    assert!(
        registry.remapped_blocks >= 1,
        "the victim block must be demoted"
    );

    // The remap updated the one shared placement map: every core now
    // resolves the block off-chip (empty demotion map ⇒ DRAM).
    let shared = mm.machine().program().find("shared").expect("block exists");
    assert_eq!(
        mm.machine().placement().placement(shared),
        Placement::OffChip,
        "post-quarantine home must be off-chip for every core"
    );

    // No stale data either: all cores read back the identical image of
    // the demoted block (served coherently from its DRAM home)...
    let mut obs = NullObserver;
    let images: Vec<Vec<u32>> = (0..cores)
        .map(|c| {
            mm.with_core(c, &mut obs, |cpu| {
                (0..WORDS)
                    .map(|w| cpu.read_u32(shared, w * 4))
                    .collect::<Result<Vec<u32>, _>>()
            })
            .expect("post-remap reads succeed")
        })
        .collect();
    for c in 1..cores {
        assert_eq!(
            images[0], images[c],
            "core {c} read a different post-remap image than core 0"
        );
    }

    // ...and the demoted block obeys MESI: a write by core 0 kills the
    // remote copies the reads above just filled.
    mm.with_core(0, &mut obs, |cpu| cpu.write_u32(shared, 0, 0xBEEF))
        .expect("post-remap write succeeds");
    let home = mm.machine().program().block(shared).dram_base();
    assert_eq!(mm.dcache_state(0, home), CoherenceState::Modified);
    for c in 1..cores {
        assert_eq!(
            mm.dcache_state(c, home),
            CoherenceState::Invalid,
            "core {c} kept a stale copy of the demoted block"
        );
    }
}

/// One full multi-core campaign rendered to bytes: registry, coherence
/// counters, per-core views, every core's final read-back, final cycle.
fn campaign_digest(scheme: ProtectionScheme, reference_path: bool) -> String {
    let cores = 3;
    let mut cfg = FaultConfig::new(0x5EED_0003, 250.0);
    cfg.quarantine_due_threshold = 2;
    cfg.scrub_interval = Some(5_000);
    cfg.reference_path = reference_path;
    let mut mm = build(scheme, cores, cfg);
    let last = drive(&mut mm, cores, ROUNDS);
    format!(
        "{:?}\n{:?}\n{:?}\ncycle={}\nreads={:?}",
        mm.machine().stats().faults,
        mm.coherence_stats(),
        mm.core_fault_views(),
        mm.machine().cycle(),
        last,
    )
}

/// Contract 3: the event-gated fast path and the per-access reference
/// path are observably byte-identical on multi-core shared-block runs.
#[test]
fn fast_path_matches_reference_path_on_shared_blocks() {
    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Parity,
        ProtectionScheme::SecDed,
    ] {
        let fast = campaign_digest(scheme, false);
        let reference = campaign_digest(scheme, true);
        assert_eq!(
            fast, reference,
            "{scheme:?}: fast path diverged from the reference path"
        );
        assert!(
            !fast.contains("strikes: 0"),
            "{scheme:?}: the equivalence run must exercise real strikes"
        );
    }
}
