//! Event-driven skipping ≡ per-access polling.
//!
//! The simulator's fast path only consults the fault subsystem when an
//! access's cycle reaches the cached next event (the earlier of the
//! injector's next strike arrival and the next scrub tick); the
//! reference path polls on every access. This suite proves the gate is
//! lossless over random access/strike/scrub interleavings: both
//! disciplines land *exactly* the same strikes at the same accesses,
//! fire scrub passes at the same accesses, and leave the injector in the
//! same state. Counterexamples shrink and persist in
//! `skip_equivalence.regressions` (replay one with `FTSPM_PROP_SEED`).

use ftspm_ecc::MbuDistribution;
use ftspm_faults::LiveInjector;
use ftspm_testkit::prop::{check, f64_range, int_range, vec_of, Config};

fn cfg() -> Config {
    Config::with_cases(192).persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/skip_equivalence.regressions"
    ))
}

/// What one access observed: the strikes drained at it (as sampled
/// words/bits/region picks) and whether a scrub pass fired.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AccessRecord {
    access: usize,
    strikes: Vec<(usize, u32, u32, u32)>,
    scrub: bool,
}

const WEIGHTS: [u64; 2] = [512, 128];
const WORDS: u32 = 512;
const STORED_BITS: u32 = 39;

/// Drains every due strike from `inj` (the loop body of
/// `fault_inject_pending`), recording what landed.
fn drain(inj: &mut LiveInjector, now: u64) -> Vec<(usize, u32, u32, u32)> {
    let mut out = Vec::new();
    while inj.strike_due(now) {
        let pick = inj.pick_weighted(&WEIGHTS);
        let s = inj.sample(WORDS, STORED_BITS);
        out.push((pick, s.word, s.first_bit, s.size));
    }
    out
}

/// The pre-optimization discipline: poll the injector and the scrub
/// schedule at every access.
fn run_reference(
    seed: u64,
    mean: f64,
    scrub_interval: Option<u64>,
    cycles: &[u64],
) -> (Vec<AccessRecord>, u64) {
    let mut inj = LiveInjector::new(MbuDistribution::default(), mean, seed);
    let mut next_scrub = scrub_interval.unwrap_or(u64::MAX);
    let mut records = Vec::new();
    for (i, &now) in cycles.iter().enumerate() {
        let strikes = drain(&mut inj, now);
        let scrub = now >= next_scrub;
        if scrub {
            next_scrub = now.saturating_add(scrub_interval.unwrap_or(u64::MAX));
        }
        if !strikes.is_empty() || scrub {
            records.push(AccessRecord {
                access: i,
                strikes,
                scrub,
            });
        }
    }
    (records, inj.next_cycle())
}

/// The fast-path discipline: a single comparison against the cached next
/// event; the subsystem is only consulted when an event is actually due.
fn run_gated(
    seed: u64,
    mean: f64,
    scrub_interval: Option<u64>,
    cycles: &[u64],
) -> (Vec<AccessRecord>, u64) {
    let mut inj = LiveInjector::new(MbuDistribution::default(), mean, seed);
    let mut next_scrub = scrub_interval.unwrap_or(u64::MAX);
    let mut next_event = inj.next_cycle().min(next_scrub);
    let mut records = Vec::new();
    for (i, &now) in cycles.iter().enumerate() {
        if now < next_event {
            continue; // the one branch a hot access pays
        }
        let strikes = drain(&mut inj, now);
        let scrub = now >= next_scrub;
        if scrub {
            next_scrub = now.saturating_add(scrub_interval.unwrap_or(u64::MAX));
        }
        next_event = inj.next_cycle().min(next_scrub);
        if !strikes.is_empty() || scrub {
            records.push(AccessRecord {
                access: i,
                strikes,
                scrub,
            });
        }
    }
    (records, inj.next_cycle())
}

/// Shared body so a persisted counterexample stays covered forever.
fn check_equivalent(seed: u64, mean: f64, scrub_interval: Option<u64>, deltas: &[u64]) {
    let mut now = 0u64;
    let cycles: Vec<u64> = deltas
        .iter()
        .map(|&d| {
            now += d;
            now
        })
        .collect();
    let (ref_records, ref_final) = run_reference(seed, mean, scrub_interval, &cycles);
    let (fast_records, fast_final) = run_gated(seed, mean, scrub_interval, &cycles);
    assert_eq!(
        ref_records, fast_records,
        "gated skipping missed or invented an event \
         (seed {seed}, mean {mean}, scrub {scrub_interval:?})"
    );
    assert_eq!(ref_final, fast_final, "final injector schedules diverged");
}

#[test]
fn gated_skipping_is_lossless_under_random_interleavings() {
    let strategy = (
        int_range(0u64..1 << 48),
        f64_range(1.0..5_000.0),
        int_range(0u64..3),
        int_range(1u64..20_000),
        vec_of(int_range(1u64..2_000), 1..400),
    );
    check(
        &cfg(),
        &strategy,
        |&(seed, mean, scrub_kind, scrub_interval, ref deltas)| {
            // scrub_kind: 0 = off, 1 = the drawn interval, 2 = every cycle.
            let scrub = match scrub_kind {
                0 => None,
                1 => Some(scrub_interval),
                _ => Some(1),
            };
            check_equivalent(seed, mean, scrub, deltas);
        },
    );
}

/// Degenerate schedules the random sweep is unlikely to pin precisely.
#[test]
fn gated_skipping_handles_boundary_schedules() {
    // Strike arrival exactly on an access cycle; scrub exactly on an
    // access cycle; both on the same access.
    check_equivalent(7, 1.0, Some(1), &[1, 1, 1, 1, 1]);
    // Huge gaps: many strikes pile up between two accesses.
    check_equivalent(11, 2.0, Some(500), &[1, 100_000, 1, 100_000]);
    // Mean so large nothing ever arrives: the gate must never open for
    // strikes (and the final schedules still agree).
    check_equivalent(13, 1e15, None, &[10, 10, 10]);
    check_equivalent(13, 1e15, Some(25), &[10, 10, 10, 10]);
}
