//! Deterministic replay: the whole point of seeding every campaign is
//! that a reported AVF number can be regenerated bit-for-bit. Same seed
//! ⇒ identical strike sequence and identical outcome tallies; different
//! seed ⇒ a different campaign.

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_faults::{run_campaign, run_campaign_interleaved, RegionImage, Strike, StrikeGenerator};
use ftspm_testkit::Rng;

const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

fn strike_sequence(seed: u64, n: usize) -> Vec<Strike> {
    let gen = StrikeGenerator::new(MBU);
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| gen.sample(&mut rng, 1024, 39)).collect()
}

#[test]
fn same_seed_replays_the_exact_strike_sequence() {
    let a = strike_sequence(0xCAFE, 10_000);
    let b = strike_sequence(0xCAFE, 10_000);
    assert_eq!(a, b, "strike-by-strike replay");
}

#[test]
fn different_seeds_diverge_immediately() {
    let a = strike_sequence(0xCAFE, 64);
    let b = strike_sequence(0xCAFF, 64);
    assert_ne!(a, b);
    // Adjacent seeds must not share a prefix (SplitMix64 expansion
    // decorrelates them).
    assert_ne!(a[0], b[0], "first strikes already differ");
}

#[test]
fn same_seed_campaigns_produce_identical_tallies() {
    for scheme in [
        ProtectionScheme::Parity,
        ProtectionScheme::SecDed,
        ProtectionScheme::None,
    ] {
        let image = RegionImage::random(scheme, 512, 11);
        let a = run_campaign(&image, MBU, 50_000, 0xF00D);
        let b = run_campaign(&image, MBU, 50_000, 0xF00D);
        assert_eq!(a, b, "{scheme:?}: tallies must replay exactly");
        // Unprotected memory turns *every* strike into SDC, so its
        // aggregate tally can't tell seeds apart — only schemes with
        // mixed outcomes can show divergence at the tally level.
        if scheme != ProtectionScheme::None {
            let c = run_campaign(&image, MBU, 50_000, 0xF00E);
            assert_ne!(a, c, "{scheme:?}: a fresh seed is a fresh campaign");
        }
    }
}

#[test]
fn interleaved_campaigns_replay_too() {
    let image = RegionImage::random(ProtectionScheme::SecDed, 512, 11);
    let a = run_campaign_interleaved(&image, MBU, 4, 50_000, 0xF00D);
    let b = run_campaign_interleaved(&image, MBU, 4, 50_000, 0xF00D);
    assert_eq!(a, b);
}

#[test]
fn image_generation_is_part_of_the_replay_contract() {
    let a = RegionImage::random(ProtectionScheme::SecDed, 256, 42);
    let b = RegionImage::random(ProtectionScheme::SecDed, 256, 42);
    assert_eq!(a.words(), b.words());
    let c = RegionImage::random(ProtectionScheme::SecDed, 256, 43);
    assert_ne!(a.words(), c.words());
}

mod live {
    //! Replay of *live* injection: the [`ftspm_faults::LiveInjector`]
    //! drives strikes into a running machine, so the replay contract now
    //! covers the whole run — same seed and workload ⇒ bit-identical
    //! recovery tallies and final cycle count.

    use ftspm_core::mda::run_mda;
    use ftspm_core::{OptimizeFor, RegionRole, SpmStructure};
    use ftspm_ecc::MbuDistribution;
    use ftspm_faults::LiveInjector;
    use ftspm_harness::{
        profile_workload, LiveFaultOptions, RunBuilder, RunMetrics, StructureKind,
    };
    use ftspm_workloads::{CaseStudy, Workload};

    fn injected_case_study(seed: u64) -> RunMetrics {
        let mut w = CaseStudy::new();
        let profile = profile_workload(&mut w);
        let structure = SpmStructure::ftspm();
        let mapping = run_mda(
            w.program(),
            &profile,
            &structure,
            &OptimizeFor::Reliability.thresholds(),
        );
        let opts = LiveFaultOptions::builder(seed, 3_000.0)
            .restrict_to(vec![RegionRole::DataEcc, RegionRole::DataParity])
            .scrub_interval(25_000)
            .build()
            .expect("valid fault options");
        RunBuilder::new()
            .workload(&mut w)
            .structure(&structure, StructureKind::Ftspm)
            .mapping(mapping)
            .profile(&profile)
            .faults(opts)
            .run()
    }

    #[test]
    fn live_injected_runs_replay_bit_for_bit() {
        let a = injected_case_study(0xFA57);
        let b = injected_case_study(0xFA57);
        let ra = a.recovery.expect("faulted run has recovery stats");
        let rb = b.recovery.expect("faulted run has recovery stats");
        assert_eq!(ra, rb, "same seed, identical recovery tallies");
        assert_eq!(a.cycles, b.cycles, "same seed, identical final cycle");
        assert!(ra.strikes > 0, "the runs actually saw strikes: {ra:?}");
    }

    #[test]
    fn a_fresh_seed_is_a_fresh_run() {
        let a = injected_case_study(0xFA57);
        let c = injected_case_study(0xFA58);
        let ra = a.recovery.expect("stats");
        let rc = c.recovery.expect("stats");
        assert!(
            ra != rc || a.cycles != c.cycles,
            "different seeds must diverge: {ra:?}"
        );
    }

    #[test]
    fn injector_schedule_replays_standalone() {
        // The machine-level contract rests on the injector's: identical
        // arrival sequences per seed.
        let seq = |seed| {
            let mut i = LiveInjector::new(MbuDistribution::default(), 500.0, seed);
            let mut cycles = Vec::new();
            for now in (0..50_000u64).step_by(250) {
                while i.strike_due(now) {
                    cycles.push(i.next_cycle());
                }
            }
            cycles
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
