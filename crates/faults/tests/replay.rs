//! Deterministic replay: the whole point of seeding every campaign is
//! that a reported AVF number can be regenerated bit-for-bit. Same seed
//! ⇒ identical strike sequence and identical outcome tallies; different
//! seed ⇒ a different campaign.

use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_faults::{run_campaign, run_campaign_interleaved, RegionImage, Strike, StrikeGenerator};
use ftspm_testkit::Rng;

const MBU: MbuDistribution = MbuDistribution::DIXIT_WOOD_40NM;

fn strike_sequence(seed: u64, n: usize) -> Vec<Strike> {
    let gen = StrikeGenerator::new(MBU);
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| gen.sample(&mut rng, 1024, 39)).collect()
}

#[test]
fn same_seed_replays_the_exact_strike_sequence() {
    let a = strike_sequence(0xCAFE, 10_000);
    let b = strike_sequence(0xCAFE, 10_000);
    assert_eq!(a, b, "strike-by-strike replay");
}

#[test]
fn different_seeds_diverge_immediately() {
    let a = strike_sequence(0xCAFE, 64);
    let b = strike_sequence(0xCAFF, 64);
    assert_ne!(a, b);
    // Adjacent seeds must not share a prefix (SplitMix64 expansion
    // decorrelates them).
    assert_ne!(a[0], b[0], "first strikes already differ");
}

#[test]
fn same_seed_campaigns_produce_identical_tallies() {
    for scheme in [
        ProtectionScheme::Parity,
        ProtectionScheme::SecDed,
        ProtectionScheme::None,
    ] {
        let image = RegionImage::random(scheme, 512, 11);
        let a = run_campaign(&image, MBU, 50_000, 0xF00D);
        let b = run_campaign(&image, MBU, 50_000, 0xF00D);
        assert_eq!(a, b, "{scheme:?}: tallies must replay exactly");
        // Unprotected memory turns *every* strike into SDC, so its
        // aggregate tally can't tell seeds apart — only schemes with
        // mixed outcomes can show divergence at the tally level.
        if scheme != ProtectionScheme::None {
            let c = run_campaign(&image, MBU, 50_000, 0xF00E);
            assert_ne!(a, c, "{scheme:?}: a fresh seed is a fresh campaign");
        }
    }
}

#[test]
fn interleaved_campaigns_replay_too() {
    let image = RegionImage::random(ProtectionScheme::SecDed, 512, 11);
    let a = run_campaign_interleaved(&image, MBU, 4, 50_000, 0xF00D);
    let b = run_campaign_interleaved(&image, MBU, 4, 50_000, 0xF00D);
    assert_eq!(a, b);
}

#[test]
fn image_generation_is_part_of_the_replay_contract() {
    let a = RegionImage::random(ProtectionScheme::SecDed, 256, 42);
    let b = RegionImage::random(ProtectionScheme::SecDed, 256, 42);
    assert_eq!(a.words(), b.words());
    let c = RegionImage::random(ProtectionScheme::SecDed, 256, 43);
    assert_ne!(a.words(), c.words());
}
