//! The profile → map → re-run pipeline.

use ftspm_core::mda::{run_baseline, run_mda, MdaOutput};
use ftspm_core::{reliability, OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_profile::{Profile, Profiler};
use ftspm_sim::{Cpu, Machine, MachineConfig, NullObserver, PlacementMap, Program};
use ftspm_workloads::Workload;

use crate::metrics::{RegionTraffic, RunMetrics, StructureKind, WorkloadEvaluation};

/// The idealised structure used for the profiling pass: two 256 KiB
/// 1-cycle regions so that *every* block (even ones the real SPM cannot
/// hold) is mapped and the profile is placement-neutral. This is also the
/// "ideal situation" the paper's overhead thresholds are defined against.
pub fn profiling_structure() -> SpmStructure {
    SpmStructure::new(
        "profiling (ideal)",
        vec![
            (
                RegionRole::Instruction,
                ftspm_sim::SpmRegionSpec::new(
                    "ideal I",
                    Technology::SramUnprotected,
                    ProtectionScheme::None,
                    RegionGeometry::from_kib(256),
                ),
            ),
            (
                RegionRole::DataStt,
                ftspm_sim::SpmRegionSpec::new(
                    "ideal D",
                    Technology::SramUnprotected,
                    ProtectionScheme::None,
                    RegionGeometry::from_kib(256),
                ),
            ),
        ],
    )
}

fn map_everything(program: &Program, structure: &SpmStructure) -> PlacementMap {
    let specs = structure.specs();
    let mut map = PlacementMap::new(program, &specs);
    for (id, spec) in program.iter() {
        let role = match spec.kind() {
            ftspm_sim::BlockKind::Code => RegionRole::Instruction,
            ftspm_sim::BlockKind::Data => RegionRole::DataStt,
        };
        let region = structure.region_id(role).expect("ideal structure roles");
        map.place(program, id, region)
            .expect("ideal regions hold everything");
    }
    map
}

/// Runs the profiling pass: the paper's phase-one static profiling,
/// producing Table I statistics and the access sequence.
///
/// # Panics
///
/// Panics if the workload misbehaves (out-of-bounds access) — workloads
/// are trusted fixtures.
pub fn profile_workload(workload: &mut dyn Workload) -> Profile {
    let program = workload.program().clone();
    let structure = profiling_structure();
    let placement = map_everything(&program, &structure);
    let mut machine = Machine::new(
        MachineConfig::with_regions(structure.specs()),
        program.clone(),
        placement,
    )
    .expect("profiling machine");
    workload.init(machine.dram_mut());
    let mut profiler = Profiler::new(&program);
    {
        let mut cpu = Cpu::new(&mut machine, &mut profiler);
        workload.run(&mut cpu).expect("profiling run");
    }
    let cycles = machine.cycle();
    machine.finish(&mut profiler);
    profiler.finish(&program, cycles)
}

/// Runs `workload` on `structure` under `mapping` and collects metrics.
///
/// `profile` must be the profiling-pass output for the same workload (it
/// feeds the analytic vulnerability model).
///
/// # Panics
///
/// Panics on simulator errors — mappings produced by MDA are valid by
/// construction.
pub fn run_on_structure(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
) -> RunMetrics {
    let program = workload.program().clone();
    let placement = mapping
        .placement(&program, structure)
        .expect("MDA placements fit by construction");
    let mut machine = Machine::new(
        MachineConfig::with_regions(structure.specs()),
        program,
        placement,
    )
    .expect("structure machine");
    workload.init(machine.dram_mut());
    let mut obs = NullObserver;
    let checksum = {
        let mut cpu = Cpu::new(&mut machine, &mut obs);
        workload.run(&mut cpu).expect("mapped run")
    };
    let stats = machine.finish(&mut obs);
    let vuln = reliability::vulnerability(profile, &mapping, structure, MbuDistribution::default());
    let spm_energy = stats.spm_energy();
    let stt_regions = || {
        stats
            .regions
            .iter()
            .zip(structure.regions())
            .filter(|(_, (_, spec))| spec.technology() == Technology::SttRam)
    };
    let stt_max_line_writes = stt_regions()
        .map(|(r, _)| r.max_line_writes)
        .max()
        .unwrap_or(0);
    let stt_total_writes = stt_regions().map(|(r, _)| r.total_writes).sum();
    let stt_lines = stt_regions()
        .map(|(_, (_, spec))| spec.geometry().words())
        .sum();
    RunMetrics {
        structure: kind,
        workload: workload.name().to_string(),
        cycles: stats.cycles,
        instructions: stats.instructions,
        spm_dynamic_pj: spm_energy.dynamic_pj(),
        spm_static_pj: spm_energy.static_pj,
        spm_leakage_mw: stats.spm_leakage_mw(),
        vulnerability: vuln.vulnerability(),
        reliability: vuln.reliability(),
        stt_max_line_writes,
        stt_total_writes,
        stt_lines,
        traffic: stats
            .regions
            .iter()
            .map(|r| RegionTraffic {
                region: r.name.clone(),
                reads: r.program_reads,
                writes: r.program_writes,
            })
            .collect(),
        checksum_ok: checksum == workload.expected_checksum(),
        mapping,
        vulnerability_report: vuln,
    }
}

/// Profiles `workload`, maps it with MDA under `optimize`, and measures
/// it on FTSPM and both baselines.
pub fn evaluate_workload(workload: &mut dyn Workload, optimize: OptimizeFor) -> WorkloadEvaluation {
    let profile = profile_workload(workload);
    let program = workload.program().clone();

    let ftspm_structure = SpmStructure::ftspm();
    let ftspm_mapping = run_mda(&program, &profile, &ftspm_structure, &optimize.thresholds());
    let ftspm = run_on_structure(
        workload,
        &ftspm_structure,
        StructureKind::Ftspm,
        ftspm_mapping,
        &profile,
    );

    let sram_structure = SpmStructure::pure_sram();
    let sram_mapping = run_baseline(&program, &profile, &sram_structure);
    let pure_sram = run_on_structure(
        workload,
        &sram_structure,
        StructureKind::PureSram,
        sram_mapping,
        &profile,
    );

    let stt_structure = SpmStructure::pure_stt();
    let stt_mapping = run_baseline(&program, &profile, &stt_structure);
    let pure_stt = run_on_structure(
        workload,
        &stt_structure,
        StructureKind::PureStt,
        stt_mapping,
        &profile,
    );

    WorkloadEvaluation {
        workload: workload.name().to_string(),
        profile,
        ftspm,
        pure_sram,
        pure_stt,
    }
}

/// Evaluates a whole workload set.
pub fn evaluate_suite(
    workloads: Vec<Box<dyn Workload>>,
    optimize: OptimizeFor,
) -> Vec<WorkloadEvaluation> {
    workloads
        .into_iter()
        .map(|mut w| evaluate_workload(w.as_mut(), optimize))
        .collect()
}
