//! The profile → map → re-run pipeline.
//!
//! The chainable [`crate::RunBuilder`] is the harness front door; the
//! free functions kept here ([`run_on_structure`], [`evaluate_suite`],
//! …) are deprecated thin wrappers over it.

use std::fmt;

use ftspm_core::mda::{run_baseline, run_mda, MdaOutput};
use ftspm_core::{reliability, remap, OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::{MbuDistribution, ProtectionScheme};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_profile::{Profile, Profiler};
use ftspm_sim::MultiMachine;
use ftspm_sim::{
    Cpu, FaultConfig, Machine, MachineConfig, NullObserver, Observer, PlacementMap, Program,
    SimError,
};
use ftspm_workloads::multicore::{run_lockstep, MultiWorkload};
use ftspm_workloads::Workload;

use crate::metrics::{
    MultiRunMetrics, RegionTraffic, RunMetrics, StructureKind, WorkloadEvaluation,
};

/// The idealised structure used for the profiling pass: two 256 KiB
/// 1-cycle regions so that *every* block (even ones the real SPM cannot
/// hold) is mapped and the profile is placement-neutral. This is also the
/// "ideal situation" the paper's overhead thresholds are defined against.
pub fn profiling_structure() -> SpmStructure {
    SpmStructure::new(
        "profiling (ideal)",
        vec![
            (
                RegionRole::Instruction,
                ftspm_sim::SpmRegionSpec::new(
                    "ideal I",
                    Technology::SramUnprotected,
                    ProtectionScheme::None,
                    RegionGeometry::from_kib(256),
                ),
            ),
            (
                RegionRole::DataStt,
                ftspm_sim::SpmRegionSpec::new(
                    "ideal D",
                    Technology::SramUnprotected,
                    ProtectionScheme::None,
                    RegionGeometry::from_kib(256),
                ),
            ),
        ],
    )
}

fn map_everything(program: &Program, structure: &SpmStructure) -> PlacementMap {
    let specs = structure.specs();
    let mut map = PlacementMap::new(program, &specs);
    for (id, spec) in program.iter() {
        let role = match spec.kind() {
            ftspm_sim::BlockKind::Code => RegionRole::Instruction,
            ftspm_sim::BlockKind::Data => RegionRole::DataStt,
        };
        let region = structure.region_id(role).expect("ideal structure roles");
        map.place(program, id, region)
            .expect("ideal regions hold everything");
    }
    map
}

/// Why a harness run stopped without producing metrics. Unlike the
/// panicking paths (which guard *trusted fixtures*), these are runtime
/// conditions a caller is expected to handle — the serving layer maps
/// them to typed HTTP errors instead of losing a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The run's cycle budget ([`crate::RunBuilder::deadline_cycles`])
    /// was exhausted; the machine refused the access that would have run
    /// at or past the deadline.
    DeadlineExceeded {
        /// The configured budget.
        deadline_cycles: u64,
        /// The deterministic machine cycle at which the run was cut.
        cycle: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineExceeded {
                deadline_cycles,
                cycle,
            } => write!(
                f,
                "run exceeded its deadline of {deadline_cycles} cycles at cycle {cycle}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Runs the profiling pass: the paper's phase-one static profiling,
/// producing Table I statistics and the access sequence.
///
/// # Panics
///
/// Panics if the workload misbehaves (out-of-bounds access) — workloads
/// are trusted fixtures.
pub fn profile_workload(workload: &mut dyn Workload) -> Profile {
    try_profile_workload(workload, None).expect("profiling run has no deadline")
}

/// [`profile_workload`] under an optional cycle budget: the fallible
/// entry the deadline-bounded serving path uses, so a runaway workload
/// is cancelled during profiling too, not just during the mapped run.
///
/// # Errors
///
/// [`RunError::DeadlineExceeded`] when the budget runs out mid-profile.
///
/// # Panics
///
/// Panics on any other simulator error — workloads are trusted fixtures.
pub fn try_profile_workload(
    workload: &mut dyn Workload,
    deadline_cycles: Option<u64>,
) -> Result<Profile, RunError> {
    let program = workload.program().clone();
    let structure = profiling_structure();
    let placement = map_everything(&program, &structure);
    let mut config = MachineConfig::with_regions(structure.specs());
    config.deadline_cycles = deadline_cycles;
    let mut machine = Machine::new(config, program.clone(), placement).expect("profiling machine");
    workload.init(machine.dram_mut());
    let mut profiler = Profiler::new(&program);
    {
        let mut cpu = Cpu::new(&mut machine, &mut profiler);
        match workload.run(&mut cpu) {
            Ok(_) => {}
            Err(SimError::DeadlineExceeded {
                cycle,
                deadline_cycles,
            }) => {
                return Err(RunError::DeadlineExceeded {
                    deadline_cycles,
                    cycle,
                })
            }
            Err(e) => panic!("profiling run failed: {e}"),
        }
    }
    let cycles = machine.cycle();
    machine.finish(&mut profiler);
    Ok(profiler.finish(&program, cycles))
}

/// Options for a live fault-injected run: the runtime counterpart of the
/// offline campaign tooling in `ftspm-faults`, expressed in structure
/// roles rather than raw region ids.
#[derive(Debug, Clone)]
pub struct LiveFaultOptions {
    /// MBU cluster-size distribution of injected strikes.
    pub mbu: MbuDistribution,
    /// Mean cycles between strikes (exponential inter-arrival).
    pub mean_cycles_between_strikes: f64,
    /// RNG seed; a faulted run replays bit-for-bit per seed.
    pub seed: u64,
    /// Scrub-daemon period in cycles (`None` disables scrubbing).
    pub scrub_interval: Option<u64>,
    /// DUE recovery re-fetch attempts before quarantining the line.
    pub due_retry_limit: u32,
    /// DUE traps on one word line before it is quarantined.
    pub quarantine_due_threshold: u32,
    /// Per-line write budget for STT-RAM wear quarantine (`None` = off).
    pub line_write_budget: Option<u64>,
    /// Restrict strikes to regions filling these roles (`None` = all).
    pub restrict_to: Option<Vec<RegionRole>>,
    /// Route the run through the simulator's reference (pre-optimization)
    /// fault path instead of the event-gated fast path. The two are
    /// byte-identical — the fast-path differential suite proves it — so
    /// this exists as the equivalence oracle, at a throughput cost.
    pub reference_path: bool,
}

/// A [`LiveFaultOptions`] field rejected by
/// [`LiveFaultOptionsBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOptionsError {
    /// `mean_cycles_between_strikes` was not a finite value ≥ 1.0 —
    /// the injector draws exponential inter-arrival gaps from it and a
    /// sub-cycle or NaN mean is meaningless.
    InvalidStrikeMean,
    /// `due_retry_limit` was 0: a DUE trap with no re-fetch attempt can
    /// never recover, which is a misconfiguration, not a policy.
    ZeroRetryLimit,
    /// `quarantine_due_threshold` was 0: lines would be quarantined
    /// before their first fault.
    ZeroQuarantineThreshold,
    /// `scrub_interval` was `Some(0)`: the scrub daemon would run every
    /// cycle. Disable scrubbing with `None` instead.
    ZeroScrubInterval,
    /// `line_write_budget` was `Some(0)`: every line would wear out on
    /// its first write. Disable wear quarantine with `None` instead.
    ZeroWriteBudget,
}

impl fmt::Display for FaultOptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidStrikeMean => {
                write!(f, "mean_cycles_between_strikes must be finite and >= 1.0")
            }
            Self::ZeroRetryLimit => write!(f, "due_retry_limit must be >= 1"),
            Self::ZeroQuarantineThreshold => write!(f, "quarantine_due_threshold must be >= 1"),
            Self::ZeroScrubInterval => write!(f, "scrub_interval must be >= 1 (None disables)"),
            Self::ZeroWriteBudget => write!(f, "line_write_budget must be >= 1 (None disables)"),
        }
    }
}

impl std::error::Error for FaultOptionsError {}

/// Validating builder for [`LiveFaultOptions`].
///
/// Setters are chainable and unchecked; [`build`](Self::build) performs
/// all validation at once so a caller gets the first structural problem
/// as a typed [`FaultOptionsError`] instead of a mid-run panic from the
/// injector.
#[derive(Debug, Clone)]
pub struct LiveFaultOptionsBuilder {
    opts: LiveFaultOptions,
}

impl LiveFaultOptionsBuilder {
    /// Sets the MBU cluster-size distribution.
    #[must_use]
    pub fn mbu(mut self, mbu: MbuDistribution) -> Self {
        self.opts.mbu = mbu;
        self
    }

    /// Sets the mean strike inter-arrival time in cycles.
    #[must_use]
    pub fn mean_cycles_between_strikes(mut self, mean: f64) -> Self {
        self.opts.mean_cycles_between_strikes = mean;
        self
    }

    /// Enables the scrub daemon with the given period in cycles.
    #[must_use]
    pub fn scrub_interval(mut self, interval: u64) -> Self {
        self.opts.scrub_interval = Some(interval);
        self
    }

    /// Sets the DUE re-fetch retry bound.
    #[must_use]
    pub fn due_retry_limit(mut self, limit: u32) -> Self {
        self.opts.due_retry_limit = limit;
        self
    }

    /// Sets how many DUE traps quarantine a word line.
    #[must_use]
    pub fn quarantine_due_threshold(mut self, threshold: u32) -> Self {
        self.opts.quarantine_due_threshold = threshold;
        self
    }

    /// Enables STT-RAM wear quarantine with the given per-line budget.
    #[must_use]
    pub fn line_write_budget(mut self, budget: u64) -> Self {
        self.opts.line_write_budget = Some(budget);
        self
    }

    /// Restricts strikes to regions filling `roles`.
    #[must_use]
    pub fn restrict_to(mut self, roles: Vec<RegionRole>) -> Self {
        self.opts.restrict_to = Some(roles);
        self
    }

    /// Selects the simulator's reference fault path (the differential
    /// oracle) instead of the event-gated fast path.
    #[must_use]
    pub fn reference_path(mut self, reference: bool) -> Self {
        self.opts.reference_path = reference;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultOptionsError`] among: a non-finite or
    /// sub-1.0 strike mean, a zero retry limit, a zero quarantine
    /// threshold, a zero scrub interval, or a zero write budget.
    pub fn build(self) -> Result<LiveFaultOptions, FaultOptionsError> {
        let o = &self.opts;
        if !o.mean_cycles_between_strikes.is_finite() || o.mean_cycles_between_strikes < 1.0 {
            return Err(FaultOptionsError::InvalidStrikeMean);
        }
        if o.due_retry_limit == 0 {
            return Err(FaultOptionsError::ZeroRetryLimit);
        }
        if o.quarantine_due_threshold == 0 {
            return Err(FaultOptionsError::ZeroQuarantineThreshold);
        }
        if o.scrub_interval == Some(0) {
            return Err(FaultOptionsError::ZeroScrubInterval);
        }
        if o.line_write_budget == Some(0) {
            return Err(FaultOptionsError::ZeroWriteBudget);
        }
        Ok(self.opts)
    }
}

impl LiveFaultOptions {
    /// Defaults matching [`FaultConfig::new`]: 40 nm MBU distribution,
    /// 3 retries, quarantine after 3 DUEs, scrubbing and wear budget off.
    pub fn new(seed: u64, mean_cycles_between_strikes: f64) -> Self {
        Self {
            mbu: MbuDistribution::default(),
            mean_cycles_between_strikes,
            seed,
            scrub_interval: None,
            due_retry_limit: 3,
            quarantine_due_threshold: 3,
            line_write_budget: None,
            restrict_to: None,
            reference_path: false,
        }
    }

    /// A validating [`LiveFaultOptionsBuilder`] seeded with
    /// [`LiveFaultOptions::new`]'s defaults.
    pub fn builder(seed: u64, mean_cycles_between_strikes: f64) -> LiveFaultOptionsBuilder {
        LiveFaultOptionsBuilder {
            opts: Self::new(seed, mean_cycles_between_strikes),
        }
    }

    /// Lowers the options onto `structure`: roles become region ids and
    /// the demotion map comes from the core remap policy.
    pub(crate) fn config(&self, structure: &SpmStructure) -> FaultConfig {
        let mut cfg = FaultConfig::new(self.seed, self.mean_cycles_between_strikes);
        cfg.mbu = self.mbu;
        cfg.scrub_interval = self.scrub_interval;
        cfg.due_retry_limit = self.due_retry_limit;
        cfg.quarantine_due_threshold = self.quarantine_due_threshold;
        cfg.line_write_budget = self.line_write_budget;
        cfg.targets = self.restrict_to.as_ref().map(|roles| {
            roles
                .iter()
                .filter_map(|r| structure.region_id(*r))
                .collect()
        });
        cfg.demotion = remap::demotion_map(structure, self.mbu);
        cfg.reference_path = self.reference_path;
        cfg
    }
}

/// Runs `workload` on `structure` under `mapping` and collects metrics.
///
/// `profile` must be the profiling-pass output for the same workload (it
/// feeds the analytic vulnerability model).
///
/// # Panics
///
/// Panics on simulator errors — mappings produced by MDA are valid by
/// construction.
#[deprecated(
    since = "0.1.0",
    note = "use RunBuilder: .workload(w).structure(s, kind).mapping(m).profile(p).run()"
)]
pub fn run_on_structure(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
) -> RunMetrics {
    run_inner(
        workload,
        structure,
        kind,
        mapping,
        profile,
        None,
        &mut NullObserver,
    )
}

/// Like [`run_on_structure`], but with live fault injection, recovery,
/// scrubbing and graceful degradation active during the run. The
/// resulting [`RunMetrics::recovery`] carries the fault counters.
///
/// # Panics
///
/// Panics on simulator errors, as [`run_on_structure`] does.
#[deprecated(
    since = "0.1.0",
    note = "use RunBuilder: .workload(w).structure(s, kind).mapping(m).profile(p).faults(f).run()"
)]
pub fn run_on_structure_faulted(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: &LiveFaultOptions,
) -> RunMetrics {
    run_inner(
        workload,
        structure,
        kind,
        mapping,
        profile,
        Some(faults),
        &mut NullObserver,
    )
}

pub(crate) fn run_inner(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: Option<&LiveFaultOptions>,
    observer: &mut dyn Observer,
) -> RunMetrics {
    try_run_inner(
        workload, structure, kind, mapping, profile, faults, None, observer,
    )
    .expect("run without a deadline cannot be cancelled")
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run_inner(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: Option<&LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    observer: &mut dyn Observer,
) -> Result<RunMetrics, RunError> {
    let program = workload.program().clone();
    let placement = mapping
        .placement(&program, structure)
        .expect("MDA placements fit by construction");
    let mut config = MachineConfig::with_regions(structure.specs());
    if let Some(opts) = faults {
        config = config.with_faults(opts.config(structure));
    }
    config.deadline_cycles = deadline_cycles;
    let mut machine = Machine::new(config, program, placement).expect("structure machine");
    workload.init(machine.dram_mut());
    let checksum = {
        let mut cpu = Cpu::new(&mut machine, observer);
        match workload.run(&mut cpu) {
            Ok(checksum) => checksum,
            Err(SimError::DeadlineExceeded {
                cycle,
                deadline_cycles,
            }) => {
                return Err(RunError::DeadlineExceeded {
                    deadline_cycles,
                    cycle,
                })
            }
            Err(e) => panic!("mapped run failed: {e}"),
        }
    };
    let stats = machine.finish(observer);
    Ok(collect_run_metrics(
        kind,
        workload.name(),
        checksum == workload.expected_checksum(),
        &stats,
        profile,
        mapping,
        structure,
    ))
}

/// Folds a finished machine's statistics into [`RunMetrics`] — shared by
/// the single-core and multi-core run paths so their artifacts are
/// field-for-field comparable.
fn collect_run_metrics(
    kind: StructureKind,
    workload_name: &str,
    checksum_ok: bool,
    stats: &ftspm_sim::MachineStats,
    profile: &Profile,
    mapping: MdaOutput,
    structure: &SpmStructure,
) -> RunMetrics {
    let vuln = reliability::vulnerability(profile, &mapping, structure, MbuDistribution::default());
    let spm_energy = stats.spm_energy();
    let stt_regions = || {
        stats
            .regions
            .iter()
            .zip(structure.regions())
            .filter(|(_, (_, spec))| spec.technology() == Technology::SttRam)
    };
    let stt_max_line_writes = stt_regions()
        .map(|(r, _)| r.max_line_writes)
        .max()
        .unwrap_or(0);
    let stt_total_writes = stt_regions().map(|(r, _)| r.total_writes).sum();
    let stt_lines = stt_regions()
        .map(|(_, (_, spec))| spec.geometry().words())
        .sum();
    RunMetrics {
        structure: kind,
        workload: workload_name.to_string(),
        cycles: stats.cycles,
        instructions: stats.instructions,
        spm_dynamic_pj: spm_energy.dynamic_pj(),
        spm_static_pj: spm_energy.static_pj,
        spm_leakage_mw: stats.spm_leakage_mw(),
        vulnerability: vuln.vulnerability(),
        reliability: vuln.reliability(),
        stt_max_line_writes,
        stt_total_writes,
        stt_lines,
        traffic: stats
            .regions
            .iter()
            .map(|r| RegionTraffic {
                region: r.name.clone(),
                reads: r.program_reads,
                writes: r.program_writes,
            })
            .collect(),
        checksum_ok,
        recovery: stats.faults,
        mapping,
        vulnerability_report: vuln,
    }
}

/// Per-block sharer counts (how many cores touched each block) from a
/// finished multi-core machine, in block-id order.
fn sharer_counts(mm: &MultiMachine, program: &Program) -> Vec<u32> {
    program
        .iter()
        .map(|(id, _)| mm.machine().sharer_mask(id).count_ones())
        .collect()
}

/// The profiling pass for an N-core workload: the same ideal
/// placement-neutral structure as [`profile_workload`], executed in
/// deterministic lockstep on a [`MultiMachine`]. Returns the profile
/// plus per-block sharer counts — the extra dimension
/// [`ftspm_core::mda::run_mda_multicore`] weights by.
///
/// # Errors
///
/// [`RunError::DeadlineExceeded`] when the budget runs out mid-profile.
///
/// # Panics
///
/// Panics on any other simulator error — workloads are trusted fixtures.
pub fn try_profile_multi_workload(
    workload: &mut dyn MultiWorkload,
    deadline_cycles: Option<u64>,
) -> Result<(Profile, Vec<u32>), RunError> {
    let program = workload.program().clone();
    let structure = profiling_structure();
    let placement = map_everything(&program, &structure);
    let mut config = MachineConfig::with_regions(structure.specs());
    config.deadline_cycles = deadline_cycles;
    let mut mm = MultiMachine::new(config, program.clone(), placement, workload.cores())
        .expect("profiling machine");
    workload.init(mm.machine_mut().dram_mut());
    let mut profiler = Profiler::new(&program);
    match run_lockstep(&mut mm, workload, &mut profiler) {
        Ok(_) => {}
        Err(SimError::DeadlineExceeded {
            cycle,
            deadline_cycles,
        }) => {
            return Err(RunError::DeadlineExceeded {
                deadline_cycles,
                cycle,
            })
        }
        Err(e) => panic!("multi-core profiling run failed: {e}"),
    }
    let cycles = mm.machine().cycle();
    let sharers = sharer_counts(&mm, &program);
    mm.finish(&mut profiler);
    Ok((profiler.finish(&program, cycles), sharers))
}

/// Runs an N-core workload on `structure` under `mapping` in
/// deterministic lockstep and collects [`MultiRunMetrics`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run_multi_inner(
    workload: &mut dyn MultiWorkload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: Option<&LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    observer: &mut dyn Observer,
) -> Result<MultiRunMetrics, RunError> {
    let program = workload.program().clone();
    let placement = mapping
        .placement(&program, structure)
        .expect("MDA placements fit by construction");
    let mut config = MachineConfig::with_regions(structure.specs());
    if let Some(opts) = faults {
        config = config.with_faults(opts.config(structure));
    }
    config.deadline_cycles = deadline_cycles;
    let mut mm = MultiMachine::new(config, program.clone(), placement, workload.cores())
        .expect("structure machine");
    workload.init(mm.machine_mut().dram_mut());
    let checksum = match run_lockstep(&mut mm, workload, observer) {
        Ok(checksum) => checksum,
        Err(SimError::DeadlineExceeded {
            cycle,
            deadline_cycles,
        }) => {
            return Err(RunError::DeadlineExceeded {
                deadline_cycles,
                cycle,
            })
        }
        Err(e) => panic!("mapped multi-core run failed: {e}"),
    };
    let sharers = sharer_counts(&mm, &program);
    let stats = mm.finish(observer);
    let coherence = mm.coherence_stats();
    let per_core = mm.core_fault_views().to_vec();
    let cores = workload.cores();
    let base = collect_run_metrics(
        kind,
        workload.name(),
        checksum == workload.expected_checksum(),
        &stats,
        profile,
        mapping,
        structure,
    );
    Ok(MultiRunMetrics {
        base,
        cores,
        coherence,
        per_core,
        sharer_counts: sharers,
    })
}

/// [`try_run_inner`] routed through a 1-core [`MultiMachine`]: the
/// differential oracle proving the multi-core machinery is inert at one
/// core — same workload, same mapping, byte-identical artifacts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run_single_via_multi(
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: Option<&LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    observer: &mut dyn Observer,
) -> Result<RunMetrics, RunError> {
    let program = workload.program().clone();
    let placement = mapping
        .placement(&program, structure)
        .expect("MDA placements fit by construction");
    let mut config = MachineConfig::with_regions(structure.specs());
    if let Some(opts) = faults {
        config = config.with_faults(opts.config(structure));
    }
    config.deadline_cycles = deadline_cycles;
    let mut mm = MultiMachine::new(config, program, placement, 1).expect("structure machine");
    workload.init(mm.machine_mut().dram_mut());
    let checksum = match mm.with_core(0, observer, |cpu| workload.run(cpu)) {
        Ok(checksum) => checksum,
        Err(SimError::DeadlineExceeded {
            cycle,
            deadline_cycles,
        }) => {
            return Err(RunError::DeadlineExceeded {
                deadline_cycles,
                cycle,
            })
        }
        Err(e) => panic!("mapped run failed: {e}"),
    };
    let stats = mm.finish(observer);
    Ok(collect_run_metrics(
        kind,
        workload.name(),
        checksum == workload.expected_checksum(),
        &stats,
        profile,
        mapping,
        structure,
    ))
}

/// Profiles `workload`, maps it with MDA under `optimize`, and measures
/// it on FTSPM and both baselines.
pub fn evaluate_workload(workload: &mut dyn Workload, optimize: OptimizeFor) -> WorkloadEvaluation {
    evaluate_workload_observed(workload, optimize, &mut NullObserver)
}

/// [`evaluate_workload`] with an observer watching all three mapped
/// runs (the profiling pass reports to the profiler, not `observer`).
pub(crate) fn evaluate_workload_observed(
    workload: &mut dyn Workload,
    optimize: OptimizeFor,
    observer: &mut dyn Observer,
) -> WorkloadEvaluation {
    let profile = profile_workload(workload);
    let program = workload.program().clone();

    let ftspm_structure = SpmStructure::ftspm();
    let ftspm_mapping = run_mda(&program, &profile, &ftspm_structure, &optimize.thresholds());
    let ftspm = run_inner(
        workload,
        &ftspm_structure,
        StructureKind::Ftspm,
        ftspm_mapping,
        &profile,
        None,
        observer,
    );

    let sram_structure = SpmStructure::pure_sram();
    let sram_mapping = run_baseline(&program, &profile, &sram_structure);
    let pure_sram = run_inner(
        workload,
        &sram_structure,
        StructureKind::PureSram,
        sram_mapping,
        &profile,
        None,
        observer,
    );

    let stt_structure = SpmStructure::pure_stt();
    let stt_mapping = run_baseline(&program, &profile, &stt_structure);
    let pure_stt = run_inner(
        workload,
        &stt_structure,
        StructureKind::PureStt,
        stt_mapping,
        &profile,
        None,
        observer,
    );

    WorkloadEvaluation {
        workload: workload.name().to_string(),
        profile,
        ftspm,
        pure_sram,
        pure_stt,
    }
}

/// Evaluates a whole workload set, one workload per executor task
/// (`ftspm_testkit::par`, honoring the `FTSPM_THREADS` knob).
///
/// Each workload's evaluation is an independent deterministic
/// simulation and results return in input order, so the suite output is
/// identical at every thread count, including 1.
#[deprecated(
    since = "0.1.0",
    note = "use RunBuilder::new().run_suite(workloads, optimize)"
)]
pub fn evaluate_suite(
    workloads: Vec<Box<dyn Workload>>,
    optimize: OptimizeFor,
) -> Vec<WorkloadEvaluation> {
    crate::RunBuilder::new().run_suite(workloads, optimize)
}

/// [`evaluate_suite`] with an explicit thread count — the entry point
/// the determinism tests use to compare sequential and parallel runs.
#[deprecated(
    since = "0.1.0",
    note = "use RunBuilder::new().threads(n).run_suite(workloads, optimize)"
)]
pub fn evaluate_suite_threads(
    workloads: Vec<Box<dyn Workload>>,
    optimize: OptimizeFor,
    threads: std::num::NonZeroUsize,
) -> Vec<WorkloadEvaluation> {
    crate::RunBuilder::new()
        .threads(threads)
        .run_suite(workloads, optimize)
}
