//! Crash-only campaign journal: append-only, CRC-framed shard records.
//!
//! A campaign that shards work over `ftspm_testkit::par` appends one
//! opaque payload per *completed* shard. If the process is `kill -9`'d
//! mid-campaign, the journal survives and a resumed run skips every
//! shard whose record decoded cleanly — and because each shard is an
//! independent deterministic simulation, the resumed final report is
//! byte-identical to an uninterrupted run.
//!
//! ## Framing
//!
//! ```text
//! magic  b"FTSPMJNL"            8 bytes
//! version u32 LE (currently 1)  4 bytes
//! record: len u32 LE | crc32 u32 LE | payload   (repeated)
//! ```
//!
//! The CRC is IEEE CRC-32 over the payload alone. Decoding
//! discriminates two failure shapes:
//!
//! - **Torn tail** ([`Tail::Torn`]): the file ends mid-record (inside
//!   the length/CRC header or short of `len` payload bytes). This is
//!   the expected signature of a crash between the start and end of a
//!   write, so it is *not* an error — the complete prefix is returned
//!   and the torn bytes are dropped; determinism recomputes that shard.
//! - **Corruption** ([`DecodeError::Corrupt`]): a *complete* record
//!   whose CRC does not match, or a header that is not this format.
//!   That is never a crash signature (writes are tmp+rename atomic), so
//!   it is a hard error rather than a silent wrong resume.
//!
//! ## Durability
//!
//! [`Journal::append`] rewrites the whole journal to `<path>.tmp`,
//! `fsync`s it, renames it over `<path>`, and `fsync`s the parent
//! directory — so at every instant the on-disk journal is a complete
//! prefix of campaign history and a torn main file can only come from
//! storage-level damage, which the CRC framing then catches.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic: the first 8 bytes of every journal.
pub const MAGIC: [u8; 8] = *b"FTSPMJNL";

/// Current framing version.
pub const VERSION: u32 = 1;

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected), bitwise.
///
/// Journal payloads are small (a handful of rendered artifacts per
/// shard), so the table-free form is plenty and keeps the module
/// dependency-free.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What the decoder found at the end of the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The stream ended exactly on a record boundary.
    Clean,
    /// The stream ended mid-record (torn header, torn CRC, or payload
    /// shorter than its declared length). The complete prefix decoded;
    /// the torn bytes carry no usable record and were dropped.
    Torn,
}

/// A journal byte stream that cannot be decoded at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The stream does not start with [`MAGIC`] + [`VERSION`] (and is
    /// not a torn prefix of them): it is not a journal of this format.
    BadHeader,
    /// Record `index` is complete (its full payload is present) but its
    /// stored CRC does not match the payload. Atomic writes never
    /// produce this, so resuming would risk trusting damaged results.
    Corrupt {
        /// Zero-based index of the damaged record.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader => write!(f, "not an FTSPM journal (bad magic or version)"),
            Self::Corrupt { index } => {
                write!(f, "journal record {index} is complete but fails its CRC")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors from [`Journal::open`]: the decode failures plus plain I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// The file exists but does not decode (see [`DecodeError`]).
    Decode(DecodeError),
    /// Reading or writing the file failed.
    Io(io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Decode(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "journal I/O: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Decode(e) => Some(e),
            Self::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for JournalError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

/// Decodes a journal byte stream into its complete records.
///
/// An empty stream is a valid empty journal. A stream that ends
/// mid-record yields the complete prefix with [`Tail::Torn`]. This
/// never panics, whatever the input.
///
/// # Errors
///
/// [`DecodeError::BadHeader`] when the stream is not this format;
/// [`DecodeError::Corrupt`] when a *complete* record fails its CRC.
pub fn decode(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, Tail), DecodeError> {
    if bytes.is_empty() {
        return Ok((Vec::new(), Tail::Clean));
    }
    let mut header = [0u8; 12];
    header[..8].copy_from_slice(&MAGIC);
    header[8..].copy_from_slice(&VERSION.to_le_bytes());
    if bytes.len() < header.len() {
        return if header.starts_with(bytes) {
            Ok((Vec::new(), Tail::Torn))
        } else {
            Err(DecodeError::BadHeader)
        };
    }
    if bytes[..header.len()] != header {
        return Err(DecodeError::BadHeader);
    }
    let mut rest = &bytes[header.len()..];
    let mut records = Vec::new();
    loop {
        if rest.is_empty() {
            return Ok((records, Tail::Clean));
        }
        if rest.len() < 8 {
            // Cut inside the length or CRC field — the named
            // mid-CRC-cut case lands here.
            return Ok((records, Tail::Torn));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            return Ok((records, Tail::Torn));
        };
        if crc32(payload) != stored_crc {
            return Err(DecodeError::Corrupt {
                index: records.len(),
            });
        }
        records.push(payload.to_vec());
        rest = &rest[8 + len..];
    }
}

/// Encodes `records` into journal bytes (header + framed records).
#[must_use]
pub fn encode(records: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = records.iter().map(|r| 8 + r.len()).sum();
    let mut out = Vec::with_capacity(12 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    for record in records {
        out.extend_from_slice(
            &u32::try_from(record.len())
                .expect("record < 4 GiB")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32(record).to_le_bytes());
        out.extend_from_slice(record);
    }
    out
}

/// Appends completed this process, for the `FTSPM_JOURNAL_CRASH_AFTER`
/// crash-testing knob (process-wide: campaigns run one journal).
static APPENDS: AtomicU64 = AtomicU64::new(0);

/// `kill -9` stand-in for CI: when `FTSPM_JOURNAL_CRASH_AFTER=n` is
/// set, the process aborts — no unwinding, no flushing, exactly like a
/// SIGKILL — immediately after the `n`-th successful append.
fn maybe_crash_after_append() {
    if let Ok(v) = std::env::var("FTSPM_JOURNAL_CRASH_AFTER") {
        if let Ok(n) = v.parse::<u64>() {
            if APPENDS.fetch_add(1, Ordering::SeqCst) + 1 >= n {
                std::process::abort();
            }
        }
    }
}

/// An append-only campaign journal backed by a file.
///
/// Payloads are opaque to the journal; campaigns store whatever lets
/// them skip a completed shard on resume (the recovery sweep stores the
/// shard's rendered artifacts keyed by cell index).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<Vec<u8>>,
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any existing file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the header.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let journal = Self {
            path: path.into(),
            records: Vec::new(),
        };
        journal.persist()?;
        Ok(journal)
    }

    /// Opens an existing journal, tolerating a torn tail (the complete
    /// prefix loads; the torn bytes are dropped and will be rewritten
    /// away by the next [`append`](Self::append)). A missing file opens
    /// as an empty journal, so "resume" and "start" are one code path.
    ///
    /// # Errors
    ///
    /// [`JournalError::Decode`] when the file is not a journal or a
    /// complete record fails its CRC; [`JournalError::Io`] on I/O
    /// failures other than the file not existing.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Self, Tail), JournalError> {
        let path = path.into();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (records, tail) = decode(&bytes)?;
        Ok((Self { path, records }, tail))
    }

    /// The journal's complete records, in append order.
    #[must_use]
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// The backing file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and durably persists the journal before
    /// returning — after `append` returns, a `kill -9` cannot lose the
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the in-memory record list is unchanged
    /// when persisting fails.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        self.records.push(payload.to_vec());
        if let Err(e) = self.persist() {
            self.records.pop();
            return Err(e);
        }
        maybe_crash_after_append();
        Ok(())
    }

    /// Whole-file tmp+rename rewrite: the on-disk journal atomically
    /// goes from one complete prefix to the next, never through a
    /// partially-written state.
    fn persist(&self) -> Result<(), JournalError> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encode(&self.records))?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            let parent = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            // Make the rename itself durable. Directory fsync can be
            // unsupported on exotic filesystems; the rename already
            // happened, so treat that as best-effort.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}
