//! Result types collected from an evaluated run.

use ftspm_core::mda::MdaOutput;
use ftspm_core::reliability::VulnerabilityReport;
use ftspm_profile::Profile;

/// Which of the three compared structures a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// The proposed hybrid structure.
    Ftspm,
    /// The pure SEC-DED SRAM baseline.
    PureSram,
    /// The pure STT-RAM baseline.
    PureStt,
}

impl StructureKind {
    /// All three, in the paper's comparison order.
    pub const ALL: [StructureKind; 3] = [
        StructureKind::Ftspm,
        StructureKind::PureSram,
        StructureKind::PureStt,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::Ftspm => "FTSPM",
            StructureKind::PureSram => "pure SRAM",
            StructureKind::PureStt => "pure STT-RAM",
        }
    }
}

/// Program (non-DMA) traffic served by one SPM region (Figs. 2 and 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Region name.
    pub region: String,
    /// Program reads (including instruction fetches).
    pub reads: u64,
    /// Program writes.
    pub writes: u64,
}

/// Everything measured from one workload on one structure.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// The structure the run used.
    pub structure: StructureKind,
    /// Workload name.
    pub workload: String,
    /// Total cycles of the mapped run.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// SPM dynamic energy, pJ (Fig. 7's quantity).
    pub spm_dynamic_pj: f64,
    /// SPM static (leakage) energy over the run, pJ (Fig. 6's quantity).
    pub spm_static_pj: f64,
    /// SPM leakage power, mW.
    pub spm_leakage_mw: f64,
    /// Analytic vulnerability (Fig. 5's quantity).
    pub vulnerability: f64,
    /// `1 − vulnerability` (§IV's headline).
    pub reliability: f64,
    /// Peak per-line write count across STT-RAM regions (Table III /
    /// Fig. 8 input); 0 when the structure has no STT-RAM.
    pub stt_max_line_writes: u64,
    /// Total writes absorbed by STT-RAM lines (wear-levelling model).
    pub stt_total_writes: u64,
    /// Word lines across the STT-RAM regions.
    pub stt_lines: u32,
    /// Per-region program traffic (Figs. 2 / 4).
    pub traffic: Vec<RegionTraffic>,
    /// Whether the run's checksum matched the host reference.
    pub checksum_ok: bool,
    /// Live fault-injection and recovery counters (`None` for clean
    /// runs; set when [`crate::RunBuilder::faults`] is attached).
    pub recovery: Option<ftspm_sim::FaultStats>,
    /// The mapping that produced the run.
    pub mapping: MdaOutput,
    /// The full vulnerability report.
    pub vulnerability_report: VulnerabilityReport,
}

impl RunMetrics {
    /// Total program accesses served by the SPM.
    pub fn spm_accesses(&self) -> u64 {
        self.traffic.iter().map(|t| t.reads + t.writes).sum()
    }
}

/// [`RunMetrics`] plus the sharing-side measurements only an N-core run
/// produces.
#[derive(Debug, Clone)]
pub struct MultiRunMetrics {
    /// The single-machine metrics of the shared backend (cycles, energy,
    /// vulnerability, recovery, …) — comparable 1:1 with a plain run.
    pub base: RunMetrics,
    /// Core count of the run.
    pub cores: usize,
    /// Bus-level coherence counters (invalidations, dirty flushes,
    /// shared-block fault propagation).
    pub coherence: ftspm_sim::CoherenceStats,
    /// Per-core fault observation views, indexed by core.
    pub per_core: Vec<ftspm_sim::CoreFaultView>,
    /// Per-block sharer counts (how many cores touched each block),
    /// in block-id order — the input [`ftspm_core::mda::run_mda_multicore`]
    /// weights by.
    pub sharer_counts: Vec<u32>,
}

/// One workload evaluated on all three structures.
#[derive(Debug, Clone)]
pub struct WorkloadEvaluation {
    /// Workload name.
    pub workload: String,
    /// The profiling-phase output (Table I for this workload).
    pub profile: Profile,
    /// FTSPM run.
    pub ftspm: RunMetrics,
    /// Pure SEC-DED SRAM baseline run.
    pub pure_sram: RunMetrics,
    /// Pure STT-RAM baseline run.
    pub pure_stt: RunMetrics,
}

impl WorkloadEvaluation {
    /// The run for a given structure.
    pub fn run(&self, s: StructureKind) -> &RunMetrics {
        match s {
            StructureKind::Ftspm => &self.ftspm,
            StructureKind::PureSram => &self.pure_sram,
            StructureKind::PureStt => &self.pure_stt,
        }
    }

    /// All three runs passed their checksum self-check.
    pub fn all_checksums_ok(&self) -> bool {
        self.ftspm.checksum_ok && self.pure_sram.checksum_ok && self.pure_stt.checksum_ok
    }
}
