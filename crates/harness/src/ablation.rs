//! Ablation studies over the design choices DESIGN.md calls out:
//! the D-SPM size split, the STT-RAM write threshold, and the MBU size
//! distribution (technology node).

use std::fmt::Write as _;

use ftspm_core::mda::{run_mda, MapDecision};
use ftspm_core::{reliability, MdaThresholds, OptimizeFor, SpmStructure};
use ftspm_ecc::MbuDistribution;
use ftspm_workloads::Workload;

use crate::builder::RunBuilder;
use crate::metrics::StructureKind;
use crate::pipeline::profile_workload;

/// One row of the size-split ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeSplitRow {
    /// STT / ECC / parity KiB of the data SPM.
    pub split: (u64, u64, u64),
    /// Run cycles.
    pub cycles: u64,
    /// Analytic vulnerability.
    pub vulnerability: f64,
    /// SPM dynamic energy, pJ.
    pub dynamic_pj: f64,
    /// SPM leakage, mW.
    pub leakage_mw: f64,
    /// Hottest STT line writes.
    pub stt_max_line_writes: u64,
}

/// Sweeps the data-SPM split (STT/ECC/parity KiB, total 16) for one
/// workload and returns a row per split.
///
/// The paper fixes 12/2/2 without justification; this sweep shows the
/// trade-off that choice sits on.
pub fn size_split_sweep(
    workload: &mut dyn Workload,
    splits: &[(u64, u64, u64)],
    optimize: OptimizeFor,
) -> Vec<SizeSplitRow> {
    let profile = profile_workload(workload);
    let program = workload.program().clone();
    splits
        .iter()
        .map(|&(stt, ecc, parity)| {
            assert_eq!(stt + ecc + parity, 16, "data SPM stays 16 KiB");
            let structure = SpmStructure::ftspm_with_sizes(16, stt, ecc, parity);
            let mapping = run_mda(&program, &profile, &structure, &optimize.thresholds());
            let run = RunBuilder::new()
                .workload(workload)
                .structure(&structure, StructureKind::Ftspm)
                .mapping(mapping)
                .profile(&profile)
                .run();
            assert!(run.checksum_ok, "ablation run must self-verify");
            SizeSplitRow {
                split: (stt, ecc, parity),
                cycles: run.cycles,
                vulnerability: run.vulnerability,
                dynamic_pj: run.spm_dynamic_pj,
                leakage_mw: run.spm_leakage_mw,
                stt_max_line_writes: run.stt_max_line_writes,
            }
        })
        .collect()
}

/// Renders a size-split sweep.
pub fn render_size_split(workload: &str, rows: &[SizeSplitRow]) -> String {
    let mut s = format!("Ablation — D-SPM size split (STT/ECC/parity KiB), {workload}\n");
    let _ = writeln!(
        s,
        "{:<12} {:>12} {:>14} {:>14} {:>10} {:>12}",
        "split", "cycles", "vulnerability", "dynamic (pJ)", "leak (mW)", "hottest line"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>2}/{:>2}/{:>2}     {:>12} {:>14.4} {:>14.0} {:>10.2} {:>12}",
            r.split.0,
            r.split.1,
            r.split.2,
            r.cycles,
            r.vulnerability,
            r.dynamic_pj,
            r.leakage_mw,
            r.stt_max_line_writes
        );
    }
    s
}

/// One row of the write-threshold ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRow {
    /// The per-block STT write budget.
    pub threshold: u64,
    /// Data blocks left in STT-RAM.
    pub blocks_in_stt: usize,
    /// Analytic vulnerability.
    pub vulnerability: f64,
    /// Hottest STT line writes.
    pub stt_max_line_writes: u64,
    /// Run cycles.
    pub cycles: u64,
}

/// Sweeps the endurance write threshold (Algorithm 1, line 24) for one
/// workload: tighter budgets empty the STT region, trading vulnerability
/// for wear.
pub fn write_threshold_sweep(workload: &mut dyn Workload, thresholds: &[u64]) -> Vec<ThresholdRow> {
    let profile = profile_workload(workload);
    let program = workload.program().clone();
    let structure = SpmStructure::ftspm();
    thresholds
        .iter()
        .map(|&t| {
            let base = OptimizeFor::Reliability.thresholds();
            let th = MdaThresholds::new(base.perf_overhead_frac, base.energy_overhead_frac, t);
            let mapping = run_mda(&program, &profile, &structure, &th);
            let in_stt = mapping.blocks_with(MapDecision::DataStt).len();
            let run = RunBuilder::new()
                .workload(workload)
                .structure(&structure, StructureKind::Ftspm)
                .mapping(mapping)
                .profile(&profile)
                .run();
            assert!(run.checksum_ok);
            ThresholdRow {
                threshold: t,
                blocks_in_stt: in_stt,
                vulnerability: run.vulnerability,
                stt_max_line_writes: run.stt_max_line_writes,
                cycles: run.cycles,
            }
        })
        .collect()
}

/// Renders a write-threshold sweep.
pub fn render_write_threshold(workload: &str, rows: &[ThresholdRow]) -> String {
    let mut s = format!("Ablation — STT write threshold, {workload}\n");
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>14} {:>14} {:>12}",
        "threshold", "in STT", "vulnerability", "hottest line", "cycles"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>14.4} {:>14} {:>12}",
            r.threshold, r.blocks_in_stt, r.vulnerability, r.stt_max_line_writes, r.cycles
        );
    }
    s
}

/// One row of the write-fraction crossover study.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    /// Fraction of data accesses that are writes.
    pub write_fraction: f64,
    /// Pure-SRAM SPM dynamic energy, pJ.
    pub sram_pj: f64,
    /// Pure-STT SPM dynamic energy, pJ.
    pub stt_pj: f64,
    /// FTSPM dynamic energy, pJ.
    pub ftspm_pj: f64,
    /// Pure-SRAM cycles.
    pub sram_cycles: u64,
    /// Pure-STT cycles.
    pub stt_cycles: u64,
}

/// Sweeps the synthetic workload's write fraction and measures dynamic
/// energy on all three structures — locating the crossover where pure
/// STT-RAM's expensive writes overtake its cheap reads (the structural
/// reason FTSPM exists).
pub fn write_fraction_sweep(fractions: &[f64]) -> Vec<CrossoverRow> {
    use crate::pipeline::evaluate_workload;
    fractions
        .iter()
        .map(|&wf| {
            let mut w = ftspm_workloads::Synthetic::new(ftspm_workloads::SyntheticConfig {
                write_fraction: wf,
                ..Default::default()
            });
            let eval = evaluate_workload(&mut w, OptimizeFor::Reliability);
            assert!(eval.all_checksums_ok());
            CrossoverRow {
                write_fraction: wf,
                sram_pj: eval.pure_sram.spm_dynamic_pj,
                stt_pj: eval.pure_stt.spm_dynamic_pj,
                ftspm_pj: eval.ftspm.spm_dynamic_pj,
                sram_cycles: eval.pure_sram.cycles,
                stt_cycles: eval.pure_stt.cycles,
            }
        })
        .collect()
}

/// Renders a write-fraction crossover sweep.
pub fn render_crossover(rows: &[CrossoverRow]) -> String {
    let mut s = String::from("Crossover — dynamic energy vs write fraction (synthetic workload)\n");
    let _ = writeln!(
        s,
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "writes", "pure SRAM pJ", "pure STT pJ", "FTSPM pJ", "STT/SRAM"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10.2} {:>14.0} {:>14.0} {:>14.0} {:>12.2}",
            r.write_fraction,
            r.sram_pj,
            r.stt_pj,
            r.ftspm_pj,
            r.stt_pj / r.sram_pj
        );
    }
    s
}

/// Named MBU distributions for the technology-node sensitivity study.
///
/// Older nodes see almost exclusively single-bit upsets; scaling shifts
/// mass into multi-bit clusters (the trend Dixit & Wood report). The
/// 40 nm row is the paper's.
pub fn mbu_nodes() -> Vec<(&'static str, MbuDistribution)> {
    vec![
        ("130nm", MbuDistribution::new(0.95, 0.04, 0.007, 0.003)),
        ("65nm", MbuDistribution::new(0.80, 0.15, 0.03, 0.02)),
        ("40nm (paper)", MbuDistribution::DIXIT_WOOD_40NM),
        ("22nm (proj.)", MbuDistribution::new(0.45, 0.30, 0.12, 0.13)),
    ]
}

/// One row of the MBU sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct MbuRow {
    /// Node label.
    pub node: &'static str,
    /// Pure-SRAM (SEC-DED) vulnerability.
    pub pure_sram: f64,
    /// FTSPM vulnerability.
    pub ftspm: f64,
}

/// Evaluates one workload's vulnerability under each node's MBU
/// distribution (mapping fixed at the paper's 40 nm thresholds, as the
/// mapper has no technology input).
pub fn mbu_sweep(workload: &mut dyn Workload) -> Vec<MbuRow> {
    let profile = profile_workload(workload);
    let program = workload.program().clone();
    let ftspm_structure = SpmStructure::ftspm();
    let sram_structure = SpmStructure::pure_sram();
    let mapping = run_mda(
        &program,
        &profile,
        &ftspm_structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let sram_mapping = ftspm_core::mda::run_baseline(&program, &profile, &sram_structure);
    mbu_nodes()
        .into_iter()
        .map(|(node, mbu)| MbuRow {
            node,
            pure_sram: reliability::vulnerability(&profile, &sram_mapping, &sram_structure, mbu)
                .vulnerability(),
            ftspm: reliability::vulnerability(&profile, &mapping, &ftspm_structure, mbu)
                .vulnerability(),
        })
        .collect()
}

/// Renders an MBU sensitivity study.
pub fn render_mbu(workload: &str, rows: &[MbuRow]) -> String {
    let mut s = format!("Ablation — MBU distribution (technology node), {workload}\n");
    let _ = writeln!(
        s,
        "{:<14} {:>12} {:>12} {:>9}",
        "node", "pure SRAM", "FTSPM", "ratio"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>12.4} {:>12.4} {:>8.1}x",
            r.node,
            r.pure_sram,
            r.ftspm,
            if r.ftspm > 0.0 {
                r.pure_sram / r.ftspm
            } else {
                f64::INFINITY
            }
        );
    }
    s
}
