//! # ftspm-harness — experiment orchestration
//!
//! Glues the reproduction together the way the paper's tool flow does:
//!
//! 1. **Profile** the workload once on an idealised machine
//!    ([`profiling_structure`]: every block mapped, 1-cycle accesses) to
//!    obtain the Table I statistics and access sequence;
//! 2. run **MDA** (or the baseline mapper) to fix each block's region;
//! 3. **re-run** the workload on the target structure with that mapping,
//!    collecting cycles, per-region read/write distributions, dynamic and
//!    static energy, STT-RAM wear, and the analytic vulnerability.
//!
//! [`evaluate_workload`] performs all of the above for FTSPM and both
//! baselines; [`evaluate_suite`] sweeps the whole workload set. The
//! `report` module renders the paper's tables and figures from the
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod metrics;
mod pipeline;
pub mod report;

pub use metrics::{RegionTraffic, RunMetrics, StructureKind, WorkloadEvaluation};
pub use pipeline::{
    evaluate_suite, evaluate_suite_threads, evaluate_workload, profile_workload,
    profiling_structure, run_on_structure, run_on_structure_faulted, LiveFaultOptions,
};
