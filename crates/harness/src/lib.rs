//! # ftspm-harness — experiment orchestration
//!
//! Glues the reproduction together the way the paper's tool flow does:
//!
//! 1. **Profile** the workload once on an idealised machine
//!    ([`profiling_structure`]: every block mapped, 1-cycle accesses) to
//!    obtain the Table I statistics and access sequence;
//! 2. run **MDA** (or the baseline mapper) to fix each block's region;
//! 3. **re-run** the workload on the target structure with that mapping,
//!    collecting cycles, per-region read/write distributions, dynamic and
//!    static energy, STT-RAM wear, and the analytic vulnerability.
//!
//! [`RunBuilder`] is the front door: chain the structure, workload,
//! fault options, thread count and observability sink, then call
//! [`RunBuilder::run`] (one workload, one structure) or
//! [`RunBuilder::run_suite`] (whole workload set on FTSPM plus both
//! baselines). [`evaluate_workload`] performs the three-structure
//! evaluation for a single workload. The `report` module renders the
//! paper's tables and figures from the results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod builder;
pub mod journal;
mod metrics;
mod pipeline;
pub mod report;

pub use builder::RunBuilder;
pub use metrics::{MultiRunMetrics, RegionTraffic, RunMetrics, StructureKind, WorkloadEvaluation};
#[allow(deprecated)]
pub use pipeline::{
    evaluate_suite, evaluate_suite_threads, run_on_structure, run_on_structure_faulted,
};
pub use pipeline::{
    evaluate_workload, profile_workload, profiling_structure, try_profile_multi_workload,
    try_profile_workload, FaultOptionsError, LiveFaultOptions, LiveFaultOptionsBuilder, RunError,
};
