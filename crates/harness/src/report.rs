//! Renderers for the paper's tables and figures.
//!
//! Each function returns a human-readable text block (the `repro` binary
//! prints these); the `*_csv` variants return machine-readable CSV for
//! plotting. Table/figure numbering follows the paper.

use std::fmt::Write as _;

use ftspm_core::endurance::{self, TABLE_III_THRESHOLDS};
use ftspm_core::mda::MdaOutput;
use ftspm_mem::{Clock, RegionGeometry, Technology};
use ftspm_profile::{Profile, ProfileTable};

use crate::{RunMetrics, StructureKind, WorkloadEvaluation};

/// Table I: the profiling results of one workload.
pub fn table1(profile: &Profile) -> String {
    format!(
        "Table I — profiling of `{}` ({} cycles total)\n{}",
        profile.program,
        profile.total_cycles,
        ProfileTable::new(profile)
    )
}

/// Table II: the MDA output for one workload.
pub fn table2(mapping: &MdaOutput) -> String {
    let mut s = format!(
        "Table II — MDA output for `{}` (perf overhead {:.1} %, energy overhead {:.1} %)\n",
        mapping.structure,
        mapping.perf_overhead * 100.0,
        mapping.energy_overhead * 100.0
    );
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:<18} {:<22}",
        "Block", "Mapped", "Region", "Reason"
    );
    for d in &mapping.decisions {
        let mapped = if d.decision.role().is_some() {
            "Yes"
        } else {
            "No"
        };
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:<18} {:<22}",
            d.name,
            mapped,
            d.decision.label(),
            format!("{:?}", d.reason)
        );
    }
    s
}

/// Table III: endurance lifetimes, pure STT-RAM vs FTSPM, from the two
/// runs' observed hottest-line write rates, plus the projection for a
/// wear-levelled pure STT-RAM SPM (an extension of the paper's table).
pub fn table3(ftspm: &RunMetrics, pure_stt: &RunMetrics, clock: Clock) -> String {
    let mut s = String::from("Table III — endurance (hottest STT-RAM line)\n");
    let _ = writeln!(
        s,
        "{:<14} {:>22} {:>22} {:>24}",
        "Threshold", "pure STT-RAM SPM", "FTSPM", "pure STT (levelled)"
    );
    for &t in &TABLE_III_THRESHOLDS {
        let stt =
            endurance::lifetime_seconds(t, pure_stt.stt_max_line_writes, pure_stt.cycles, clock);
        let ft = endurance::lifetime_seconds(t, ftspm.stt_max_line_writes, ftspm.cycles, clock);
        let leveled = endurance::lifetime_seconds_leveled(
            t,
            pure_stt.stt_total_writes,
            pure_stt.stt_lines.max(1),
            pure_stt.cycles,
            clock,
        );
        let _ = writeln!(
            s,
            "{:<14.0e} {:>22} {:>22} {:>24}",
            t as f64,
            endurance::format_duration(stt),
            endurance::format_duration(ft),
            endurance::format_duration(leveled)
        );
    }
    s
}

/// Table IV: the simulator configuration of all three structures.
pub fn table4() -> String {
    let mut s = String::from("Table IV — configuration parameters\n");
    let _ = writeln!(
        s,
        "{:<22} {:<22} {:>8} {:>10} {:>10}",
        "Structure", "Region", "Size", "Read", "Write"
    );
    let structures = [
        ("pure SRAM", ftspm_core::SpmStructure::pure_sram()),
        ("pure STT-RAM", ftspm_core::SpmStructure::pure_stt()),
        ("FTSPM", ftspm_core::SpmStructure::ftspm()),
    ];
    for (name, st) in structures {
        for (_, spec) in st.regions() {
            let p = spec.params();
            let _ = writeln!(
                s,
                "{:<22} {:<22} {:>6}KB {:>8} c {:>8} c",
                name,
                spec.name(),
                spec.geometry().bytes() / 1024,
                p.read_latency,
                p.write_latency
            );
        }
    }
    let _ = writeln!(
        s,
        "{:<22} {:<22} {:>8} {:>10} {:>10}",
        "(all)", "L1 I/D caches", "8KB", "1 c", "1 c"
    );
    s
}

/// Fig. 2 / Fig. 4: per-region read/write distribution of one run, in
/// percent of SPM program traffic.
pub fn fig_traffic(run: &RunMetrics) -> String {
    let total: u64 = run.traffic.iter().map(|t| t.reads + t.writes).sum();
    let mut s = format!(
        "Read/write distribution — {} on {} ({} SPM accesses)\n",
        run.workload,
        run.structure.name(),
        total
    );
    for t in &run.traffic {
        let pct = |v: u64| {
            if total == 0 {
                0.0
            } else {
                v as f64 * 100.0 / total as f64
            }
        };
        let _ = writeln!(
            s,
            "  {:<22} reads {:>10} ({:>5.1} %)  writes {:>10} ({:>5.1} %)",
            t.region,
            t.reads,
            pct(t.reads),
            t.writes,
            pct(t.writes)
        );
    }
    s
}

/// Fig. 3: dynamic energy per access of each region technology.
pub fn fig3() -> String {
    let mut s = String::from("Fig. 3 — dynamic energy per access (pJ, 16 KiB array)\n");
    let g = RegionGeometry::from_kib(16);
    for t in Technology::ALL {
        let p = t.params_40nm();
        let _ = writeln!(
            s,
            "  {:<22} read {:>7.1}  write {:>7.1}",
            t.name(),
            p.read_energy_pj(g),
            p.write_energy_pj(g)
        );
    }
    s
}

/// Fig. 5: vulnerability per workload, FTSPM vs pure SRAM, plus the
/// average improvement factor (the paper's "about 7x").
pub fn fig5(evals: &[WorkloadEvaluation]) -> String {
    let mut s = String::from("Fig. 5 — SPM vulnerability (lower is better)\n");
    let _ = writeln!(
        s,
        "{:<14} {:>12} {:>12} {:>10}",
        "Workload", "pure SRAM", "FTSPM", "ratio"
    );
    let mut ratios = Vec::new();
    for e in evals {
        let sram = e.pure_sram.vulnerability;
        let ft = e.ftspm.vulnerability;
        let ratio = if ft > 0.0 { sram / ft } else { f64::INFINITY };
        if ratio.is_finite() {
            ratios.push(ratio);
        }
        let _ = writeln!(
            s,
            "{:<14} {:>12.4} {:>12.4} {:>9.1}x",
            e.workload, sram, ft, ratio
        );
    }
    let avg_sram: f64 =
        evals.iter().map(|e| e.pure_sram.vulnerability).sum::<f64>() / evals.len() as f64;
    let avg_ft: f64 = evals.iter().map(|e| e.ftspm.vulnerability).sum::<f64>() / evals.len() as f64;
    let _ = writeln!(
        s,
        "{:<14} {:>12.4} {:>12.4} {:>9.1}x  (suite average; paper reports ~7x)",
        "AVERAGE",
        avg_sram,
        avg_ft,
        if avg_ft > 0.0 {
            avg_sram / avg_ft
        } else {
            f64::INFINITY
        }
    );
    s
}

/// Fig. 6: static energy per workload, normalised to pure SRAM.
pub fn fig6(evals: &[WorkloadEvaluation]) -> String {
    energy_figure(
        evals,
        "Fig. 6 — SPM static energy (normalised to pure SRAM)",
        |r| r.spm_static_pj,
    )
}

/// Fig. 7: dynamic energy per workload, normalised to pure SRAM.
pub fn fig7(evals: &[WorkloadEvaluation]) -> String {
    energy_figure(
        evals,
        "Fig. 7 — SPM dynamic energy (normalised to pure SRAM)",
        |r| r.spm_dynamic_pj,
    )
}

fn energy_figure(
    evals: &[WorkloadEvaluation],
    title: &str,
    f: impl Fn(&RunMetrics) -> f64,
) -> String {
    let mut s = format!("{title}\n");
    let _ = writeln!(
        s,
        "{:<14} {:>12} {:>12} {:>12}",
        "Workload", "pure SRAM", "pure STT", "FTSPM"
    );
    let mut sums = [0.0f64; 3];
    for e in evals {
        let base = f(&e.pure_sram);
        let norm = |v: f64| if base > 0.0 { v / base } else { 0.0 };
        let row = [1.0, norm(f(&e.pure_stt)), norm(f(&e.ftspm))];
        sums[0] += row[0];
        sums[1] += row[1];
        sums[2] += row[2];
        let _ = writeln!(
            s,
            "{:<14} {:>12.3} {:>12.3} {:>12.3}",
            e.workload, row[0], row[1], row[2]
        );
    }
    let n = evals.len() as f64;
    let _ = writeln!(
        s,
        "{:<14} {:>12.3} {:>12.3} {:>12.3}",
        "AVERAGE",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    s
}

/// Fig. 8: endurance lifetime per workload (at the 10^14 threshold),
/// pure STT vs FTSPM.
pub fn fig8(evals: &[WorkloadEvaluation], clock: Clock) -> String {
    let threshold = TABLE_III_THRESHOLDS[2];
    let mut s = format!(
        "Fig. 8 — endurance lifetime at threshold 1e{} writes\n",
        (threshold as f64).log10() as u32
    );
    let _ = writeln!(
        s,
        "{:<14} {:>18} {:>18} {:>10}",
        "Workload", "pure STT-RAM", "FTSPM", "gain"
    );
    for e in evals {
        let stt = endurance::lifetime_seconds(
            threshold,
            e.pure_stt.stt_max_line_writes,
            e.pure_stt.cycles,
            clock,
        );
        let ft = endurance::lifetime_seconds(
            threshold,
            e.ftspm.stt_max_line_writes,
            e.ftspm.cycles,
            clock,
        );
        let gain = if stt > 0.0 { ft / stt } else { f64::INFINITY };
        let _ = writeln!(
            s,
            "{:<14} {:>18} {:>18} {:>9.0}x",
            e.workload,
            endurance::format_duration(stt),
            endurance::format_duration(ft),
            gain
        );
    }
    s
}

/// Recovery report of one live fault-injected run: the runtime
/// counterpart of Fig. 5's analytic vulnerability, from observed strikes.
pub fn recovery(run: &RunMetrics) -> String {
    let mut s = format!(
        "Recovery — {} on {} ({} cycles, checksum {})\n",
        run.workload,
        run.structure.name(),
        run.cycles,
        if run.checksum_ok { "ok" } else { "FAIL" }
    );
    let Some(f) = run.recovery else {
        let _ = writeln!(s, "  (clean run: no fault injection configured)");
        return s;
    };
    let _ = writeln!(s, "  strikes injected       {:>10}", f.strikes);
    let _ = writeln!(s, "  masked (immune STT)    {:>10}", f.masked);
    let _ = writeln!(s, "  corrections (DRE)      {:>10}", f.corrections);
    let _ = writeln!(s, "  DUE traps              {:>10}", f.due_traps);
    let _ = writeln!(s, "  DUE recovery retries   {:>10}", f.due_retries);
    let _ = writeln!(s, "  SDC escapes            {:>10}", f.sdc_escapes);
    let _ = writeln!(s, "  scrub passes           {:>10}", f.scrub_passes);
    let _ = writeln!(s, "  scrub corrections      {:>10}", f.scrub_corrections);
    let _ = writeln!(s, "  quarantined lines      {:>10}", f.quarantined_lines);
    let _ = writeln!(s, "  remapped blocks        {:>10}", f.remapped_blocks);
    let _ = writeln!(
        s,
        "  recovery overhead      {:>10} cycles ({:.3} % of run)",
        f.recovery_cycles,
        if run.cycles > 0 {
            f.recovery_cycles as f64 * 100.0 / run.cycles as f64
        } else {
            0.0
        }
    );
    s
}

/// A compact per-workload summary (checksums, cycles, headline ratios).
pub fn summary(evals: &[WorkloadEvaluation]) -> String {
    let mut s = String::from("Summary\n");
    let _ = writeln!(
        s,
        "{:<14} {:>9} {:>14} {:>14} {:>14} {:>10}",
        "Workload", "checks", "FTSPM cycles", "SRAM cycles", "STT cycles", "perf vs SRAM"
    );
    for e in evals {
        let overhead = e.ftspm.cycles as f64 / e.pure_sram.cycles as f64 - 1.0;
        let _ = writeln!(
            s,
            "{:<14} {:>9} {:>14} {:>14} {:>14} {:>9.1} %",
            e.workload,
            if e.all_checksums_ok() { "ok" } else { "FAIL" },
            e.ftspm.cycles,
            e.pure_sram.cycles,
            e.pure_stt.cycles,
            overhead * 100.0
        );
    }
    s
}

/// CSV across the suite: one row per (workload, structure) with every
/// headline metric. For plotting.
pub fn suite_csv(evals: &[WorkloadEvaluation]) -> String {
    let mut s = String::from(
        "workload,structure,cycles,instructions,spm_dynamic_pj,spm_static_pj,\
         spm_leakage_mw,vulnerability,reliability,stt_max_line_writes,checksum_ok\n",
    );
    for e in evals {
        for kind in StructureKind::ALL {
            let r = e.run(kind);
            let _ = writeln!(
                s,
                "{},{},{},{},{:.1},{:.1},{:.3},{:.6},{:.6},{},{}",
                e.workload,
                kind.name(),
                r.cycles,
                r.instructions,
                r.spm_dynamic_pj,
                r.spm_static_pj,
                r.spm_leakage_mw,
                r.vulnerability,
                r.reliability,
                r.stt_max_line_writes,
                r.checksum_ok
            );
        }
    }
    s
}
