//! [`RunBuilder`]: the chainable front door to the harness.
//!
//! One builder replaces the old quartet of free functions
//! (`run_on_structure`, `run_on_structure_faulted`, `evaluate_suite`,
//! `evaluate_suite_threads`), which survive as deprecated wrappers.
//! Everything the pipeline needs — structure, mapping, profile, fault
//! options, thread count, observability sink — is an optional chainable
//! setter with a sensible default; missing inputs are computed
//! (profiling pass, MDA/baseline mapping) rather than demanded.
//!
//! ```no_run
//! use ftspm_harness::{LiveFaultOptions, RunBuilder};
//! # let mut workload = ftspm_workloads::evaluation_set().remove(0);
//! let faults = LiveFaultOptions::builder(0xF00D, 10_000.0)
//!     .scrub_interval(50_000)
//!     .build()
//!     .expect("valid options");
//! let metrics = RunBuilder::new()
//!     .workload(workload.as_mut())
//!     .faults(faults)
//!     .run();
//! ```

use std::num::NonZeroUsize;

use ftspm_core::mda::{run_baseline, run_mda, MdaOutput};
use ftspm_core::{OptimizeFor, SpmStructure};
use ftspm_obs::Recorder;
use ftspm_profile::Profile;
use ftspm_sim::{NullObserver, Observer};
use ftspm_workloads::Workload;

use crate::metrics::{RunMetrics, StructureKind, WorkloadEvaluation};
use crate::pipeline::{
    evaluate_workload_observed, try_profile_workload, try_run_inner, LiveFaultOptions, RunError,
};

/// The builder's workload slot: absent, borrowed from the caller, or
/// owned outright (the deserialized-job-spec path used by
/// `ftspm-serve`, where no longer-lived owner exists to borrow from).
enum WorkloadSlot<'a> {
    None,
    Borrowed(&'a mut dyn Workload),
    Owned(Box<dyn Workload>),
}

/// Chainable configuration for a harness run.
///
/// Terminal methods: [`run`](Self::run) measures one workload on one
/// structure; [`run_suite`](Self::run_suite) evaluates a workload set on
/// FTSPM plus both baselines, sharded over `ftspm_testkit::par`.
///
/// Observability is opt-in and exclusive: attach **either** a raw
/// [`Observer`] ([`observer`](Self::observer)) **or** an
/// [`ftspm_obs::Recorder`] ([`recorder`](Self::recorder)). The recorder
/// path additionally records `profile → mda → run → report` phase spans
/// and folds the run's final `FaultStats` into `faults.*` counters.
/// With neither attached the run uses [`NullObserver`] — the
/// near-zero-cost disabled path the `injected_run` bench pins.
pub struct RunBuilder<'a> {
    workload: WorkloadSlot<'a>,
    structure: Option<(SpmStructure, StructureKind)>,
    mapping: Option<MdaOutput>,
    profile: Option<Profile>,
    optimize: OptimizeFor,
    faults: Option<LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    threads: Option<NonZeroUsize>,
    observer: Option<&'a mut dyn Observer>,
    recorder: Option<&'a mut Recorder>,
}

impl Default for RunBuilder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> RunBuilder<'a> {
    /// A builder with nothing attached: FTSPM structure, computed
    /// profile and mapping, reliability-optimised MDA, no faults, no
    /// observability, `FTSPM_THREADS` parallelism.
    pub fn new() -> Self {
        Self {
            workload: WorkloadSlot::None,
            structure: None,
            mapping: None,
            profile: None,
            optimize: OptimizeFor::Reliability,
            faults: None,
            deadline_cycles: None,
            threads: None,
            observer: None,
            recorder: None,
        }
    }

    /// The workload to run ([`run`](Self::run) only; suites take their
    /// workloads as a terminal argument).
    #[must_use]
    pub fn workload(mut self, workload: &'a mut dyn Workload) -> Self {
        self.workload = WorkloadSlot::Borrowed(workload);
        self
    }

    /// Like [`workload`](Self::workload), but the builder takes
    /// ownership — the natural shape when the workload was just
    /// constructed from a deserialized job spec (`ftspm-serve`) and has
    /// no other owner to outlive the builder.
    #[must_use]
    pub fn workload_boxed(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = WorkloadSlot::Owned(workload);
        self
    }

    /// The SPM structure to run on and how to label it in metrics.
    /// Defaults to [`SpmStructure::ftspm`] / [`StructureKind::Ftspm`].
    #[must_use]
    pub fn structure(mut self, structure: &SpmStructure, kind: StructureKind) -> Self {
        self.structure = Some((structure.clone(), kind));
        self
    }

    /// A precomputed mapping. Without one, [`run`](Self::run) maps the
    /// program itself: MDA for [`StructureKind::Ftspm`], the baseline
    /// mapper otherwise.
    #[must_use]
    pub fn mapping(mut self, mapping: MdaOutput) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// A precomputed profiling pass for the same workload. Without one,
    /// [`run`](Self::run) profiles the workload first.
    #[must_use]
    pub fn profile(mut self, profile: &Profile) -> Self {
        self.profile = Some(profile.clone());
        self
    }

    /// The MDA optimisation target used when the builder computes a
    /// mapping ([`run`](Self::run)) or evaluates a suite
    /// ([`run_suite`](Self::run_suite)).
    #[must_use]
    pub fn optimize(mut self, optimize: OptimizeFor) -> Self {
        self.optimize = optimize;
        self
    }

    /// Enables live fault injection with `options` (build them with
    /// [`LiveFaultOptions::builder`]).
    #[must_use]
    pub fn faults(mut self, options: LiveFaultOptions) -> Self {
        self.faults = Some(options);
        self
    }

    /// A cycle budget for the run: the machine refuses the access that
    /// would execute at or past `deadline` cycles, and
    /// [`try_run`](Self::try_run) returns
    /// [`RunError::DeadlineExceeded`]. The budget covers the profiling
    /// pass too (a runaway workload loops there first), and the cut
    /// lands at a deterministic cycle, so the same spec times out
    /// identically on every run. Costs one cached `u64` compare per
    /// access when set; nothing when not.
    #[must_use]
    pub fn deadline_cycles(mut self, deadline: u64) -> Self {
        self.deadline_cycles = Some(deadline);
        self
    }

    /// Explicit suite parallelism; defaults to the `FTSPM_THREADS`
    /// knob. Single runs are always sequential.
    #[must_use]
    pub fn threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a raw observer to the run.
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached — the sinks are
    /// exclusive (a [`Recorder`] *is* an observer; attach it with
    /// [`recorder`](Self::recorder) to also get phase spans and
    /// `faults.*` counters).
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        assert!(
            self.recorder.is_none(),
            "RunBuilder: attach either .observer(..) or .recorder(..), not both"
        );
        self.observer = Some(observer);
        self
    }

    /// Attaches an [`ftspm_obs::Recorder`]: counters and trace from the
    /// run, plus phase spans and fault-stat counters.
    ///
    /// # Panics
    ///
    /// Panics if a raw observer is already attached (see
    /// [`observer`](Self::observer)).
    #[must_use]
    pub fn recorder(mut self, recorder: &'a mut Recorder) -> Self {
        assert!(
            self.observer.is_none(),
            "RunBuilder: attach either .observer(..) or .recorder(..), not both"
        );
        self.recorder = Some(recorder);
        self
    }

    /// Runs the configured workload on the configured structure and
    /// returns its metrics.
    ///
    /// Missing inputs are computed in pipeline order — profiling pass,
    /// then MDA (or baseline) mapping — and, when a recorder is
    /// attached, show up as `profile` and `mda` phase spans ahead of
    /// the `run` span.
    ///
    /// # Panics
    ///
    /// Panics if no workload was attached, on simulator errors
    /// (workloads and MDA mappings are trusted fixtures), or when a
    /// [`deadline_cycles`](Self::deadline_cycles) budget runs out — use
    /// [`try_run`](Self::try_run) to handle cancellation as a value.
    pub fn run(self) -> RunMetrics {
        self.try_run().unwrap_or_else(|e| panic!("run failed: {e}"))
    }

    /// [`run`](Self::run), but deadline exhaustion is an `Err` instead
    /// of a panic — the entry point the serving layer uses so a
    /// cancelled job becomes a typed 504 body, not a dead worker.
    ///
    /// # Errors
    ///
    /// [`RunError::DeadlineExceeded`] when a
    /// [`deadline_cycles`](Self::deadline_cycles) budget is exhausted
    /// during the profiling pass or the mapped run.
    ///
    /// # Panics
    ///
    /// Panics if no workload was attached, or on simulator errors
    /// (workloads and MDA mappings are trusted fixtures).
    pub fn try_run(self) -> Result<RunMetrics, RunError> {
        let mut slot = self.workload;
        let workload: &mut dyn Workload = match &mut slot {
            WorkloadSlot::None => panic!("RunBuilder::run requires .workload(..)"),
            WorkloadSlot::Borrowed(w) => *w,
            WorkloadSlot::Owned(b) => b.as_mut(),
        };
        let (structure, kind) = self
            .structure
            .unwrap_or_else(|| (SpmStructure::ftspm(), StructureKind::Ftspm));

        let profile = match self.profile {
            Some(p) => p,
            None => try_profile_workload(workload, self.deadline_cycles)?,
        };
        let mapping = match self.mapping {
            Some(m) => m,
            None => {
                let program = workload.program().clone();
                match kind {
                    StructureKind::Ftspm => {
                        run_mda(&program, &profile, &structure, &self.optimize.thresholds())
                    }
                    _ => run_baseline(&program, &profile, &structure),
                }
            }
        };

        match (self.recorder, self.observer) {
            (Some(recorder), _) => {
                recorder.phase("profile", profile.total_cycles);
                recorder.phase("mda", 1);
                // The run span's length is only known afterwards: align
                // events now, append the span once cycles are in.
                recorder.align_to_phases();
                let metrics = try_run_inner(
                    workload,
                    &structure,
                    kind,
                    mapping,
                    &profile,
                    self.faults.as_ref(),
                    self.deadline_cycles,
                    recorder,
                )?;
                recorder.phase("run", metrics.cycles);
                if let Some(stats) = &metrics.recovery {
                    recorder.record_fault_stats(stats);
                }
                recorder.phase("report", 1);
                Ok(metrics)
            }
            (None, Some(observer)) => try_run_inner(
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                observer,
            ),
            (None, None) => try_run_inner(
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                &mut NullObserver,
            ),
        }
    }

    /// Evaluates every workload on FTSPM and both baselines, one
    /// workload per executor task (`ftspm_testkit::par`, honouring
    /// [`threads`](Self::threads) / the `FTSPM_THREADS` knob).
    ///
    /// Each evaluation is an independent deterministic simulation and
    /// results return in input order, so the output is identical at
    /// every thread count, including 1. With a recorder attached, each
    /// shard records into a private registry and the registries merge
    /// into the recorder **in input order** — so the merged counters
    /// are bit-identical at every thread count too. Shard traces are
    /// discarded (interleaving them has no single timeline); suite
    /// observability is counters-only.
    ///
    /// # Panics
    ///
    /// Panics if fault options or a raw observer are attached: live
    /// injection is a single-run feature, and one `&mut` observer
    /// cannot be shared across shards.
    pub fn run_suite(
        self,
        workloads: Vec<Box<dyn Workload>>,
        optimize: OptimizeFor,
    ) -> Vec<WorkloadEvaluation> {
        assert!(
            self.faults.is_none(),
            "RunBuilder::run_suite does not support fault injection; use .faults(..).run() per workload"
        );
        assert!(
            self.observer.is_none(),
            "RunBuilder::run_suite cannot share one observer across shards; use .recorder(..)"
        );
        let threads = self
            .threads
            .unwrap_or_else(ftspm_testkit::par::thread_count);
        match self.recorder {
            None => ftspm_testkit::par::par_map_threads(threads, workloads, |mut w| {
                evaluate_workload_observed(w.as_mut(), optimize, &mut NullObserver)
            }),
            Some(recorder) => {
                let config = recorder.config();
                let sharded = ftspm_testkit::par::par_map_threads(threads, workloads, |mut w| {
                    let mut shard = Recorder::new(config);
                    let eval = evaluate_workload_observed(w.as_mut(), optimize, &mut shard);
                    let (registry, _trace) = shard.into_parts();
                    (eval, registry)
                });
                let mut evals = Vec::with_capacity(sharded.len());
                for (eval, registry) in sharded {
                    recorder.registry_mut().merge(&registry);
                    evals.push(eval);
                }
                evals
            }
        }
    }
}
