//! [`RunBuilder`]: the chainable front door to the harness.
//!
//! One builder replaces the old quartet of free functions
//! (`run_on_structure`, `run_on_structure_faulted`, `evaluate_suite`,
//! `evaluate_suite_threads`), which survive as deprecated wrappers.
//! Everything the pipeline needs — structure, mapping, profile, fault
//! options, thread count, observability sink — is an optional chainable
//! setter with a sensible default; missing inputs are computed
//! (profiling pass, MDA/baseline mapping) rather than demanded.
//!
//! ```no_run
//! use ftspm_harness::{LiveFaultOptions, RunBuilder};
//! # let mut workload = ftspm_workloads::evaluation_set().remove(0);
//! let faults = LiveFaultOptions::builder(0xF00D, 10_000.0)
//!     .scrub_interval(50_000)
//!     .build()
//!     .expect("valid options");
//! let metrics = RunBuilder::new()
//!     .workload(workload.as_mut())
//!     .faults(faults)
//!     .run();
//! ```

use std::num::NonZeroUsize;

use ftspm_core::mda::{run_baseline, run_mda, run_mda_multicore, MdaOutput};
use ftspm_core::{OptimizeFor, SpmStructure};
use ftspm_obs::Recorder;
use ftspm_profile::Profile;
use ftspm_sim::{NullObserver, Observer};
use ftspm_workloads::multicore::MultiWorkload;
use ftspm_workloads::Workload;

use crate::metrics::{MultiRunMetrics, RunMetrics, StructureKind, WorkloadEvaluation};
use crate::pipeline::{
    evaluate_workload_observed, try_profile_multi_workload, try_profile_workload, try_run_inner,
    try_run_multi_inner, try_run_single_via_multi, LiveFaultOptions, RunError,
};

/// The builder's workload slot: absent, borrowed from the caller, or
/// owned outright (the deserialized-job-spec path used by
/// `ftspm-serve`, where no longer-lived owner exists to borrow from).
enum WorkloadSlot<'a> {
    None,
    Borrowed(&'a mut dyn Workload),
    Owned(Box<dyn Workload>),
}

/// The multi-core counterpart of [`WorkloadSlot`].
enum MultiWorkloadSlot<'a> {
    None,
    Borrowed(&'a mut dyn MultiWorkload),
    Owned(Box<dyn MultiWorkload>),
}

/// Routes a single-core run through the plain machine or (for the
/// differential oracle) a 1-core `MultiMachine` — the two must be
/// byte-identical, which `harness/tests/multicore_differential.rs` pins.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    via_multi: bool,
    workload: &mut dyn Workload,
    structure: &SpmStructure,
    kind: StructureKind,
    mapping: MdaOutput,
    profile: &Profile,
    faults: Option<&LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    observer: &mut dyn Observer,
) -> Result<RunMetrics, RunError> {
    if via_multi {
        try_run_single_via_multi(
            workload,
            structure,
            kind,
            mapping,
            profile,
            faults,
            deadline_cycles,
            observer,
        )
    } else {
        try_run_inner(
            workload,
            structure,
            kind,
            mapping,
            profile,
            faults,
            deadline_cycles,
            observer,
        )
    }
}

/// Chainable configuration for a harness run.
///
/// Terminal methods: [`run`](Self::run) measures one workload on one
/// structure; [`run_suite`](Self::run_suite) evaluates a workload set on
/// FTSPM plus both baselines, sharded over `ftspm_testkit::par`.
///
/// Observability is opt-in and exclusive: attach **either** a raw
/// [`Observer`] ([`observer`](Self::observer)) **or** an
/// [`ftspm_obs::Recorder`] ([`recorder`](Self::recorder)). The recorder
/// path additionally records `profile → mda → run → report` phase spans
/// and folds the run's final `FaultStats` into `faults.*` counters.
/// With neither attached the run uses [`NullObserver`] — the
/// near-zero-cost disabled path the `injected_run` bench pins.
pub struct RunBuilder<'a> {
    workload: WorkloadSlot<'a>,
    workload_multi: MultiWorkloadSlot<'a>,
    cores: Option<usize>,
    structure: Option<(SpmStructure, StructureKind)>,
    mapping: Option<MdaOutput>,
    profile: Option<Profile>,
    optimize: OptimizeFor,
    faults: Option<LiveFaultOptions>,
    deadline_cycles: Option<u64>,
    threads: Option<NonZeroUsize>,
    observer: Option<&'a mut dyn Observer>,
    recorder: Option<&'a mut Recorder>,
}

impl Default for RunBuilder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> RunBuilder<'a> {
    /// A builder with nothing attached: FTSPM structure, computed
    /// profile and mapping, reliability-optimised MDA, no faults, no
    /// observability, `FTSPM_THREADS` parallelism.
    pub fn new() -> Self {
        Self {
            workload: WorkloadSlot::None,
            workload_multi: MultiWorkloadSlot::None,
            cores: None,
            structure: None,
            mapping: None,
            profile: None,
            optimize: OptimizeFor::Reliability,
            faults: None,
            deadline_cycles: None,
            threads: None,
            observer: None,
            recorder: None,
        }
    }

    /// The workload to run ([`run`](Self::run) only; suites take their
    /// workloads as a terminal argument).
    #[must_use]
    pub fn workload(mut self, workload: &'a mut dyn Workload) -> Self {
        self.workload = WorkloadSlot::Borrowed(workload);
        self
    }

    /// Like [`workload`](Self::workload), but the builder takes
    /// ownership — the natural shape when the workload was just
    /// constructed from a deserialized job spec (`ftspm-serve`) and has
    /// no other owner to outlive the builder.
    #[must_use]
    pub fn workload_boxed(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = WorkloadSlot::Owned(workload);
        self
    }

    /// An N-core workload for [`run_multi`](Self::run_multi); its core
    /// count fixes the machine's.
    #[must_use]
    pub fn workload_multi(mut self, workload: &'a mut dyn MultiWorkload) -> Self {
        self.workload_multi = MultiWorkloadSlot::Borrowed(workload);
        self
    }

    /// Like [`workload_multi`](Self::workload_multi), but the builder
    /// takes ownership (the deserialized-job-spec path).
    #[must_use]
    pub fn workload_multi_boxed(mut self, workload: Box<dyn MultiWorkload>) -> Self {
        self.workload_multi = MultiWorkloadSlot::Owned(workload);
        self
    }

    /// Routes the run through an N-core [`ftspm_sim::MultiMachine`].
    ///
    /// With a regular [`workload`](Self::workload) only `cores == 1` is
    /// meaningful (a single-core kernel cannot be sharded), and
    /// [`run`](Self::run) executes it through a 1-core `MultiMachine` —
    /// the differential oracle that pins the multi-core machinery as
    /// byte-inert. With a [`workload_multi`](Self::workload_multi) the
    /// value must match the workload's own core count (which is fixed
    /// at construction).
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// The SPM structure to run on and how to label it in metrics.
    /// Defaults to [`SpmStructure::ftspm`] / [`StructureKind::Ftspm`].
    #[must_use]
    pub fn structure(mut self, structure: &SpmStructure, kind: StructureKind) -> Self {
        self.structure = Some((structure.clone(), kind));
        self
    }

    /// A precomputed mapping. Without one, [`run`](Self::run) maps the
    /// program itself: MDA for [`StructureKind::Ftspm`], the baseline
    /// mapper otherwise.
    #[must_use]
    pub fn mapping(mut self, mapping: MdaOutput) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// A precomputed profiling pass for the same workload. Without one,
    /// [`run`](Self::run) profiles the workload first.
    #[must_use]
    pub fn profile(mut self, profile: &Profile) -> Self {
        self.profile = Some(profile.clone());
        self
    }

    /// The MDA optimisation target used when the builder computes a
    /// mapping ([`run`](Self::run)) or evaluates a suite
    /// ([`run_suite`](Self::run_suite)).
    #[must_use]
    pub fn optimize(mut self, optimize: OptimizeFor) -> Self {
        self.optimize = optimize;
        self
    }

    /// Enables live fault injection with `options` (build them with
    /// [`LiveFaultOptions::builder`]).
    #[must_use]
    pub fn faults(mut self, options: LiveFaultOptions) -> Self {
        self.faults = Some(options);
        self
    }

    /// A cycle budget for the run: the machine refuses the access that
    /// would execute at or past `deadline` cycles, and
    /// [`try_run`](Self::try_run) returns
    /// [`RunError::DeadlineExceeded`]. The budget covers the profiling
    /// pass too (a runaway workload loops there first), and the cut
    /// lands at a deterministic cycle, so the same spec times out
    /// identically on every run. Costs one cached `u64` compare per
    /// access when set; nothing when not.
    #[must_use]
    pub fn deadline_cycles(mut self, deadline: u64) -> Self {
        self.deadline_cycles = Some(deadline);
        self
    }

    /// Explicit suite parallelism; defaults to the `FTSPM_THREADS`
    /// knob. Single runs are always sequential.
    #[must_use]
    pub fn threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a raw observer to the run.
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached — the sinks are
    /// exclusive (a [`Recorder`] *is* an observer; attach it with
    /// [`recorder`](Self::recorder) to also get phase spans and
    /// `faults.*` counters).
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        assert!(
            self.recorder.is_none(),
            "RunBuilder: attach either .observer(..) or .recorder(..), not both"
        );
        self.observer = Some(observer);
        self
    }

    /// Attaches an [`ftspm_obs::Recorder`]: counters and trace from the
    /// run, plus phase spans and fault-stat counters.
    ///
    /// # Panics
    ///
    /// Panics if a raw observer is already attached (see
    /// [`observer`](Self::observer)).
    #[must_use]
    pub fn recorder(mut self, recorder: &'a mut Recorder) -> Self {
        assert!(
            self.observer.is_none(),
            "RunBuilder: attach either .observer(..) or .recorder(..), not both"
        );
        self.recorder = Some(recorder);
        self
    }

    /// Runs the configured workload on the configured structure and
    /// returns its metrics.
    ///
    /// Missing inputs are computed in pipeline order — profiling pass,
    /// then MDA (or baseline) mapping — and, when a recorder is
    /// attached, show up as `profile` and `mda` phase spans ahead of
    /// the `run` span.
    ///
    /// # Panics
    ///
    /// Panics if no workload was attached, on simulator errors
    /// (workloads and MDA mappings are trusted fixtures), or when a
    /// [`deadline_cycles`](Self::deadline_cycles) budget runs out — use
    /// [`try_run`](Self::try_run) to handle cancellation as a value.
    pub fn run(self) -> RunMetrics {
        self.try_run().unwrap_or_else(|e| panic!("run failed: {e}"))
    }

    /// [`run`](Self::run), but deadline exhaustion is an `Err` instead
    /// of a panic — the entry point the serving layer uses so a
    /// cancelled job becomes a typed 504 body, not a dead worker.
    ///
    /// # Errors
    ///
    /// [`RunError::DeadlineExceeded`] when a
    /// [`deadline_cycles`](Self::deadline_cycles) budget is exhausted
    /// during the profiling pass or the mapped run.
    ///
    /// # Panics
    ///
    /// Panics if no workload was attached, or on simulator errors
    /// (workloads and MDA mappings are trusted fixtures).
    pub fn try_run(self) -> Result<RunMetrics, RunError> {
        let mut slot = self.workload;
        let workload: &mut dyn Workload = match &mut slot {
            WorkloadSlot::None => panic!("RunBuilder::run requires .workload(..)"),
            WorkloadSlot::Borrowed(w) => *w,
            WorkloadSlot::Owned(b) => b.as_mut(),
        };
        let via_multi = match self.cores {
            None => false,
            Some(1) => true,
            Some(n) => panic!(
                "RunBuilder::try_run with .cores({n}): a single-core workload cannot shard; \
                 attach .workload_multi(..) and call try_run_multi()"
            ),
        };
        let (structure, kind) = self
            .structure
            .unwrap_or_else(|| (SpmStructure::ftspm(), StructureKind::Ftspm));

        let profile = match self.profile {
            Some(p) => p,
            None => try_profile_workload(workload, self.deadline_cycles)?,
        };
        let mapping = match self.mapping {
            Some(m) => m,
            None => {
                let program = workload.program().clone();
                match kind {
                    StructureKind::Ftspm => {
                        run_mda(&program, &profile, &structure, &self.optimize.thresholds())
                    }
                    _ => run_baseline(&program, &profile, &structure),
                }
            }
        };

        match (self.recorder, self.observer) {
            (Some(recorder), _) => {
                recorder.phase("profile", profile.total_cycles);
                recorder.phase("mda", 1);
                // The run span's length is only known afterwards: align
                // events now, append the span once cycles are in.
                recorder.align_to_phases();
                let metrics = dispatch(
                    via_multi,
                    workload,
                    &structure,
                    kind,
                    mapping,
                    &profile,
                    self.faults.as_ref(),
                    self.deadline_cycles,
                    recorder,
                )?;
                recorder.phase("run", metrics.cycles);
                if let Some(stats) = &metrics.recovery {
                    recorder.record_fault_stats(stats);
                }
                recorder.phase("report", 1);
                Ok(metrics)
            }
            (None, Some(observer)) => dispatch(
                via_multi,
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                observer,
            ),
            (None, None) => dispatch(
                via_multi,
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                &mut NullObserver,
            ),
        }
    }

    /// Runs the configured N-core workload
    /// ([`workload_multi`](Self::workload_multi)) on the configured
    /// structure in deterministic lockstep and returns its metrics plus
    /// the coherence-side measurements.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run), for the multi-core path — use
    /// [`try_run_multi`](Self::try_run_multi) to handle deadline
    /// cancellation as a value.
    pub fn run_multi(self) -> MultiRunMetrics {
        self.try_run_multi()
            .unwrap_or_else(|e| panic!("multi-core run failed: {e}"))
    }

    /// [`run_multi`](Self::run_multi), with deadline exhaustion as an
    /// `Err`.
    ///
    /// Missing inputs are computed as in [`try_run`](Self::try_run),
    /// with one multi-core twist: the profiling pass also measures
    /// per-block *sharer counts*, and a computed FTSPM mapping uses
    /// [`run_mda_multicore`] so blocks shared across cores weigh their
    /// cross-core fault exposure in the eviction and ECC/parity splits.
    ///
    /// # Errors
    ///
    /// [`RunError::DeadlineExceeded`] as [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics if no multi-core workload was attached, if
    /// [`cores`](Self::cores) disagrees with the workload's own core
    /// count, or on simulator errors.
    pub fn try_run_multi(self) -> Result<MultiRunMetrics, RunError> {
        let mut slot = self.workload_multi;
        let workload: &mut dyn MultiWorkload = match &mut slot {
            MultiWorkloadSlot::None => {
                panic!("RunBuilder::run_multi requires .workload_multi(..)")
            }
            MultiWorkloadSlot::Borrowed(w) => *w,
            MultiWorkloadSlot::Owned(b) => b.as_mut(),
        };
        if let Some(cores) = self.cores {
            assert_eq!(
                cores,
                workload.cores(),
                "RunBuilder::cores({cores}) disagrees with the workload's core count"
            );
        }
        let (structure, kind) = self
            .structure
            .unwrap_or_else(|| (SpmStructure::ftspm(), StructureKind::Ftspm));

        let (profile, sharers) = match self.profile {
            Some(p) => (p, None),
            None => {
                let (p, s) = try_profile_multi_workload(workload, self.deadline_cycles)?;
                (p, Some(s))
            }
        };
        let mapping = match self.mapping {
            Some(m) => m,
            None => {
                let program = workload.program().clone();
                match (kind, sharers) {
                    (StructureKind::Ftspm, Some(sharers)) => run_mda_multicore(
                        &program,
                        &profile,
                        &structure,
                        &self.optimize.thresholds(),
                        &sharers,
                    ),
                    (StructureKind::Ftspm, None) => {
                        run_mda(&program, &profile, &structure, &self.optimize.thresholds())
                    }
                    _ => run_baseline(&program, &profile, &structure),
                }
            }
        };

        match (self.recorder, self.observer) {
            (Some(recorder), _) => {
                recorder.phase("profile", profile.total_cycles);
                recorder.phase("mda", 1);
                recorder.align_to_phases();
                let metrics = try_run_multi_inner(
                    workload,
                    &structure,
                    kind,
                    mapping,
                    &profile,
                    self.faults.as_ref(),
                    self.deadline_cycles,
                    recorder,
                )?;
                recorder.phase("run", metrics.base.cycles);
                if let Some(stats) = &metrics.base.recovery {
                    recorder.record_fault_stats(stats);
                }
                recorder.record_coherence(&metrics.coherence, &metrics.per_core);
                recorder.phase("report", 1);
                Ok(metrics)
            }
            (None, Some(observer)) => try_run_multi_inner(
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                observer,
            ),
            (None, None) => try_run_multi_inner(
                workload,
                &structure,
                kind,
                mapping,
                &profile,
                self.faults.as_ref(),
                self.deadline_cycles,
                &mut NullObserver,
            ),
        }
    }

    /// Evaluates every workload on FTSPM and both baselines, one
    /// workload per executor task (`ftspm_testkit::par`, honouring
    /// [`threads`](Self::threads) / the `FTSPM_THREADS` knob).
    ///
    /// Each evaluation is an independent deterministic simulation and
    /// results return in input order, so the output is identical at
    /// every thread count, including 1. With a recorder attached, each
    /// shard records into a private registry and the registries merge
    /// into the recorder **in input order** — so the merged counters
    /// are bit-identical at every thread count too. Shard traces are
    /// discarded (interleaving them has no single timeline); suite
    /// observability is counters-only.
    ///
    /// # Panics
    ///
    /// Panics if fault options or a raw observer are attached: live
    /// injection is a single-run feature, and one `&mut` observer
    /// cannot be shared across shards.
    pub fn run_suite(
        self,
        workloads: Vec<Box<dyn Workload>>,
        optimize: OptimizeFor,
    ) -> Vec<WorkloadEvaluation> {
        assert!(
            self.faults.is_none(),
            "RunBuilder::run_suite does not support fault injection; use .faults(..).run() per workload"
        );
        assert!(
            self.observer.is_none(),
            "RunBuilder::run_suite cannot share one observer across shards; use .recorder(..)"
        );
        let threads = self
            .threads
            .unwrap_or_else(ftspm_testkit::par::thread_count);
        match self.recorder {
            None => ftspm_testkit::par::par_map_threads(threads, workloads, |mut w| {
                evaluate_workload_observed(w.as_mut(), optimize, &mut NullObserver)
            }),
            Some(recorder) => {
                let config = recorder.config();
                let sharded = ftspm_testkit::par::par_map_threads(threads, workloads, |mut w| {
                    let mut shard = Recorder::new(config);
                    let eval = evaluate_workload_observed(w.as_mut(), optimize, &mut shard);
                    let (registry, _trace) = shard.into_parts();
                    (eval, registry)
                });
                let mut evals = Vec::with_capacity(sharded.len());
                for (eval, registry) in sharded {
                    recorder.registry_mut().merge(&registry);
                    evals.push(eval);
                }
                evals
            }
        }
    }
}
