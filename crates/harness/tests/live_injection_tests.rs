//! Fault injection against *live* memory images: run the case study on
//! the FTSPM structure, then bombard each region's actual post-run
//! contents. Outcome rates must match the per-scheme model regardless of
//! what data the regions hold (the codes are data-agnostic).

use ftspm_core::mda::run_mda;
use ftspm_core::{OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::MbuDistribution;
use ftspm_faults::{run_campaign, RegionImage};
use ftspm_harness::{profile_workload, report, LiveFaultOptions, RunBuilder, StructureKind};
use ftspm_sim::{Cpu, Machine, MachineConfig, NullObserver};
use ftspm_workloads::{CaseStudy, Workload};

#[test]
fn live_region_images_obey_the_scheme_model() {
    let mut w = CaseStudy::new();
    let profile = profile_workload(&mut w);
    let structure = SpmStructure::ftspm();
    let mapping = run_mda(
        w.program(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let placement = mapping.placement(w.program(), &structure).expect("fits");
    let mut machine = Machine::new(
        MachineConfig::with_regions(structure.specs()),
        w.program().clone(),
        placement,
    )
    .expect("machine");
    w.init(machine.dram_mut());
    let mut obs = NullObserver;
    {
        let mut cpu = Cpu::new(&mut machine, &mut obs);
        let got = w.run(&mut cpu).expect("runs");
        assert_eq!(got, w.expected_checksum());
    }
    machine.finish(&mut obs);

    let mbu = MbuDistribution::default();
    for (region, (_, spec)) in machine.regions().iter().zip(structure.regions()) {
        // Rebuild the region's contents as data words.
        let words: Vec<u32> = region
            .storage()
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("word")))
            .collect();
        let image = RegionImage::new(spec.scheme(), words);
        let result = run_campaign(&image, mbu, 50_000, 0xFEED);
        let analytic = spec.scheme().vulnerability_weight(mbu);
        assert!(
            (result.vulnerability_weight() - analytic).abs() < 0.02,
            "{}: empirical {} vs analytic {analytic}",
            spec.name(),
            result.vulnerability_weight()
        );
    }
}

/// The acceptance run: the case study on FTSPM with live single-bit
/// strikes on the SEC-DED region. SEC-DED corrects every single flip, so
/// the run must complete with the right checksum and zero SDC escapes,
/// and the harness report must carry the full recovery tally.
#[test]
fn live_single_bit_strikes_on_secded_recover_with_zero_sdc() {
    let mut w = CaseStudy::new();
    let profile = profile_workload(&mut w);
    let structure = SpmStructure::ftspm();
    let mapping = run_mda(
        w.program(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let opts = LiveFaultOptions::builder(0x5EC_DED, 2_000.0)
        .mbu(MbuDistribution::new(1.0, 0.0, 0.0, 0.0))
        .restrict_to(vec![RegionRole::DataEcc])
        .scrub_interval(10_000)
        .build()
        .expect("valid fault options");
    let run = RunBuilder::new()
        .workload(&mut w)
        .structure(&structure, StructureKind::Ftspm)
        .mapping(mapping)
        .profile(&profile)
        .faults(opts)
        .run();
    assert!(run.checksum_ok, "recovered run computes the right answer");
    let rec = run.recovery.expect("faulted run reports recovery stats");
    assert!(rec.strikes > 0, "strikes landed during the run: {rec:?}");
    assert_eq!(
        rec.sdc_escapes, 0,
        "SEC-DED + scrub stops every single-bit strike: {rec:?}"
    );
    assert!(
        rec.corrections + rec.scrub_corrections > 0,
        "flips were actively corrected: {rec:?}"
    );
    assert!(rec.scrub_passes > 0, "the scrub daemon ran: {rec:?}");
    assert!(rec.recovery_cycles > 0, "recovery charged real cycles");

    let text = report::recovery(&run);
    for needle in [
        "strikes injected",
        "corrections (DRE)",
        "DUE traps",
        "DUE recovery retries",
        "scrub passes",
        "quarantined lines",
        "remapped blocks",
        "recovery overhead",
    ] {
        assert!(text.contains(needle), "report misses `{needle}`:\n{text}");
    }
}

/// A clean run renders a recovery report too, flagged as clean.
#[test]
fn clean_runs_report_no_recovery_metrics() {
    let mut w = CaseStudy::new();
    let profile = profile_workload(&mut w);
    let structure = SpmStructure::ftspm();
    let mapping = run_mda(
        w.program(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let run = RunBuilder::new()
        .workload(&mut w)
        .structure(&structure, StructureKind::Ftspm)
        .mapping(mapping)
        .profile(&profile)
        .run();
    assert!(run.recovery.is_none());
    assert!(report::recovery(&run).contains("clean run"));
}
