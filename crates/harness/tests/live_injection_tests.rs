//! Fault injection against *live* memory images: run the case study on
//! the FTSPM structure, then bombard each region's actual post-run
//! contents. Outcome rates must match the per-scheme model regardless of
//! what data the regions hold (the codes are data-agnostic).

use ftspm_core::mda::run_mda;
use ftspm_core::{OptimizeFor, SpmStructure};
use ftspm_ecc::MbuDistribution;
use ftspm_faults::{run_campaign, RegionImage};
use ftspm_harness::profile_workload;
use ftspm_sim::{Cpu, Machine, MachineConfig, NullObserver};
use ftspm_workloads::{CaseStudy, Workload};

#[test]
fn live_region_images_obey_the_scheme_model() {
    let mut w = CaseStudy::new();
    let profile = profile_workload(&mut w);
    let structure = SpmStructure::ftspm();
    let mapping = run_mda(
        w.program(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let placement = mapping.placement(w.program(), &structure).expect("fits");
    let mut machine = Machine::new(
        MachineConfig::with_regions(structure.specs()),
        w.program().clone(),
        placement,
    )
    .expect("machine");
    w.init(machine.dram_mut());
    let mut obs = NullObserver;
    {
        let mut cpu = Cpu::new(&mut machine, &mut obs);
        let got = w.run(&mut cpu).expect("runs");
        assert_eq!(got, w.expected_checksum());
    }
    machine.finish(&mut obs);

    let mbu = MbuDistribution::default();
    for (region, (_, spec)) in machine.regions().iter().zip(structure.regions()) {
        // Rebuild the region's contents as data words.
        let words: Vec<u32> = region
            .storage()
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("word")))
            .collect();
        let image = RegionImage::new(spec.scheme(), words);
        let result = run_campaign(&image, mbu, 50_000, 0xFEED);
        let analytic = spec.scheme().vulnerability_weight(mbu);
        assert!(
            (result.vulnerability_weight() - analytic).abs() < 0.02,
            "{}: empirical {} vs analytic {analytic}",
            spec.name(),
            result.vulnerability_weight()
        );
    }
}
