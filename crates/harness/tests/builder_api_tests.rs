//! The `RunBuilder` API contract: the deprecated free functions are
//! thin wrappers that produce identical results, and
//! `LiveFaultOptionsBuilder::build` rejects each structurally invalid
//! field with the right typed error.

use ftspm_core::mda::run_mda;
use ftspm_core::{OptimizeFor, SpmStructure};
use ftspm_harness::{
    profile_workload, FaultOptionsError, LiveFaultOptions, RunBuilder, StructureKind,
};
use ftspm_workloads::{CaseStudy, Workload};

#[test]
#[allow(deprecated)]
fn deprecated_run_on_structure_matches_run_builder() {
    let structure = SpmStructure::ftspm();
    let profile = profile_workload(&mut CaseStudy::new());
    let mapping = run_mda(
        &CaseStudy::new().program().clone(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );

    let mut w = CaseStudy::new();
    let old = ftspm_harness::run_on_structure(
        &mut w,
        &structure,
        StructureKind::Ftspm,
        mapping.clone(),
        &profile,
    );

    let mut w = CaseStudy::new();
    let new = RunBuilder::new()
        .workload(&mut w)
        .structure(&structure, StructureKind::Ftspm)
        .mapping(mapping)
        .profile(&profile)
        .run();

    assert_eq!(old.cycles, new.cycles);
    assert_eq!(old.instructions, new.instructions);
    assert_eq!(old.spm_dynamic_pj.to_bits(), new.spm_dynamic_pj.to_bits());
    assert_eq!(old.vulnerability.to_bits(), new.vulnerability.to_bits());
    assert!(old.checksum_ok && new.checksum_ok);
}

#[test]
#[allow(deprecated)]
fn deprecated_evaluate_suite_matches_run_builder() {
    let old =
        ftspm_harness::evaluate_suite(vec![Box::new(CaseStudy::new())], OptimizeFor::Reliability);
    let new =
        RunBuilder::new().run_suite(vec![Box::new(CaseStudy::new())], OptimizeFor::Reliability);
    assert_eq!(
        ftspm_harness::report::suite_csv(&old),
        ftspm_harness::report::suite_csv(&new)
    );
}

#[test]
fn builder_defaults_build_cleanly() {
    let opts = LiveFaultOptions::builder(7, 1_000.0)
        .build()
        .expect("defaults are valid");
    assert_eq!(opts.seed, 7);
    assert_eq!(opts.due_retry_limit, 3);
    assert_eq!(opts.scrub_interval, None);
}

#[test]
fn builder_rejects_invalid_strike_means() {
    for mean in [0.0, 0.5, -1.0, f64::NAN, f64::INFINITY] {
        assert_eq!(
            LiveFaultOptions::builder(0, mean).build().unwrap_err(),
            FaultOptionsError::InvalidStrikeMean,
            "mean={mean}"
        );
    }
}

#[test]
fn builder_rejects_zero_bounds() {
    assert_eq!(
        LiveFaultOptions::builder(0, 1_000.0)
            .due_retry_limit(0)
            .build()
            .unwrap_err(),
        FaultOptionsError::ZeroRetryLimit
    );
    assert_eq!(
        LiveFaultOptions::builder(0, 1_000.0)
            .quarantine_due_threshold(0)
            .build()
            .unwrap_err(),
        FaultOptionsError::ZeroQuarantineThreshold
    );
    assert_eq!(
        LiveFaultOptions::builder(0, 1_000.0)
            .scrub_interval(0)
            .build()
            .unwrap_err(),
        FaultOptionsError::ZeroScrubInterval
    );
    assert_eq!(
        LiveFaultOptions::builder(0, 1_000.0)
            .line_write_budget(0)
            .build()
            .unwrap_err(),
        FaultOptionsError::ZeroWriteBudget
    );
}

#[test]
fn fault_options_errors_display_the_offending_field() {
    let msg = FaultOptionsError::ZeroScrubInterval.to_string();
    assert!(msg.contains("scrub_interval"), "{msg}");
    let msg = FaultOptionsError::InvalidStrikeMean.to_string();
    assert!(msg.contains("mean_cycles_between_strikes"), "{msg}");
}
