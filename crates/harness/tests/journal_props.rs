//! Property tests of the crash-only journal decoder: arbitrary bytes,
//! truncations of valid journals, and single-bit flips must never
//! panic and must never let a campaign silently resume from damaged
//! records. Failures shrink and persist their seeds next to this file.
//!
//! The torn-tail/corruption distinction under test (DESIGN.md §13):
//! a journal cut mid-record is the *expected* crash signature and
//! yields the clean prefix; a *complete* record failing its CRC is
//! storage damage and must be a hard error.

use ftspm_harness::journal::{decode, encode, DecodeError, Journal, Tail};
use ftspm_testkit::prop::{any_int, check, int_range, vec_of, Config};

fn cfg() -> Config {
    Config::default().persisting(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/journal_props.regressions"
    ))
}

/// A strategy-shaped record set: small payloads of arbitrary bytes.
fn records_from(raw: &[Vec<u8>]) -> Vec<Vec<u8>> {
    raw.to_vec()
}

/// Arbitrary bytes decode to a value or a typed error — never a panic,
/// and a successful decode round-trips through `encode`.
#[test]
fn decoder_never_panics_on_junk() {
    check(
        &cfg(),
        &vec_of(any_int::<u8>(), 0..600),
        |bytes: &Vec<u8>| {
            if let Ok((records, tail)) = decode(bytes) {
                // Whatever decoded is a journal again; a clean decode
                // of the re-encoding returns the same records.
                let reencoded = encode(&records);
                assert_eq!(decode(&reencoded), Ok((records, Tail::Clean)));
                let _ = tail;
            }
        },
    );
}

/// Every truncation of a valid journal decodes to a *prefix* of the
/// original records — the torn bytes are dropped, nothing is invented,
/// and nothing errors (a torn tail is a crash signature, not damage).
#[test]
fn truncations_yield_a_clean_prefix() {
    check(
        &cfg(),
        &(
            vec_of(vec_of(any_int::<u8>(), 0..24), 0..6),
            any_int::<u16>(),
        ),
        |(raw, cut_seed)| {
            let records = records_from(raw);
            let full = encode(&records);
            let cut = usize::from(*cut_seed) % (full.len() + 1);
            let (prefix, tail) =
                decode(&full[..cut]).expect("truncation is a torn tail, never a decode error");
            assert!(
                prefix.len() <= records.len() && prefix == records[..prefix.len()],
                "decoded records must be a prefix of the originals"
            );
            if cut == full.len() {
                assert_eq!(tail, Tail::Clean);
                assert_eq!(prefix, records);
            }
        },
    );
}

/// A single flipped bit anywhere in a valid journal never panics and
/// never fabricates records: whatever still decodes is a prefix of the
/// originals, and a flip inside a *complete* record is a hard
/// [`DecodeError::Corrupt`] — the decoder refuses to resume over it.
#[test]
fn bit_flips_never_fabricate_records() {
    check(
        &cfg(),
        &(
            vec_of(vec_of(any_int::<u8>(), 1..24), 1..5),
            any_int::<u32>(),
        ),
        |(raw, flip_seed)| {
            let records = records_from(raw);
            let mut bytes = encode(&records);
            let bit = *flip_seed as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            match decode(&bytes) {
                Ok((decoded, _)) => {
                    assert!(
                        decoded.len() <= records.len() && decoded == records[..decoded.len()],
                        "a bit flip must not fabricate or reorder records"
                    );
                    // A flip that leaves every record intact can only
                    // have hit a length field (turning the tail torn);
                    // it cannot leave the journal bitwise identical.
                    assert_ne!(bytes, encode(&records));
                }
                Err(DecodeError::BadHeader | DecodeError::Corrupt { .. }) => {}
                Err(_) => {} // non_exhaustive: any typed error is fine
            }
        },
    );
}

/// A payload flip in a journal whose records are all complete must be
/// reported as [`DecodeError::Corrupt`] with the damaged record's
/// index — never a silent success.
#[test]
fn payload_flips_in_complete_records_are_corrupt() {
    check(
        &cfg(),
        &(int_range(0u32..3), int_range(0u32..16), int_range(0u32..8)),
        |&(victim, byte, bit)| {
            let records: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i.wrapping_mul(37); 16]).collect();
            let mut bytes = encode(&records);
            // Offset of record `victim`'s payload byte `byte`:
            // 12-byte header, then (8 + 16) per earlier record, then
            // the 8-byte record header.
            let offset = 12 + victim as usize * (8 + 16) + 8 + byte as usize;
            bytes[offset] ^= 1 << bit;
            assert_eq!(
                decode(&bytes),
                Err(DecodeError::Corrupt {
                    index: victim as usize
                })
            );
        },
    );
}

/// Named regression: a record cut *mid-CRC* (1–7 bytes of the 8-byte
/// length+CRC header present) is a torn tail with the earlier records
/// intact — the exact shape a `kill -9` between header bytes leaves.
#[test]
fn record_cut_mid_crc_is_a_torn_tail() {
    let records = vec![vec![1u8, 2, 3], vec![4u8, 5, 6, 7]];
    let full = encode(&records);
    let second_record_start = 12 + 8 + records[0].len();
    for partial_header in 1..8 {
        let cut = second_record_start + partial_header;
        let (prefix, tail) = decode(&full[..cut]).expect("mid-CRC cut is torn, not corrupt");
        assert_eq!(prefix, records[..1], "cut at {partial_header} header bytes");
        assert_eq!(tail, Tail::Torn);
    }
}

/// File-level crash shapes: a journal file with a torn tail opens to
/// the clean prefix, and the next append rewrites the tear away.
#[test]
fn torn_files_open_and_heal_on_append() {
    let dir = std::env::temp_dir().join(format!("ftspm-journal-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torn.jnl");

    let mut journal = Journal::create(&path).expect("create");
    journal.append(b"shard-0").expect("append");
    journal.append(b"shard-1").expect("append");

    // Tear the file mid-record, as a crash during a (non-atomic)
    // storage layer might leave it.
    let bytes = std::fs::read(&path).expect("read journal");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear file");

    let (mut reopened, tail) = Journal::open(&path).expect("torn tail is not an error");
    assert_eq!(tail, Tail::Torn);
    assert_eq!(reopened.records(), [b"shard-0".to_vec()]);

    reopened.append(b"shard-1-again").expect("append heals");
    let (healed, tail) = Journal::open(&path).expect("healed journal");
    assert_eq!(tail, Tail::Clean);
    assert_eq!(
        healed.records(),
        [b"shard-0".to_vec(), b"shard-1-again".to_vec()]
    );

    // A *complete* record damaged in place is a hard error on open.
    let mut bytes = std::fs::read(&path).expect("read journal");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("damage file");
    assert!(Journal::open(&path).is_err(), "corruption must not open");

    std::fs::remove_dir_all(&dir).ok();
}
