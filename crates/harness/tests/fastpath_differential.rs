//! Fast-path / reference-path equivalence battery.
//!
//! The simulator's event-gated fault hot path (PR 6) claims to be
//! *observably byte-identical* to the per-access reference path it
//! replaced. This suite is the proof: every in-tree kernel ×
//! {none, parity, SEC-DED} on the struck region × {clean, armed-idle,
//! striking} runs through both paths (`LiveFaultOptions::reference_path`)
//! and every artifact a run produces — recovery report, obs metrics CSV,
//! chrome trace JSON, final cycle count, checksum verdict — must match
//! byte for byte.
//!
//! Combos fan out over `ftspm_testkit::par` (the `FTSPM_THREADS` knob),
//! and `ci.sh` re-runs the battery at 1 and nproc threads; a dedicated
//! test additionally pins that the collected artifacts are identical at
//! both thread counts within one process.
//!
//! `FTSPM_DIFF_KERNELS=<n>` truncates the kernel list (the timeout-bounded
//! CI smoke mode); unset runs everything.

use std::num::NonZeroUsize;

use ftspm_core::mda::run_mda;
use ftspm_core::{OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::ProtectionScheme;
use ftspm_harness::{profile_workload, LiveFaultOptions, RunBuilder, StructureKind};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_obs::{chrome_trace_json, Recorder};
use ftspm_profile::Profile;
use ftspm_sim::SpmRegionSpec;
use ftspm_testkit::par;
use ftspm_workloads::{evaluation_set, Workload};

/// Protection variants of the struck region. `SecDed` is the stock FTSPM
/// ECC region; the other two swap in a parity / unprotected SRAM of the
/// same geometry so each decode outcome class (DRE, DUE, SDC) dominates
/// in at least one variant.
const SCHEMES: [ProtectionScheme; 3] = [
    ProtectionScheme::None,
    ProtectionScheme::Parity,
    ProtectionScheme::SecDed,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fault machinery attached but disarmed (no eligible region): the
    /// purest hot-path case — strikes can never land.
    Clean,
    /// Armed with an astronomically long inter-arrival: the injector is
    /// live, its first strike never arrives inside the run.
    ArmedIdle,
    /// Strikes land for real, with the scrub daemon sweeping.
    Striking,
}

const MODES: [Mode; 3] = [Mode::Clean, Mode::ArmedIdle, Mode::Striking];

/// An FTSPM structure whose DataEcc-role region runs `scheme`.
fn structure_with(scheme: ProtectionScheme) -> SpmStructure {
    let (name, tech) = match scheme {
        ProtectionScheme::None => ("D-SPM bare SRAM", Technology::SramUnprotected),
        ProtectionScheme::Parity => ("D-SPM parity SRAM", Technology::SramParity),
        ProtectionScheme::SecDed => ("D-SPM SEC-DED SRAM", Technology::SramSecDed),
        ProtectionScheme::Immune => unreachable!("not a variant under test"),
    };
    SpmStructure::new(
        "FTSPM (differential)",
        vec![
            (
                RegionRole::Instruction,
                SpmRegionSpec::new(
                    "I-SPM STT-RAM",
                    Technology::SttRam,
                    ProtectionScheme::Immune,
                    RegionGeometry::from_kib(16),
                ),
            ),
            (
                RegionRole::DataStt,
                SpmRegionSpec::new(
                    "D-SPM STT-RAM",
                    Technology::SttRam,
                    ProtectionScheme::Immune,
                    RegionGeometry::from_kib(12),
                ),
            ),
            (
                RegionRole::DataEcc,
                SpmRegionSpec::new(name, tech, scheme, RegionGeometry::from_kib(2)),
            ),
            (
                RegionRole::DataParity,
                SpmRegionSpec::new(
                    "D-SPM parity SRAM",
                    Technology::SramParity,
                    ProtectionScheme::Parity,
                    RegionGeometry::from_kib(2),
                ),
            ),
        ],
    )
}

/// Fault options for one cell of the matrix. Striking rates are tuned per
/// scheme so each variant exercises its dominant outcome class (SEC-DED:
/// corrections + DUE recovery + quarantine, parity: DUE traps, none: SDC
/// escapes) while runs still complete.
fn fault_opts(mode: Mode, scheme: ProtectionScheme, reference: bool) -> LiveFaultOptions {
    let b = match mode {
        Mode::Clean => LiveFaultOptions::builder(0xD1FF, 1e9).restrict_to(vec![]),
        Mode::ArmedIdle => {
            LiveFaultOptions::builder(0xD1FF, 1e15).restrict_to(vec![RegionRole::DataEcc])
        }
        Mode::Striking => {
            let mean = match scheme {
                ProtectionScheme::SecDed => 2_500.0,
                ProtectionScheme::Parity => 6_000.0,
                _ => 60_000.0,
            };
            LiveFaultOptions::builder(0xD1FF, mean)
                .restrict_to(vec![RegionRole::DataEcc])
                .scrub_interval(20_000)
                .quarantine_due_threshold(2)
        }
    };
    b.reference_path(reference).build().expect("valid options")
}

/// Everything a run emits, rendered to bytes.
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    cycles: u64,
    checksum_ok: bool,
    recovery: String,
    csv: String,
    trace: String,
}

fn run_one(
    w: &mut dyn Workload,
    structure: &SpmStructure,
    profile: &Profile,
    mapping: ftspm_core::mda::MdaOutput,
    opts: LiveFaultOptions,
) -> Artifacts {
    let mut rec = Recorder::recovery_only(4096);
    let metrics = RunBuilder::new()
        .workload(w)
        .structure(structure, StructureKind::Ftspm)
        .mapping(mapping)
        .profile(profile)
        .faults(opts)
        .recorder(&mut rec)
        .run();
    let (registry, trace) = rec.into_parts();
    Artifacts {
        cycles: metrics.cycles,
        checksum_ok: metrics.checksum_ok,
        recovery: format!("{:?}", metrics.recovery),
        csv: registry.to_csv(),
        trace: chrome_trace_json(&trace, None),
    }
}

/// Runs one matrix cell through both paths and returns
/// `(label, fast, reference)`.
fn diff_cell(
    kernel: usize,
    scheme: ProtectionScheme,
    mode: Mode,
) -> (String, Artifacts, Artifacts) {
    let mut workloads = evaluation_set();
    let w = workloads[kernel].as_mut();
    let label = format!("{} / {scheme:?} / {mode:?}", w.name());
    let profile = profile_workload(w);
    let structure = structure_with(scheme);
    let mapping = run_mda(
        &w.program().clone(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let fast = run_one(
        w,
        &structure,
        &profile,
        mapping.clone(),
        fault_opts(mode, scheme, false),
    );
    let reference = run_one(
        w,
        &structure,
        &profile,
        mapping,
        fault_opts(mode, scheme, true),
    );
    (label, fast, reference)
}

fn kernel_count() -> usize {
    let all = evaluation_set().len();
    match std::env::var("FTSPM_DIFF_KERNELS") {
        Ok(v) => v.trim().parse::<usize>().map_or(all, |n| n.clamp(1, all)),
        Err(_) => all,
    }
}

/// The full battery: every kernel × scheme × mode, fast vs reference,
/// every artifact byte-identical.
#[test]
fn fast_path_is_byte_identical_to_reference_everywhere() {
    let mut cells = Vec::new();
    for k in 0..kernel_count() {
        for scheme in SCHEMES {
            for mode in MODES {
                cells.push((k, scheme, mode));
            }
        }
    }
    let results = par::par_map(cells, |(k, scheme, mode)| diff_cell(k, scheme, mode));
    let mut struck = 0usize;
    for (label, fast, reference) in &results {
        assert_eq!(
            fast, reference,
            "{label}: fast path diverged from the reference path"
        );
        if fast.recovery.contains("strikes: 0") || fast.recovery == "None" {
            continue;
        }
        struck += 1;
    }
    // The matrix must actually exercise the fault machinery, not just
    // idle through it: every striking cell lands at least one strike.
    let striking_cells = results.len() / MODES.len();
    assert_eq!(
        struck, striking_cells,
        "every striking cell should land strikes"
    );
}

/// The collected artifacts are identical when the battery fans out on 1
/// thread and on the machine's parallelism — the cross-thread-count half
/// of the determinism contract, pinned inside a single process.
#[test]
fn differential_battery_is_thread_count_invariant() {
    // A representative slice: the case study across every scheme in
    // striking mode (the mode with real work in it).
    let cells: Vec<(usize, ProtectionScheme, Mode)> = SCHEMES
        .iter()
        .map(|&scheme| (0, scheme, Mode::Striking))
        .collect();
    let one = NonZeroUsize::new(1).expect("non-zero");
    let seq = par::par_map_threads(one, cells.clone(), |(k, s, m)| diff_cell(k, s, m));
    let par = par::par_map_threads(par::thread_count(), cells, |(k, s, m)| diff_cell(k, s, m));
    for ((l1, f1, r1), (l2, f2, r2)) in seq.iter().zip(par.iter()) {
        assert_eq!(l1, l2);
        assert_eq!((f1, r1), (f2, r2), "{l1}: thread count changed artifacts");
    }
}
