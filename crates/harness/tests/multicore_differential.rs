//! Multi-core differential battery.
//!
//! Two contracts, pinned byte-for-byte:
//!
//! 1. **1-core identity.** A [`ftspm_sim::MultiMachine`] with `cores = 1`
//!    (`RunBuilder::cores(1)`) is *observably byte-identical* to the
//!    plain `Machine` path for every in-tree kernel × {none, parity,
//!    SEC-DED} on the struck region × {clean, armed-idle, striking}:
//!    cycles, checksum verdict, recovery report, obs metrics CSV and
//!    chrome trace JSON all match. The coherence hub's snoop loops
//!    iterate zero parked caches at one core — this suite is the proof
//!    they are inert, not just believed to be.
//! 2. **N-core replay.** A multi-core kernel with the same seed replays
//!    bit-for-bit, and the collected artifacts are identical when the
//!    battery fans out at 1 host thread and at nproc (`FTSPM_THREADS`
//!    invariance) — the lockstep schedule is a pure function of
//!    simulated cycles, never of host threads.
//!
//! `FTSPM_DIFF_KERNELS=<n>` truncates the kernel list (the
//! timeout-bounded CI smoke mode); unset runs everything.

use std::num::NonZeroUsize;

use ftspm_core::mda::run_mda;
use ftspm_core::{OptimizeFor, RegionRole, SpmStructure};
use ftspm_ecc::ProtectionScheme;
use ftspm_harness::{profile_workload, LiveFaultOptions, RunBuilder, StructureKind};
use ftspm_mem::{RegionGeometry, Technology};
use ftspm_obs::{chrome_trace_json, Recorder};
use ftspm_profile::Profile;
use ftspm_sim::SpmRegionSpec;
use ftspm_testkit::par;
use ftspm_workloads::{evaluation_set, multicore_registry, Workload};

const SCHEMES: [ProtectionScheme; 3] = [
    ProtectionScheme::None,
    ProtectionScheme::Parity,
    ProtectionScheme::SecDed,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fault machinery attached but disarmed (no eligible region).
    Clean,
    /// Armed, first strike never arrives inside the run.
    ArmedIdle,
    /// Strikes land for real, scrub daemon sweeping.
    Striking,
}

const MODES: [Mode; 3] = [Mode::Clean, Mode::ArmedIdle, Mode::Striking];

/// An FTSPM structure whose DataEcc-role region runs `scheme` (same
/// geometry as the fast-path differential suite).
fn structure_with(scheme: ProtectionScheme) -> SpmStructure {
    let (name, tech) = match scheme {
        ProtectionScheme::None => ("D-SPM bare SRAM", Technology::SramUnprotected),
        ProtectionScheme::Parity => ("D-SPM parity SRAM", Technology::SramParity),
        ProtectionScheme::SecDed => ("D-SPM SEC-DED SRAM", Technology::SramSecDed),
        ProtectionScheme::Immune => unreachable!("not a variant under test"),
    };
    SpmStructure::new(
        "FTSPM (multicore differential)",
        vec![
            (
                RegionRole::Instruction,
                SpmRegionSpec::new(
                    "I-SPM STT-RAM",
                    Technology::SttRam,
                    ProtectionScheme::Immune,
                    RegionGeometry::from_kib(16),
                ),
            ),
            (
                RegionRole::DataStt,
                SpmRegionSpec::new(
                    "D-SPM STT-RAM",
                    Technology::SttRam,
                    ProtectionScheme::Immune,
                    RegionGeometry::from_kib(12),
                ),
            ),
            (
                RegionRole::DataEcc,
                SpmRegionSpec::new(name, tech, scheme, RegionGeometry::from_kib(2)),
            ),
            (
                RegionRole::DataParity,
                SpmRegionSpec::new(
                    "D-SPM parity SRAM",
                    Technology::SramParity,
                    ProtectionScheme::Parity,
                    RegionGeometry::from_kib(2),
                ),
            ),
        ],
    )
}

fn fault_opts(mode: Mode, scheme: ProtectionScheme) -> LiveFaultOptions {
    let b = match mode {
        Mode::Clean => LiveFaultOptions::builder(0xD1FF, 1e9).restrict_to(vec![]),
        Mode::ArmedIdle => {
            LiveFaultOptions::builder(0xD1FF, 1e15).restrict_to(vec![RegionRole::DataEcc])
        }
        Mode::Striking => {
            let mean = match scheme {
                ProtectionScheme::SecDed => 2_500.0,
                ProtectionScheme::Parity => 6_000.0,
                _ => 60_000.0,
            };
            LiveFaultOptions::builder(0xD1FF, mean)
                .restrict_to(vec![RegionRole::DataEcc])
                .scrub_interval(20_000)
                .quarantine_due_threshold(2)
        }
    };
    b.build().expect("valid options")
}

/// Everything a run emits, rendered to bytes.
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    cycles: u64,
    checksum_ok: bool,
    recovery: String,
    csv: String,
    trace: String,
}

/// One cell, routed through the plain machine (`via_multi = false`) or a
/// 1-core MultiMachine (`via_multi = true`). Everything else identical.
fn run_one(
    w: &mut dyn Workload,
    structure: &SpmStructure,
    profile: &Profile,
    mapping: ftspm_core::mda::MdaOutput,
    opts: LiveFaultOptions,
    via_multi: bool,
) -> Artifacts {
    let mut rec = Recorder::recovery_only(4096);
    let mut b = RunBuilder::new()
        .workload(w)
        .structure(structure, StructureKind::Ftspm)
        .mapping(mapping)
        .profile(profile)
        .faults(opts)
        .recorder(&mut rec);
    if via_multi {
        b = b.cores(1);
    }
    let metrics = b.run();
    let (registry, trace) = rec.into_parts();
    Artifacts {
        cycles: metrics.cycles,
        checksum_ok: metrics.checksum_ok,
        recovery: format!("{:?}", metrics.recovery),
        csv: registry.to_csv(),
        trace: chrome_trace_json(&trace, None),
    }
}

/// Runs one matrix cell through both machines and returns
/// `(label, plain, via_multi)`.
fn diff_cell(
    kernel: usize,
    scheme: ProtectionScheme,
    mode: Mode,
) -> (String, Artifacts, Artifacts) {
    let mut workloads = evaluation_set();
    let w = workloads[kernel].as_mut();
    let label = format!("{} / {scheme:?} / {mode:?}", w.name());
    let profile = profile_workload(w);
    let structure = structure_with(scheme);
    let mapping = run_mda(
        &w.program().clone(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let plain = run_one(
        w,
        &structure,
        &profile,
        mapping.clone(),
        fault_opts(mode, scheme),
        false,
    );
    let multi = run_one(
        w,
        &structure,
        &profile,
        mapping,
        fault_opts(mode, scheme),
        true,
    );
    (label, plain, multi)
}

fn kernel_count() -> usize {
    let all = evaluation_set().len();
    match std::env::var("FTSPM_DIFF_KERNELS") {
        Ok(v) => v.trim().parse::<usize>().map_or(all, |n| n.clamp(1, all)),
        Err(_) => all,
    }
}

/// The full battery: every kernel × scheme × mode, plain machine vs
/// 1-core MultiMachine, every artifact byte-identical.
#[test]
fn one_core_multimachine_is_byte_identical_to_machine() {
    let mut cells = Vec::new();
    for k in 0..kernel_count() {
        for scheme in SCHEMES {
            for mode in MODES {
                cells.push((k, scheme, mode));
            }
        }
    }
    let results = par::par_map(cells, |(k, scheme, mode)| diff_cell(k, scheme, mode));
    let mut struck = 0usize;
    for (label, plain, multi) in &results {
        assert_eq!(
            plain, multi,
            "{label}: 1-core MultiMachine diverged from the plain Machine"
        );
        if plain.recovery.contains("strikes: 0") || plain.recovery == "None" {
            continue;
        }
        struck += 1;
    }
    // The matrix must exercise the fault machinery for real on both
    // machines, not just idle through the comparison.
    let striking_cells = results.len() / MODES.len();
    assert_eq!(
        struck, striking_cells,
        "every striking cell should land strikes"
    );
}

/// Collected artifacts identical at 1 host thread and nproc — the
/// cross-thread-count half of the determinism contract.
#[test]
fn multicore_differential_is_thread_count_invariant() {
    let cells: Vec<(usize, ProtectionScheme, Mode)> = SCHEMES
        .iter()
        .map(|&scheme| (0, scheme, Mode::Striking))
        .collect();
    let one = NonZeroUsize::new(1).expect("non-zero");
    let seq = par::par_map_threads(one, cells.clone(), |(k, s, m)| diff_cell(k, s, m));
    let par = par::par_map_threads(par::thread_count(), cells, |(k, s, m)| diff_cell(k, s, m));
    for ((l1, p1, m1), (l2, p2, m2)) in seq.iter().zip(par.iter()) {
        assert_eq!(l1, l2);
        assert_eq!((p1, m1), (p2, m2), "{l1}: thread count changed artifacts");
    }
}

/// N-core artifacts of one multi-core run, rendered to bytes.
fn run_multicore_cell(name: &'static str, cores: usize, striking: bool) -> String {
    let entry = ftspm_workloads::find_multicore(name).expect("registered kernel");
    let mut w = entry.build(cores, Some(0xC0DE));
    let mut rec = Recorder::recovery_only(4096);
    let mut b = RunBuilder::new()
        .workload_multi(w.as_mut())
        .structure(
            &structure_with(ProtectionScheme::SecDed),
            StructureKind::Ftspm,
        )
        .recorder(&mut rec);
    if striking {
        b = b.faults(fault_opts(Mode::Striking, ProtectionScheme::SecDed));
    }
    let metrics = b.run_multi();
    let (registry, trace) = rec.into_parts();
    format!(
        "cycles={} checksum_ok={} coherence={:?} per_core={:?} sharers={:?} recovery={:?}\n{}\n{}",
        metrics.base.cycles,
        metrics.base.checksum_ok,
        metrics.coherence,
        metrics.per_core,
        metrics.sharer_counts,
        metrics.base.recovery,
        registry.to_csv(),
        chrome_trace_json(&trace, None),
    )
}

/// The same seed replays an N-core run bit-for-bit, at any host thread
/// count — every artifact, clean and striking, on every multi kernel.
#[test]
fn n_core_same_seed_replays_bit_for_bit() {
    let mut cells = Vec::new();
    for entry in multicore_registry() {
        for striking in [false, true] {
            cells.push((entry.name(), 3.max(entry.min_cores()), striking));
        }
    }
    let one = NonZeroUsize::new(1).expect("non-zero");
    let seq = par::par_map_threads(one, cells.clone(), |(n, c, s)| run_multicore_cell(n, c, s));
    let par = par::par_map_threads(par::thread_count(), cells.clone(), |(n, c, s)| {
        run_multicore_cell(n, c, s)
    });
    let replay = par::par_map(cells.clone(), |(n, c, s)| run_multicore_cell(n, c, s));
    for (i, (name, cores, striking)) in cells.iter().enumerate() {
        assert_eq!(
            seq[i], par[i],
            "{name} at {cores} cores (striking={striking}): thread count changed artifacts"
        );
        assert_eq!(
            seq[i], replay[i],
            "{name} at {cores} cores (striking={striking}): same-seed replay diverged"
        );
    }
}
