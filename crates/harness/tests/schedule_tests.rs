//! The online phase's transfer schedule is a *prediction* of the lazy
//! map-in DMAs the machine performs; on a deterministic workload the two
//! must agree exactly.

use ftspm_core::mda::run_mda;
use ftspm_core::schedule::{build_schedule, TransferCommand};
use ftspm_core::{OptimizeFor, SpmStructure};
use ftspm_harness::profile_workload;
use ftspm_sim::{Cpu, Machine, MachineConfig, TraceRecorder};
use ftspm_workloads::{CaseStudy, Sha1, Workload};

fn check_workload(workload: &mut dyn Workload) {
    let profile = profile_workload(workload);
    let structure = SpmStructure::ftspm();
    let mapping = run_mda(
        workload.program(),
        &profile,
        &structure,
        &OptimizeFor::Reliability.thresholds(),
    );
    let schedule = build_schedule(&profile, &mapping);
    let placement = mapping
        .placement(workload.program(), &structure)
        .expect("fits");
    let mut machine = Machine::new(
        MachineConfig::with_regions(structure.specs()),
        workload.program().clone(),
        placement,
    )
    .expect("machine");
    workload.init(machine.dram_mut());
    let mut trace = TraceRecorder::new(usize::MAX);
    {
        let mut cpu = Cpu::new(&mut machine, &mut trace);
        workload.run(&mut cpu).expect("runs");
    }
    machine.finish(&mut trace);

    // Observed DMA fills, in order.
    let observed: Vec<_> = trace.dma_fills().iter().map(|e| e.block).collect();
    let predicted: Vec<_> = schedule
        .commands()
        .iter()
        .filter_map(|c| match c {
            TransferCommand::MapIn { block, .. } => Some(*block),
            _ => None,
        })
        .collect();
    assert_eq!(
        observed,
        predicted,
        "{}: predicted map-in order must match observed DMA order",
        workload.name()
    );
}

#[test]
fn schedule_predicts_observed_dma_order_case_study() {
    check_workload(&mut CaseStudy::new());
}

#[test]
fn schedule_predicts_observed_dma_order_sha() {
    check_workload(&mut Sha1::new(0x54A1));
}
