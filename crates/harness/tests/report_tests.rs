//! Rendering tests: every table/figure renderer must produce complete,
//! well-formed output for a real evaluation.

use ftspm_core::OptimizeFor;
use ftspm_harness::{evaluate_workload, report};
use ftspm_mem::Clock;
use ftspm_workloads::CaseStudy;

fn eval() -> ftspm_harness::WorkloadEvaluation {
    let mut w = CaseStudy::new();
    evaluate_workload(&mut w, OptimizeFor::Reliability)
}

#[test]
fn table_renderers_cover_all_blocks_and_structures() {
    let e = eval();
    let t1 = report::table1(&e.profile);
    let t2 = report::table2(&e.ftspm.mapping);
    for name in [
        "Main", "Mul", "Add", "Array1", "Array2", "Array3", "Array4", "Stack",
    ] {
        assert!(t1.contains(name), "table1 missing {name}");
        assert!(t2.contains(name), "table2 missing {name}");
    }
    assert!(t2.contains("SRAM (ECC)"));
    assert!(t2.contains("SRAM (Parity)"));

    let t3 = report::table3(&e.ftspm, &e.pure_stt, Clock::default());
    assert_eq!(t3.lines().count(), 7, "header + title + 5 thresholds");
    assert!(t3.contains("1e12"));
    assert!(t3.contains("1e16"));

    let t4 = report::table4();
    for s in ["pure SRAM", "pure STT-RAM", "FTSPM", "L1 I/D caches"] {
        assert!(t4.contains(s), "table4 missing {s}");
    }
}

#[test]
fn figure_renderers_are_complete() {
    let e = eval();
    let evals = vec![e];
    let f5 = report::fig5(&evals);
    assert!(f5.contains("case_study"));
    assert!(f5.contains("AVERAGE"));
    let f6 = report::fig6(&evals);
    let f7 = report::fig7(&evals);
    // Normalised columns: the pure SRAM column is exactly 1.
    assert!(f6.contains("1.000"));
    assert!(f7.contains("1.000"));
    let f8 = report::fig8(&evals, Clock::default());
    assert!(f8.contains("case_study"));
    let traffic = report::fig_traffic(&evals[0].ftspm);
    assert!(traffic.contains("I-SPM STT-RAM"));
    assert!(traffic.contains("%"));
    let f3 = report::fig3();
    assert!(f3.contains("STT-RAM"));
}

#[test]
fn suite_csv_is_rectangular() {
    let e = eval();
    let csv = report::suite_csv(&[e]);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 3, "header + one row per structure");
    let cols = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
    }
    assert!(csv.contains("case_study,FTSPM"));
    assert!(csv.contains("true"), "checksum_ok column");
}

#[test]
fn summary_reports_checks() {
    let e = eval();
    let s = report::summary(&[e]);
    assert!(s.contains("ok"));
    assert!(!s.contains("FAIL"));
}
